//! Deadline-aware workflow planning with CAST++.
//!
//! Builds the paper's Fig. 4 search-log workflow
//! (`Grep → {PageRank, Sort} → Join`), lets CAST++ minimise cost under the
//! deadline, and shows what happens when the deadline tightens.
//!
//! ```text
//! cargo run --release --example workflow_deadlines
//! ```

use cast::prelude::*;
use cast::solver::castpp::{evaluate_workflow_global, CastPlusPlus, CastPlusPlusConfig};
use cast::solver::EvalContext;
use cast::workload::synth;
use cast_estimator::profiler::ProfilerConfig;

fn main() {
    let profiler = ProfilerConfig {
        nvm: 4,
        reference_input: DataSize::from_gb(50.0),
        block_grid: vec![50.0, 100.0, 250.0, 500.0, 1000.0],
        eph_grid: vec![375.0, 750.0],
        objstore_scratch_gb: 100.0,
    };
    let framework = Cast::builder()
        .nvm(4)
        .profiler(profiler)
        .build()
        .expect("profiling");

    let mut spec = synth::fig4_workflow();
    println!("workflow: Grep 250G -> {{PageRank 20G, Sort 120G}} -> Join 120G\n");

    for deadline_secs in [8000.0, 1300.0, 900.0] {
        spec.workflows[0].deadline = Duration::from_secs(deadline_secs);
        let ctx = EvalContext::new(framework.estimator(), &spec);
        let solver = CastPlusPlus::new(CastPlusPlusConfig::default());
        let out = solver.solve(&ctx).expect("solve");
        let wf = &spec.workflows[0];
        let eval = evaluate_workflow_global(&ctx.clone().with_reuse_awareness(), wf, &out.plan)
            .expect("evaluation");
        println!(
            "deadline {:>6.0}s -> est completion {:>6.0}s, cost {}, {}",
            deadline_secs,
            eval.time.secs(),
            eval.cost,
            if eval.feasible {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        );
        for &j in &wf.jobs {
            let a = out.plan.get(j).expect("assigned");
            let job = spec.job(j).expect("member");
            println!(
                "    {:<10} {:>4.0} GB -> {:<9} x{:.0}",
                job.app.to_string(),
                job.input.gb(),
                a.tier.name(),
                a.overprov
            );
        }
        println!();
    }
    println!(
        "Tighter deadlines pull jobs onto faster tiers and buy bandwidth with\n\
         over-provisioned capacity; loose deadlines let the solver shed cost."
    );
}
