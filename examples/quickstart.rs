//! Quickstart: profile, plan, deploy, then ask a what-if.
//!
//! Builds a CAST framework for a small cluster, plans a four-job workload
//! with each strategy, deploys the CAST++ plan on the simulated cluster
//! and prints the predicted-vs-observed report. A final section drives
//! the simulator directly through its unified entry point
//! (`Sim::builder`) and uses the snapshot/fork API to score a what-if
//! against the live mid-stream state.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cast::prelude::*;
use cast_estimator::profiler::ProfilerConfig;

fn main() {
    // Profile the applications offline on a small cluster. The default
    // profiler sweeps a wider grid; trimmed here so the example runs in
    // seconds.
    let profiler = ProfilerConfig {
        nvm: 4,
        reference_input: DataSize::from_gb(50.0),
        block_grid: vec![50.0, 100.0, 250.0, 500.0, 1000.0],
        eph_grid: vec![375.0, 750.0],
        objstore_scratch_gb: 100.0,
    };
    let framework = Cast::builder()
        .nvm(4)
        .profiler(profiler)
        .build()
        .expect("offline profiling");

    // A small mixed workload: one job of each studied application.
    let mut spec = WorkloadSpec::empty();
    for (i, (app, gb)) in [
        (AppKind::Sort, 60.0),
        (AppKind::Join, 80.0),
        (AppKind::Grep, 120.0),
        (AppKind::KMeans, 40.0),
    ]
    .iter()
    .enumerate()
    {
        let ds = cast::workload::DatasetId(i as u32);
        spec.datasets.push(cast::workload::Dataset::single_use(
            ds,
            DataSize::from_gb(*gb),
        ));
        spec.jobs.push(Job::with_default_layout(
            JobId(i as u32),
            *app,
            ds,
            DataSize::from_gb(*gb),
        ));
    }
    spec.validate().expect("valid workload");

    // Compare every planning strategy by estimated utility.
    println!("strategy            est. runtime   est. cost   est. utility");
    for strategy in PlanStrategy::ALL {
        let planned = framework.plan(&spec, strategy).expect("planning");
        println!(
            "{:<18}  {:>10}   {:>9}   {:.3e}",
            strategy.label(),
            format!("{}", planned.eval.time),
            format!("{}", planned.eval.cost.total()),
            planned.eval.utility
        );
    }

    // Deploy the CAST++ plan on the simulated cluster.
    let planned = framework
        .plan(&spec, PlanStrategy::CastPlusPlus)
        .expect("planning");
    println!("\nCAST++ assignments:");
    for (job, a) in planned.plan.iter() {
        let j = spec.job(job).expect("assigned job exists");
        println!(
            "  {job}: {} {:>6.0} GB -> {} (x{:.0} capacity)",
            j.app,
            j.input.gb(),
            a.tier,
            a.overprov
        );
    }
    let outcome = framework.deploy(&spec, &planned.plan).expect("deployment");
    let report = cast::core::DeploymentReport {
        strategy: PlanStrategy::CastPlusPlus.label().to_string(),
        predicted: planned.eval,
        observed: outcome,
    };
    println!("\n{}", report.render());

    assert!(report.time_error_pct() < 30.0, "prediction should be sane");

    // The same plan through the simulator's unified entry point: one
    // builder covers jobs, migrations, faults and observability.
    let estimator = framework.estimator();
    let capacities = planned
        .plan
        .capacities(&spec, true)
        .expect("plan capacities");
    let cfg = cast::sim::config::SimConfig::with_aggregate_capacity(
        estimator.catalog.clone(),
        estimator.cluster.nvm,
        &capacities,
    )
    .expect("provisionable cluster");
    let placements = planned.plan.to_placements();
    let mut live = Sim::builder(&cfg)
        .jobs(&spec, &placements)
        .build()
        .expect("simulation setup");

    // A live what-if: advance mid-stream, snapshot, and score a fork
    // that redirects every still-waiting job onto one of the plan's own
    // provisioned tiers. The fork owns its state — the live run is
    // untouched and finishes bit-identically to an uninterrupted one.
    let replan_at = report.predicted.time.secs() * 0.5;
    live.run_until(replan_at).expect("prefix");
    let snapshot = live.snapshot();
    let target = planned
        .plan
        .iter()
        .last()
        .map(|(_, a)| a.tier)
        .expect("non-empty plan");
    let candidate: Vec<_> = spec
        .jobs
        .iter()
        .map(|j| cast::sim::CandidateOverride {
            job: j.id,
            placement: cast::sim::placement::JobPlacement::all_on(target),
        })
        .collect();
    let scored = cast::sim::score_forked(&snapshot, &[candidate], 2).expect("what-if scoring");
    let (committed, _) = live.finish().expect("live run");
    println!(
        "\nwhat-if at t={replan_at:.0}s: committed plan finishes at {:.0}s, \
         all-{target} fork at {:.0}s",
        committed.makespan.secs(),
        scored[0].makespan.secs()
    );
}
