//! The paper's 100-job Facebook-derived workload, end to end.
//!
//! Synthesizes the Table 4 workload (with 15 % input sharing), plans it
//! with CAST and CAST++, deploys both on the simulated 400-core cluster
//! and prints the comparison against the best non-tiered baseline.
//!
//! ```text
//! cargo run --release --example facebook_workload
//! ```

use cast::prelude::*;
use cast::workload::facebook;
use cast::workload::synth::{facebook_workload, FacebookConfig};

fn main() {
    println!("{}", facebook::render_table4());

    let spec = facebook_workload(FacebookConfig::default()).expect("synthesis");
    println!(
        "synthesized {} jobs, {:.1} TB of input, {} reuse groups\n",
        spec.jobs.len(),
        spec.total_input().gb() / 1000.0,
        spec.reuse_groups().len()
    );

    // The full-fidelity profiling campaign runs ~150 calibration
    // simulations on the 25-VM cluster; expect ~a minute in release mode.
    eprintln!("[profiling applications offline...]");
    let framework = Cast::builder().nvm(25).build().expect("profiling");

    let strategies = [
        PlanStrategy::Uniform(Tier::PersSsd),
        PlanStrategy::GreedyOverProvisioned,
        PlanStrategy::Cast,
        PlanStrategy::CastPlusPlus,
    ];
    println!("configuration        runtime      cost       utility");
    let mut utilities = Vec::new();
    for strategy in strategies {
        let planned = framework.plan(&spec, strategy).expect("planning");
        let out = framework.deploy(&spec, &planned.plan).expect("deployment");
        println!(
            "{:<18}  {:>9}  {:>8}   {:.3e}",
            strategy.label(),
            format!("{}", out.makespan),
            format!("{}", out.cost.total()),
            out.utility
        );
        utilities.push((strategy.label(), out.utility));
    }

    let baseline = utilities[0].1;
    for (name, u) in &utilities[1..] {
        println!(
            "{name} vs persSSD 100%: {:+.1}% utility",
            (u / baseline - 1.0) * 100.0
        );
    }
}
