//! Capacity planning with the REG(·) regression.
//!
//! Sweeps provisioned persSSD capacity for a Sort job, prints predicted
//! runtimes from the monotone-spline regression next to simulated ground
//! truth, and finds the knee of the cost/performance curve — the §3.1.2
//! "careful over-provisioning" insight as a tool.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use cast::prelude::*;
use cast::workload::synth;
use cast_cloud::cost::CostModel;
use cast_cloud::tier::PerTier;
use cast_estimator::profiler::ProfilerConfig;
use cast_sim::config::SimConfig;
use cast_sim::placement::PlacementMap;
use cast_sim::Sim;

const NVM: usize = 4;

fn main() {
    let profiler = ProfilerConfig {
        nvm: NVM,
        reference_input: DataSize::from_gb(50.0),
        block_grid: vec![50.0, 100.0, 200.0, 400.0, 700.0, 1000.0],
        eph_grid: vec![375.0],
        objstore_scratch_gb: 100.0,
    };
    let framework = Cast::builder()
        .nvm(NVM)
        .profiler(profiler)
        .build()
        .expect("profiling");
    let estimator = framework.estimator();

    let spec = synth::single_job(AppKind::Sort, DataSize::from_gb(80.0));
    let job = &spec.jobs[0];
    let cost_model = CostModel::new(&estimator.catalog, NVM);

    println!("per-VM persSSD   predicted   simulated   deploy cost   utility");
    let mut best: Option<(f64, f64)> = None;
    for per_vm_gb in [75.0, 150.0, 300.0, 450.0, 600.0, 900.0] {
        let total = DataSize::from_gb(per_vm_gb) * NVM as f64;
        let predicted = estimator.reg(job, Tier::PersSsd, total).expect("profiled");

        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = total;
        let cfg = SimConfig::with_aggregate_capacity(estimator.catalog.clone(), NVM, &agg)
            .expect("provisionable");
        let placements = PlacementMap::uniform([job.id], Tier::PersSsd);
        let observed = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .build()
            .and_then(|s| s.run())
            .expect("simulation");

        let caps = agg;
        let cost = cost_model.breakdown(&caps, observed.makespan).total();
        let utility = cost_model.tenant_utility(&caps, observed.makespan);
        println!(
            "{:>10.0} GB   {:>7.0} s   {:>7.0} s   {:>9}   {:.3e}",
            per_vm_gb,
            predicted.secs(),
            observed.makespan.secs(),
            format!("{cost}"),
            utility
        );
        if best.is_none_or(|(u, _)| utility > u) {
            best = Some((utility, per_vm_gb));
        }
    }
    let (_, knee) = best.expect("swept at least one point");
    println!(
        "\nutility-optimal provisioning: ~{knee:.0} GB per VM — beyond the knee,\n\
         extra capacity buys bandwidth the job can no longer use (Fig. 2)."
    );
}
