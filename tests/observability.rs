//! Cross-crate observability tests: traces round-trip NDJSON, metrics are
//! deterministic under parallel multi-restart solves, and instrumentation
//! never changes a result bit.

mod common;

use std::collections::BTreeSet;
use std::sync::OnceLock;

use proptest::prelude::*;

use cast::cloud::tier::PerTier;
use cast::obs::{parse_ndjson, to_ndjson, EventBody, Observe};
use cast::prelude::*;
use cast::sim::config::SimConfig;
use cast::sim::placement::PlacementMap;
use cast::sim::Sim;
use cast::solver::{Annealer, EvalContext};
use cast::workload::dataset::{Dataset, DatasetId};
use common::{mixed_spec, quick_framework};

/// One profiled framework shared by every test in this file (profiling is
/// the expensive part; the tests only re-plan and re-deploy).
fn shared_framework() -> &'static Cast {
    static FW: OnceLock<Cast> = OnceLock::new();
    FW.get_or_init(|| quick_framework(2))
}

#[test]
fn recorded_pipeline_trace_round_trips_ndjson() {
    let col = Collector::recording();
    let fw = shared_framework().clone().observe(col.clone());
    let spec = mixed_spec();
    let planned = fw.plan(&spec, PlanStrategy::Cast).expect("planning");
    let out = fw.deploy(&spec, &planned.plan).expect("deployment");
    assert_eq!(out.report.jobs.len(), spec.jobs.len());

    let events = col.events();
    assert!(!events.is_empty());
    // Sequence numbers are the emission order.
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64);
    }
    // The run covered both halves of the span taxonomy.
    let labels: BTreeSet<&'static str> = events.iter().map(|e| e.body.label()).collect();
    for expected in [
        "restart_start",
        "move",
        "epoch",
        "restart_end",
        "job_start",
        "phase",
        "wave",
        "task",
        "job_end",
    ] {
        assert!(labels.contains(expected), "missing {expected}: {labels:?}");
    }

    // NDJSON round-trip preserves every event exactly.
    let text = to_ndjson(&events);
    let parsed = parse_ndjson(&text).expect("parseable NDJSON");
    assert_eq!(events, parsed);

    // The metrics snapshot serialises and round-trips too.
    let snap = col.snapshot();
    assert!(snap.counter("sim.tasks.started").unwrap_or(0) > 0);
    assert!(snap.counter("anneal.moves").unwrap_or(0) > 0);
    let json = serde_json::to_string(&snap).expect("snapshot serializes");
    let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot parses");
    assert_eq!(snap, back);
}

#[test]
fn durability_events_round_trip_ndjson() {
    let col = Collector::recording();
    col.emit(
        10.0,
        EventBody::MigrationPhase {
            epoch: 1,
            dataset: 4,
            phase: "verify".into(),
            attempt: 2,
            mb: 512.0,
        },
    );
    col.emit(
        11.0,
        EventBody::ShardLost {
            dataset: 4,
            lost: 2,
            remaining: 4,
            fatal: false,
        },
    );
    col.emit(
        12.0,
        EventBody::Reconstructed {
            dataset: 4,
            shards: 2,
            mb: 2048.0,
        },
    );
    col.emit(
        13.0,
        EventBody::TenantEpoch {
            tenant: 17,
            shard: 3,
            epoch: 1,
            admission: "admitted".into(),
            granted_frac: 0.75,
            planned: "deduped".into(),
        },
    );
    let events = col.events();
    let labels: Vec<&'static str> = events.iter().map(|e| e.body.label()).collect();
    assert_eq!(
        labels,
        vec![
            "migration_phase",
            "shard_lost",
            "reconstructed",
            "tenant_epoch"
        ]
    );
    let parsed = parse_ndjson(&to_ndjson(&events)).expect("parseable NDJSON");
    assert_eq!(events, parsed);
}

#[test]
fn parallel_restart_metrics_and_trace_are_deterministic() {
    let fw = shared_framework();
    let spec = mixed_spec();
    let ctx = EvalContext::new(fw.estimator(), &spec);
    let cfg = cast::solver::AnnealConfig {
        iterations: 400,
        restarts: 4,
        ..Default::default()
    };
    let run = || {
        let col = Collector::recording();
        let out = Annealer::new(cfg)
            .observe(col.clone())
            .solve(&ctx, TieringPlan::uniform(&spec, Tier::PersHdd))
            .expect("solve");
        (out.plan, col.events(), col.snapshot().without_wall())
    };
    let (plan_a, events_a, snap_a) = run();
    let (plan_b, events_b, snap_b) = run();
    assert_eq!(plan_a, plan_b);
    // Chains run on scoped threads, but events are flushed in restart
    // order and counters only accumulate commutative adds — so both the
    // trace and the wall-clock-free snapshot are bit-stable.
    assert_eq!(events_a, events_b);
    assert_eq!(snap_a, snap_b);
    // All four restarts appear, in order.
    let restarts: Vec<u32> = events_a
        .iter()
        .filter_map(|e| match e.body {
            EventBody::RestartStart { restart, .. } => Some(restart),
            _ => None,
        })
        .collect();
    assert_eq!(restarts, vec![0, 1, 2, 3]);
}

#[test]
fn unified_error_spans_the_pipeline() {
    let fw = shared_framework();
    let spec = mixed_spec();
    // An empty plan fails deployment with a plan-layer error, surfaced
    // through the unified type.
    let err = fw.deploy(&spec, &TieringPlan::new()).unwrap_err();
    assert_eq!(err.kind(), CastErrorKind::Deploy);
    assert!(err.to_string().contains("deployment error"));
    assert!(std::error::Error::source(&err).is_some());
}

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn arb_tier() -> impl Strategy<Value = Tier> {
    prop::sample::select(Tier::ALL.to_vec())
}

/// A random small workload of 1–4 jobs with 1–30 GB inputs.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec((arb_app(), 1.0f64..30.0), 1..4).prop_map(|jobs| {
        let mut spec = WorkloadSpec::empty();
        for (i, (app, gb)) in jobs.into_iter().enumerate() {
            let ds = DatasetId(i as u32);
            spec.datasets
                .push(Dataset::single_use(ds, DataSize::from_gb(gb)));
            spec.jobs.push(Job::with_default_layout(
                JobId(i as u32),
                app,
                ds,
                DataSize::from_gb(gb),
            ));
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recording a simulation changes nothing: the instrumented report is
    /// bit-identical to the plain one for arbitrary workloads.
    #[test]
    fn instrumented_simulation_is_bit_identical(spec in arb_spec(), tier in arb_tier()) {
        let agg = PerTier::from_fn(|_| DataSize::from_gb(2000.0));
        let cfg = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 2, &agg)
            .expect("provisionable");
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), tier);
        let plain = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .build()
            .and_then(Sim::run)
            .expect("simulation");
        let col = Collector::recording();
        let observed = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .collector(col.clone())
            .build()
            .and_then(Sim::run)
            .expect("simulation");
        prop_assert_eq!(plain, observed);
        prop_assert!(col.event_count() > 0);
    }

    /// Recording a solve changes nothing either: same plan, bit-identical
    /// evaluation, for arbitrary seeds and starting tiers.
    #[test]
    fn instrumented_solve_is_bit_identical(seed in 0u64..1 << 48, tier in arb_tier()) {
        let fw = shared_framework();
        let spec = mixed_spec();
        let ctx = EvalContext::new(fw.estimator(), &spec);
        let cfg = cast::solver::AnnealConfig {
            iterations: 200,
            seed,
            restarts: 2,
            ..Default::default()
        };
        let init = TieringPlan::uniform(&spec, tier);
        let plain = Annealer::new(cfg).solve(&ctx, init.clone()).expect("solve");
        let col = Collector::recording();
        let observed = Annealer::new(cfg)
            .observe(col.clone())
            .solve(&ctx, init)
            .expect("solve");
        prop_assert_eq!(&plain.plan, &observed.plan);
        prop_assert_eq!(plain.eval.utility.to_bits(), observed.eval.utility.to_bits());
        prop_assert_eq!(plain.eval, observed.eval);
        prop_assert!(col.event_count() > 0);
    }
}
