//! Cross-crate property-based tests: invariants that must hold for
//! arbitrary workloads and placements.

mod common;

use proptest::prelude::*;

use cast::cloud::tier::PerTier;
use cast::prelude::*;
use cast::sim::config::SimConfig;
use cast::sim::placement::PlacementMap;
use cast::sim::{Sim, SimError, SimReport};
use cast::solver::{evaluate, EvalContext, TieringPlan};
use cast::workload::dataset::{Dataset, DatasetId};

fn simulate(
    spec: &WorkloadSpec,
    placements: &PlacementMap,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    Sim::builder(cfg).jobs(spec, placements).build()?.run()
}

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn arb_tier() -> impl Strategy<Value = Tier> {
    prop::sample::select(Tier::ALL.to_vec())
}

/// A random small workload of 1–5 jobs with 1–40 GB inputs.
fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec((arb_app(), 1.0f64..40.0), 1..5).prop_map(|jobs| {
        let mut spec = WorkloadSpec::empty();
        for (i, (app, gb)) in jobs.into_iter().enumerate() {
            let ds = DatasetId(i as u32);
            spec.datasets
                .push(Dataset::single_use(ds, DataSize::from_gb(gb)));
            spec.jobs.push(Job::with_default_layout(
                JobId(i as u32),
                app,
                ds,
                DataSize::from_gb(gb),
            ));
        }
        spec
    })
}

/// A cluster with every tier generously provisioned.
fn sim_config(nvm: usize) -> SimConfig {
    let agg = PerTier::from_fn(|_| DataSize::from_gb(1000.0) * nvm as f64);
    SimConfig::with_aggregate_capacity(Catalog::google_cloud(), nvm, &agg).expect("provisionable")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator never panics, always reports every job, and keeps
    /// basic time accounting consistent for arbitrary workloads and
    /// uniform placements.
    #[test]
    fn simulation_time_accounting_is_consistent(
        spec in arb_spec(),
        tier in arb_tier(),
    ) {
        let cfg = sim_config(2);
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), tier);
        let report = simulate(&spec, &placements, &cfg).expect("simulation");
        prop_assert_eq!(report.jobs.len(), spec.jobs.len());
        for m in &report.jobs {
            prop_assert!(m.finished.secs() >= m.started.secs());
            prop_assert!(m.finished.secs() <= report.makespan.secs() + 1e-6);
            // Phase wall times can never exceed the job's span.
            let phases = m.stage_in + m.map + m.reduce + m.stage_out;
            prop_assert!(
                phases.secs() <= m.runtime().secs() + 1e-6,
                "phases {} vs runtime {}",
                phases,
                m.runtime()
            );
        }
    }

    /// Sequential execution: job spans never overlap.
    #[test]
    fn sequential_jobs_never_overlap(spec in arb_spec(), tier in arb_tier()) {
        let cfg = sim_config(2);
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), tier);
        let report = simulate(&spec, &placements, &cfg).expect("simulation");
        let mut spans: Vec<(f64, f64)> = report
            .jobs
            .iter()
            .map(|m| (m.started.secs(), m.finished.secs()))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in spans.windows(2) {
            prop_assert!(w[1].0 >= w[0].1 - 1e-6, "overlap: {w:?}");
        }
    }

    /// Plan capacity accounting always covers the Eq. 3 footprints.
    #[test]
    fn plan_capacities_cover_footprints(
        spec in arb_spec(),
        tier in arb_tier(),
        factor in prop::sample::select(vec![1.0f64, 2.0, 4.0]),
    ) {
        let mut plan = TieringPlan::new();
        for j in &spec.jobs {
            plan.assign(j.id, cast::solver::Assignment { tier, overprov: factor });
        }
        let caps = plan.capacities(&spec, false).expect("well-formed plan");
        let total: f64 = Tier::ALL.iter().map(|&t| caps.get(t).gb()).sum();
        let footprints: f64 = spec
            .jobs
            .iter()
            .map(|j| j.footprint(spec.profiles.get(j.app)).gb() * factor)
            .sum();
        // Conventions may add backing capacity but never lose any.
        prop_assert!(total + 1e-6 >= footprints, "{total} < {footprints}");
    }

    /// More provisioned capacity never makes the simulated workload slower
    /// (monotonicity of the performance surface).
    #[test]
    fn capacity_is_monotone_in_the_simulator(
        gb in 5.0f64..60.0,
        app in arb_app(),
    ) {
        let spec = cast::workload::synth::single_job(app, DataSize::from_gb(gb));
        let run = |per_vm: f64| {
            let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
            *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(per_vm) * 2.0;
            let cfg = SimConfig::with_aggregate_capacity(
                Catalog::google_cloud(),
                2,
                &agg,
            )
            .expect("provisionable");
            let placements =
                PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), Tier::PersSsd);
            simulate(&spec, &placements, &cfg).expect("simulation").makespan.secs()
        };
        let small = run(100.0);
        let large = run(400.0);
        prop_assert!(large <= small * 1.01, "more capacity slower: {small} -> {large}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A snapshot taken at an arbitrary mid-run point forks into an
    /// engine whose completed run is bit-identical to an uninterrupted
    /// one — under task-failure injection, a VM crash, and a migration
    /// barrier alike. This is the guarantee live what-if replanning
    /// leans on: scoring a candidate on a fork equals scoring it on a
    /// cold restart.
    #[test]
    fn forked_runs_bit_match_fresh_runs(
        spec in arb_spec(),
        tier in arb_tier(),
        mig_to in arb_tier(),
        seed in 0u64..100_000,
        failure_prob in 0.0f64..0.08,
        crash_at in 5.0f64..120.0,
        frac in 0.0f64..1.0,
    ) {
        use cast::sim::{prepare_runs, Engine, MigrationSpec};

        let mut cfg = sim_config(2);
        cfg.faults = FaultPlan {
            seed,
            task_failure_prob: failure_prob,
            // Generous retry budget: the property is about determinism,
            // not about runs surviving, but both arms must complete.
            max_task_attempts: 16,
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: crash_at,
                down_secs: Some(60.0),
            }],
            ..FaultPlan::default()
        };
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), tier);
        let migrations = vec![MigrationSpec {
            id: 0,
            bytes: DataSize::from_gb(8.0),
            from: tier,
            to: mig_to,
            blocks: vec![spec.jobs[0].id],
            after: vec![],
        }];
        let runs = prepare_runs(&spec, &placements, &migrations, &cfg).expect("lowering");

        let (fresh, _) = Engine::new(&cfg, runs.clone()).finish().expect("fresh run");

        let mut live = Engine::new(&cfg, runs);
        live.run_until(fresh.makespan.secs() * frac).expect("prefix");
        let snapshot = live.snapshot();
        let (forked, _) = snapshot.fork().finish().expect("forked run");

        prop_assert_eq!(
            serde_json::to_string(&fresh).expect("serializable"),
            serde_json::to_string(&forked).expect("serializable")
        );
    }
}

#[test]
fn evaluated_utility_matches_manual_recomputation() {
    // Non-random cross-check of Eq. 2 wiring through the solver.
    let framework = common::quick_framework(2);
    let spec = common::mixed_spec();
    let ctx = EvalContext::new(framework.estimator(), &spec);
    let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
    let eval = evaluate(&plan, &ctx).expect("evaluation");
    let manual = (1.0 / eval.time.mins()) / eval.cost.total().dollars();
    assert!((eval.utility - manual).abs() / manual < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arrival synthesis holds its marginals for arbitrary seeds: the
    /// job-size distribution stays on the Table 4 bin shares, a Poisson
    /// stream's mean inter-arrival gap matches the configured rate, and
    /// the whole stream is a pure function of the seed.
    #[test]
    fn arrival_streams_follow_table4_and_the_configured_rate(seed in 0u64..100_000) {
        use cast::workload::arrival::{generate, ArrivalConfig, ArrivalProcess, DriftConfig};
        use cast::workload::facebook::table4;

        let cfg = ArrivalConfig {
            seed,
            horizon: Duration::from_hours(12.0),
            process: ArrivalProcess::Poisson { jobs_per_hour: 60.0 },
            drift: DriftConfig::none(),
            workflow_fraction: 0.0,
            max_bin: 4,
        };
        let stream = generate(&cfg).unwrap();
        prop_assert!(generate(&cfg).unwrap() == stream, "stream must replay bit-identically");

        // ~720 exponential gaps with mean 60 s: the sample mean sits
        // within a generous 6-sigma band.
        let mean = stream.mean_interarrival_secs().unwrap();
        prop_assert!((mean - 60.0).abs() < 15.0, "mean inter-arrival {:.1} s, expected ~60 s", mean);

        // With no size drift every job's input is exactly its bin's
        // synthesized size, so map count identifies the bin.
        let bins: Vec<_> = table4().into_iter().filter(|b| b.bin <= cfg.max_bin).collect();
        let weight: f64 = bins.iter().map(|b| b.workload_jobs as f64).sum();
        let n = stream.total_jobs() as f64;
        prop_assert!(n > 300.0, "stream unexpectedly sparse ({n} jobs)");
        for b in &bins {
            let share = stream
                .arrivals
                .iter()
                .flat_map(|a| &a.jobs)
                .filter(|j| (j.input.mb() / 256.0).ceil() as usize == b.workload_maps)
                .count() as f64
                / n;
            let want = b.workload_jobs as f64 / weight;
            prop_assert!(
                (share - want).abs() < 0.08,
                "bin {} share {:.3}, Table 4 share {:.3}",
                b.bin, share, want
            );
        }
    }
}
