//! Shared helpers for the integration tests: a quick profiling setup that
//! keeps debug-mode test time reasonable.

use cast::prelude::*;
use cast_estimator::profiler::ProfilerConfig;

/// A framework profiled on a tiny grid (seconds, not minutes, in debug).
#[allow(dead_code)]
pub fn quick_framework(nvm: usize) -> Cast {
    Cast::builder()
        .nvm(nvm)
        .profiler(quick_profiler())
        .build()
        .expect("offline profiling")
}

/// The tiny profiling campaign behind [`quick_framework`].
#[allow(dead_code)]
pub fn quick_profiler() -> ProfilerConfig {
    ProfilerConfig {
        nvm: 2,
        reference_input: DataSize::from_gb(20.0),
        block_grid: vec![50.0, 200.0, 800.0],
        eph_grid: vec![375.0],
        objstore_scratch_gb: 100.0,
    }
}

/// A four-job workload with one of each studied application.
#[allow(dead_code)] // not every integration test file uses every helper
pub fn mixed_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::empty();
    for (i, (app, gb)) in [
        (AppKind::Sort, 30.0),
        (AppKind::Join, 40.0),
        (AppKind::Grep, 60.0),
        (AppKind::KMeans, 20.0),
    ]
    .iter()
    .enumerate()
    {
        let ds = cast::workload::DatasetId(i as u32);
        spec.datasets.push(cast::workload::Dataset::single_use(
            ds,
            DataSize::from_gb(*gb),
        ));
        spec.jobs.push(Job::with_default_layout(
            JobId(i as u32),
            *app,
            ds,
            DataSize::from_gb(*gb),
        ));
    }
    spec.validate().expect("valid spec");
    spec
}
