//! Workflow semantics across the solver and the simulator.

mod common;

use cast::prelude::*;
use cast::solver::castpp::evaluate_workflow_global;
use cast::solver::EvalContext;
use cast::workload::synth;
use common::quick_framework;

#[test]
fn deployment_honours_dag_order() {
    let framework = quick_framework(2);
    let spec = synth::fig4_workflow();
    let planned = framework
        .plan(&spec, PlanStrategy::Uniform(Tier::PersSsd))
        .expect("planning");
    let out = framework.deploy(&spec, &planned.plan).expect("deployment");
    let wf = &spec.workflows[0];
    for &(parent, child) in &wf.edges {
        let p = out.report.job(parent).expect("parent simulated");
        let c = out.report.job(child).expect("child simulated");
        assert!(
            c.started.secs() >= p.finished.secs() - 1e-6,
            "{child} must start after {parent} finishes"
        );
    }
}

#[test]
fn castpp_keeps_reuse_groups_on_one_tier() {
    let framework = quick_framework(2);
    // Three Grep jobs sharing one dataset.
    let mut spec = synth::single_job(AppKind::Grep, DataSize::from_gb(40.0));
    for i in 1..3u32 {
        let mut j = spec.jobs[0];
        j.id = JobId(i);
        spec.jobs.push(j);
    }
    spec.validate().expect("valid");
    let planned = framework
        .plan(&spec, PlanStrategy::CastPlusPlus)
        .expect("planning");
    let tiers: Vec<Tier> = spec
        .jobs
        .iter()
        .map(|j| planned.plan.get(j.id).expect("assigned").tier)
        .collect();
    assert!(
        tiers.windows(2).all(|w| w[0] == w[1]),
        "Eq. 7 violated: {tiers:?}"
    );
}

#[test]
fn castpp_meets_feasible_deadlines() {
    let framework = quick_framework(2);
    let mut spec = synth::fig4_workflow();
    // A generous deadline must be reported feasible and met in deployment.
    spec.workflows[0].deadline = Duration::from_hours(10.0);
    let planned = framework
        .plan(&spec, PlanStrategy::CastPlusPlus)
        .expect("planning");
    assert!(planned.workflows[0].1.feasible, "estimated feasible");
    let out = framework.deploy(&spec, &planned.plan).expect("deployment");
    let completion = out
        .report
        .workflow_completion(&spec.workflows[0].jobs)
        .expect("members simulated");
    assert!(completion <= spec.workflows[0].deadline);
}

#[test]
fn tighter_deadlines_never_lower_planned_cost() {
    let framework = quick_framework(2);
    let mut costs = Vec::new();
    for deadline in [10_000.0, 1_300.0] {
        let mut spec = synth::fig4_workflow();
        spec.workflows[0].deadline = Duration::from_secs(deadline);
        let ctx = EvalContext::new(framework.estimator(), &spec).with_reuse_awareness();
        let planned = framework
            .plan(&spec, PlanStrategy::CastPlusPlus)
            .expect("planning");
        let eval =
            evaluate_workflow_global(&ctx, &spec.workflows[0], &planned.plan).expect("evaluation");
        costs.push(eval.cost.dollars());
    }
    assert!(
        costs[1] >= costs[0] * 0.95,
        "tight deadline should not be cheaper: {costs:?}"
    );
}

#[test]
fn cross_tier_handoff_costs_show_in_deployment() {
    let framework = quick_framework(2);
    let spec = synth::fig4_workflow();
    // Uniform persistent plan: no hand-off transfers at all.
    let uniform = framework
        .plan(&spec, PlanStrategy::Uniform(Tier::PersSsd))
        .expect("planning");
    let out = framework.deploy(&spec, &uniform.plan).expect("deployment");
    for m in &out.report.jobs {
        assert_eq!(m.stage_in.secs(), 0.0, "{}", m.job);
        assert_eq!(m.stage_out.secs(), 0.0, "{}", m.job);
    }
}
