//! Reproducibility: everything is deterministic given the seeds.

mod common;

use cast::prelude::*;
use cast::workload::synth::{facebook_workload, workflow_suite, FacebookConfig};
use common::{mixed_spec, quick_framework};

#[test]
fn workload_synthesis_is_deterministic() {
    assert_eq!(
        facebook_workload(FacebookConfig::default()).unwrap(),
        facebook_workload(FacebookConfig::default()).unwrap()
    );
    assert_eq!(workflow_suite(3), workflow_suite(3));
    assert_ne!(workflow_suite(3), workflow_suite(4), "seed must matter");
}

#[test]
fn profiling_is_deterministic() {
    let a = quick_framework(2);
    let b = quick_framework(2);
    assert_eq!(a.estimator().matrix, b.estimator().matrix);
}

#[test]
fn planning_and_deployment_are_deterministic() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    let p1 = framework.plan(&spec, PlanStrategy::Cast).unwrap();
    let p2 = framework.plan(&spec, PlanStrategy::Cast).unwrap();
    assert_eq!(p1.plan, p2.plan);
    let d1 = framework.deploy(&spec, &p1.plan).unwrap();
    let d2 = framework.deploy(&spec, &p2.plan).unwrap();
    assert_eq!(d1.report, d2.report);
    assert_eq!(d1.makespan, d2.makespan);
}

#[test]
fn different_share_fractions_change_the_workload() {
    let none = facebook_workload(FacebookConfig {
        share_fraction: 0.0,
        seed: 42,
    })
    .unwrap();
    let some = facebook_workload(FacebookConfig::default()).unwrap();
    assert!(none.reuse_groups().is_empty());
    assert!(!some.reuse_groups().is_empty());
}

#[test]
fn online_serving_is_bit_deterministic() {
    use cast::solver::AnnealConfig;
    use cast::workload::arrival::generate;

    let stream = generate(&ArrivalConfig {
        seed: 7,
        horizon: Duration::from_mins(45.0),
        process: ArrivalProcess::Poisson {
            jobs_per_hour: 12.0,
        },
        drift: DriftConfig {
            app_shift: 0.4,
            size_growth: 0.4,
        },
        workflow_fraction: 0.2,
        max_bin: 3,
    })
    .unwrap();

    // The whole pipeline — profiling, per-epoch warm-started solves
    // (including the parallel multi-restart path), migration scheduling
    // and simulation — is rebuilt from scratch each time; the serialized
    // reports must be byte-identical.
    let serve = |restarts: usize| {
        let online = Cast::builder()
            .nvm(2)
            .profiler(common::quick_profiler())
            .anneal(AnnealConfig {
                iterations: 300,
                restarts,
                seed: 11,
                ..AnnealConfig::default()
            })
            .online(RuntimeConfig {
                epoch: Duration::from_mins(15.0),
                policy: ReplanPolicy::Periodic,
                ..RuntimeConfig::default()
            })
            .expect("online build");
        let report = online.run(&stream).expect("online run");
        serde_json::to_string(&report).expect("report serializes")
    };
    assert_eq!(serve(1), serve(1), "single-restart replay must be exact");
    assert_eq!(
        serve(2),
        serve(2),
        "parallel multi-restart replanning must not leak scheduling order"
    );
}
