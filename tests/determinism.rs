//! Reproducibility: everything is deterministic given the seeds.

mod common;

use cast::prelude::*;
use cast::workload::synth::{facebook_workload, workflow_suite, FacebookConfig};
use common::{mixed_spec, quick_framework};

#[test]
fn workload_synthesis_is_deterministic() {
    assert_eq!(
        facebook_workload(FacebookConfig::default()).unwrap(),
        facebook_workload(FacebookConfig::default()).unwrap()
    );
    assert_eq!(workflow_suite(3), workflow_suite(3));
    assert_ne!(workflow_suite(3), workflow_suite(4), "seed must matter");
}

#[test]
fn profiling_is_deterministic() {
    let a = quick_framework(2);
    let b = quick_framework(2);
    assert_eq!(a.estimator().matrix, b.estimator().matrix);
}

#[test]
fn planning_and_deployment_are_deterministic() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    let p1 = framework.plan(&spec, PlanStrategy::Cast).unwrap();
    let p2 = framework.plan(&spec, PlanStrategy::Cast).unwrap();
    assert_eq!(p1.plan, p2.plan);
    let d1 = framework.deploy(&spec, &p1.plan).unwrap();
    let d2 = framework.deploy(&spec, &p2.plan).unwrap();
    assert_eq!(d1.report, d2.report);
    assert_eq!(d1.makespan, d2.makespan);
}

#[test]
fn different_share_fractions_change_the_workload() {
    let none = facebook_workload(FacebookConfig {
        share_fraction: 0.0,
        seed: 42,
    })
    .unwrap();
    let some = facebook_workload(FacebookConfig::default()).unwrap();
    assert!(none.reuse_groups().is_empty());
    assert!(!some.reuse_groups().is_empty());
}
