//! Snapshot of the public prelude surface.
//!
//! The prelude is the API contract most users see; this test pins its
//! item names so additions and removals are deliberate, reviewed diffs
//! of the sorted list below rather than silent drift.

#[allow(unused_imports)]
use cast::prelude::*;

/// The prelude source itself, parsed rather than reflected: Rust has no
/// runtime surface enumeration, and the re-export list *is* the surface.
const PRELUDE_SRC: &str = include_str!("../crates/core/src/prelude.rs");

/// Every public item the prelude exports, sorted.
const EXPECTED: &[&str] = &[
    "AdmissionPolicy",
    "AnnealConfig",
    "AppKind",
    "ArrivalConfig",
    "ArrivalProcess",
    "ArrivalStream",
    "Assignment",
    "Bandwidth",
    "CandidateScoring",
    "Cast",
    "CastBuilder",
    "CastError",
    "CastErrorKind",
    "Catalog",
    "Collector",
    "DataSize",
    "DegradationWindow",
    "DeployError",
    "DeployOutcome",
    "DeploymentReport",
    "DriftConfig",
    "Duration",
    "EngineSnapshot",
    "Estimator",
    "FaultPlan",
    "Job",
    "JobId",
    "MetricsSnapshot",
    "ModelMatrix",
    "Money",
    "Observe",
    "OnlineCast",
    "OnlineReport",
    "OnlineRuntime",
    "PlanStrategy",
    "Planned",
    "ReplanPolicy",
    "ResilienceReport",
    "RunState",
    "RuntimeConfig",
    "Sim",
    "SimBuilder",
    "TenantGoal",
    "Tier",
    "TieringPlan",
    "TraceSink",
    "VmCrash",
    "WorkloadSpec",
];

/// Item names re-exported by `pub use` statements in `src`, sorted and
/// deduplicated.
fn exported_names(src: &str) -> Vec<String> {
    let flat: String = src
        .lines()
        .filter(|l| !l.trim_start().starts_with("//"))
        .collect::<Vec<_>>()
        .join(" ");
    let mut names = std::collections::BTreeSet::new();
    for stmt in flat.split("pub use ").skip(1) {
        let stmt = stmt.split(';').next().expect("terminated use statement");
        if let Some(open) = stmt.find('{') {
            let inner = &stmt[open + 1..stmt.rfind('}').expect("closed brace")];
            for item in inner.split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    names.insert(item.to_string());
                }
            }
        } else {
            let item = stmt.trim().rsplit("::").next().expect("path segment");
            names.insert(item.trim().to_string());
        }
    }
    names.into_iter().collect()
}

#[test]
fn prelude_surface_matches_snapshot() {
    let actual = exported_names(PRELUDE_SRC);
    let expected: Vec<String> = EXPECTED.iter().map(|s| s.to_string()).collect();
    assert!(
        expected.windows(2).all(|w| w[0] < w[1]),
        "EXPECTED must stay sorted and deduplicated"
    );
    assert_eq!(
        actual, expected,
        "prelude surface changed: update tests/api_surface.rs deliberately"
    );
}
