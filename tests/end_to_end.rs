//! End-to-end pipeline tests: profile → plan → deploy across crates.

mod common;

use cast::prelude::*;
use common::{mixed_spec, quick_framework};

#[test]
fn every_strategy_plans_and_deploys() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    for strategy in PlanStrategy::ALL {
        let planned = framework.plan(&spec, strategy).expect("planning");
        assert_eq!(planned.plan.len(), spec.jobs.len(), "{}", strategy.label());
        let out = framework.deploy(&spec, &planned.plan).expect("deployment");
        assert_eq!(out.report.jobs.len(), spec.jobs.len());
        assert!(out.makespan.secs() > 0.0);
        assert!(out.utility > 0.0, "{}", strategy.label());
    }
}

#[test]
fn cast_estimated_utility_dominates_every_baseline() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    let cast = framework.plan(&spec, PlanStrategy::Cast).expect("CAST");
    for strategy in [
        PlanStrategy::Uniform(Tier::EphSsd),
        PlanStrategy::Uniform(Tier::PersSsd),
        PlanStrategy::Uniform(Tier::PersHdd),
        PlanStrategy::Uniform(Tier::ObjStore),
        PlanStrategy::GreedyExactFit,
        PlanStrategy::GreedyOverProvisioned,
    ] {
        let other = framework.plan(&spec, strategy).expect("baseline");
        assert!(
            cast.eval.utility >= other.eval.utility - 1e-15,
            "CAST ({:.3e}) must dominate {} ({:.3e}) in its own estimates",
            cast.eval.utility,
            strategy.label(),
            other.eval.utility
        );
    }
}

#[test]
fn predictions_track_deployments() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    for strategy in [
        PlanStrategy::Uniform(Tier::PersSsd),
        PlanStrategy::Uniform(Tier::EphSsd),
        PlanStrategy::Cast,
    ] {
        let planned = framework.plan(&spec, strategy).expect("planning");
        let out = framework.deploy(&spec, &planned.plan).expect("deployment");
        let err = (planned.eval.time.secs() - out.makespan.secs()).abs() / out.makespan.secs();
        assert!(
            err < 0.35,
            "{}: predicted {} vs observed {} ({:.0}% off)",
            strategy.label(),
            planned.eval.time,
            out.makespan,
            err * 100.0
        );
    }
}

#[test]
fn deployment_capacities_cover_plan_requirements() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    let planned = framework
        .plan(&spec, PlanStrategy::GreedyOverProvisioned)
        .expect("planning");
    let out = framework.deploy(&spec, &planned.plan).expect("deployment");
    // Every tier used by the plan must have at least the job footprints
    // provisioned.
    for (job, a) in planned.plan.iter() {
        let j = spec.job(job).expect("assigned job");
        let footprint = j.footprint(spec.profiles.get(j.app));
        assert!(
            out.capacities.get(a.tier).gb() + 1e-6 >= footprint.gb(),
            "{job} on {} needs {footprint}",
            a.tier
        );
    }
}

#[test]
fn report_renders_for_deployed_plan() {
    let framework = quick_framework(2);
    let spec = mixed_spec();
    let planned = framework
        .plan(&spec, PlanStrategy::CastPlusPlus)
        .expect("planning");
    let out = framework.deploy(&spec, &planned.plan).expect("deployment");
    let report = cast::core::DeploymentReport {
        strategy: "CAST++".into(),
        predicted: planned.eval,
        observed: out,
    };
    let text = report.render();
    assert!(text.contains("CAST++"));
    assert!(text.contains("predicted"));
    assert!(text.contains("observed"));
}
