//! Deserialization error type and helpers used by derived impls.

use std::fmt;

use crate::value::{Map, Value};
use crate::Deserialize;

/// A data-model mismatch while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError::custom(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// The object inside `v`, or an error naming `ctx`.
pub fn expect_object<'v>(v: &'v Value, ctx: &str) -> Result<&'v Map, DeError> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(DeError::custom(format!(
            "expected object for {ctx}, found {}",
            v.kind()
        ))),
    }
}

/// The array inside `v`.
pub fn expect_array(v: &Value) -> Result<&[Value], DeError> {
    match v {
        Value::Array(a) => Ok(a),
        _ => Err(DeError::expected("array", v)),
    }
}

/// Deserialize the field `name` of object `m` (missing field = error).
pub fn obj_field<T: Deserialize>(m: &Map, name: &str) -> Result<T, DeError> {
    let v = m
        .get(name)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))?;
    T::from_value(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
}

/// Deserialize element `idx` of a tuple payload.
pub fn arr_elem<T: Deserialize>(a: &[Value], idx: usize) -> Result<T, DeError> {
    let v = a
        .get(idx)
        .ok_or_else(|| DeError::custom(format!("missing tuple element {idx}")))?;
    T::from_value(v)
}
