//! The owned data-model tree shared by `serde` and `serde_json` shims.

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A string-keyed object, insertion-ordered.
    Object(Map),
}

impl Value {
    /// The number inside, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The float inside, accepting integers.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(|n| n.as_f64())
    }

    /// The boolean inside, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string inside, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Shared `Null` for out-of-bounds / missing-key indexing (serde_json
/// returns `Null` rather than panicking).
const NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

value_eq_num!(f64, f32, i64, i32, u64, u32, usize);

/// A JSON number: integer or double.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// An integer that fits in `i64`.
    Int(i64),
    /// A finite double.
    Float(f64),
}

impl Number {
    /// Wrap a finite float; `None` for NaN/infinities (like serde_json).
    pub fn from_f64(x: f64) -> Option<Number> {
        x.is_finite().then_some(Number::Float(x))
    }

    /// Wrap an integer.
    pub fn from_i64(x: i64) -> Number {
        Number::Int(x)
    }

    /// Numeric value as a double.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(i) => *i as f64,
            Number::Float(f) => *f,
        }
    }

    /// Integer value, if integral (floats with zero fraction qualify).
    pub fn as_integral(&self) -> Option<i64> {
        match self {
            Number::Int(i) => Some(*i),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        self.as_f64() == other.as_f64()
    }
}

/// Insertion-ordered string-keyed map (the `Object` payload).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The single `(key, value)` entry, if there is exactly one (used for
    /// externally-tagged enum decoding).
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}
