//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of serde's API the workspace actually uses: the `Serialize` /
//! `Deserialize` traits, derive macros re-exported from `serde_derive`, and
//! `Serializer` / `Deserializer` shells for custom impls. Instead of serde's
//! visitor-based zero-copy data model, everything funnels through an owned
//! JSON-like [`value::Value`] tree — dramatically simpler, and exactly what
//! the `serde_json` shim needs on the other side.
//!
//! Collections with non-string keys (e.g. `HashMap<JobId, JobPlacement>`)
//! serialize as arrays of `[key, value]` pairs, so any derived type
//! round-trips through JSON without the string-key restriction.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Convert to the owned data-model tree.
    fn to_value(&self) -> Value;

    /// serde-compatible entry point: feed the value tree to a serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A sink consuming a [`Value`] tree (serde-compatible shape).
pub trait Serializer: Sized {
    /// Successful output.
    type Ok;
    /// Serialization error.
    type Error;
    /// Consume the fully-built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild from a data-model tree.
    fn from_value(value: &Value) -> Result<Self, de::DeError>;

    /// serde-compatible entry point: pull a value tree from a deserializer.
    fn deserialize<D: Deserializer>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(D::convert_error)
    }
}

/// A source producing a [`Value`] tree (serde-compatible shape).
pub trait Deserializer: Sized {
    /// Deserialization error.
    type Error;
    /// Produce the value tree.
    fn take_value(self) -> Result<Value, Self::Error>;
    /// Lift a data-model error into this deserializer's error type.
    fn convert_error(e: de::DeError) -> Self::Error;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Number::from_f64(*self)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

use de::DeError;

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .ok_or_else(|| DeError::expected("integer", v))?;
                let i = n.as_integral().ok_or_else(|| {
                    DeError::custom(format!("non-integral number for {}", stringify!($t)))
                })?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_number()
            .map(|n| n.as_f64())
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::expect_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of {N}, got {len}")))
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::expect_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de::expect_array(v)?.iter().map(T::from_value).collect()
    }
}

fn de_pairs<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    de::expect_array(v)?
        .iter()
        .map(|pair| {
            let p = de::expect_array(pair)?;
            if p.len() != 2 {
                return Err(DeError::custom("expected [key, value] pair"));
            }
            Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
        })
        .collect()
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de_pairs(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        de_pairs(v).map(|pairs| pairs.into_iter().collect())
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = de::expect_array(v)?;
                if a.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, got {} elements", $len, a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
