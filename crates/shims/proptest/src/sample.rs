//! Strategies that draw from explicit value sets.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly pick one of `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select: empty option set");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// An order-preserving random subsequence of `items`, with a length drawn
/// from `size`.
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn sample(&self, rng: &mut TestRng) -> Vec<T> {
        let max = self.items.len();
        let lo = self.size.lo().min(max);
        let hi = self.size.hi().min(max);
        let k = rng.gen_range(lo..=hi);
        let mut idx: Vec<usize> = (0..max).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        idx.sort_unstable();
        idx.into_iter().map(|i| self.items[i].clone()).collect()
    }
}
