//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length bound for collection strategies: accepts `n`, `lo..hi`, and
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }

    pub(crate) fn lo(&self) -> usize {
        self.lo
    }

    pub(crate) fn hi(&self) -> usize {
        self.hi_inclusive
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec` of values from `element`, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
