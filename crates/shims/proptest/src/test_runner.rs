//! Harness plumbing: config, RNG, and per-case outcome.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; 64 keeps suite time reasonable while
        // still exercising the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG used for sampling strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Fixed-seed RNG: every test run samples the same cases.
    pub fn deterministic() -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(0x70726f70_74657374),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` discarded the case.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}
