//! Offline stand-in for `proptest`: a deterministic random-testing harness
//! covering the API subset this workspace uses (`proptest!` blocks, range /
//! tuple / collection / sample strategies, `prop_map` / `prop_flat_map`,
//! and the `prop_assert*` family).
//!
//! No shrinking: a failing case reports its inputs via the panic message
//! of the assertion that fired. Sampling is seeded with a fixed constant,
//! so test runs are reproducible.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// `prop::…` paths (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define a block of property tests.
///
/// Supports an optional leading `#![proptest_config(expr)]` followed by
/// any number of `fn name(arg in strategy, ...) { body }` items carrying
/// their own attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < __cfg.cases && __attempts < __cfg.cases * 16 {
                __attempts += 1;
                let __vals = ($($crate::strategy::Strategy::sample(&$strat, &mut __rng),)+);
                let __inputs = format!(
                    concat!("(", stringify!($($arg),+), ") = {:?}"),
                    &__vals
                );
                #[allow(unused_mut)]
                let ($($arg,)+) = __vals;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed after {} cases: {}\n  inputs: {}",
                            stringify!($name), __ran, msg, __inputs
                        );
                    }
                }
            }
            assert!(
                __ran > 0,
                "property `{}`: every generated case was rejected by prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion `left == right` failed\n  left: {l:?}\n right: {r:?}"
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion `left != right` failed\n  both: {l:?}"
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
