//! The [`Strategy`] trait and combinators.

use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply samples a concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform sampled values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (rejection sampling, bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1024 consecutive samples",
            self.whence
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
