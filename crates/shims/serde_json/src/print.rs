//! JSON text emission from a [`Value`] tree.

use std::fmt::Write as _;

use serde::value::{Number, Value};

/// Compact form: no whitespace.
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Pretty form: 2-space indent, one element per line.
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(x) => {
            // Rust's shortest-roundtrip Display is valid JSON except that
            // integral floats print without a fractional part; keep the
            // ".0" so the value re-parses as a float-looking token.
            if x.fract() == 0.0 && x.abs() < 1e16 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
