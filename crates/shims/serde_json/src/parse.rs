//! Recursive-descent JSON parser producing a [`Value`] tree.

use serde::value::{Map, Number, Value};

use crate::Error;

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{0008}',
            b'f' => '\u{000c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let code = self.hex4()?;
                // Surrogate pairs: decode the low half if present.
                if (0xD800..0xDC00).contains(&code) {
                    if self.eat_keyword("\\u") {
                        let low = self.hex4()?;
                        let combined =
                            0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                        char::from_u32(combined)
                            .ok_or_else(|| self.err("invalid surrogate pair"))?
                    } else {
                        return Err(self.err("unpaired surrogate"));
                    }
                } else {
                    char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?
                }
            }
            _ => return Err(self.err("unknown escape character")),
        })
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let nibble = match d {
                b'0'..=b'9' => (d - b'0') as u32,
                b'a'..=b'f' => (d - b'a') as u32 + 10,
                b'A'..=b'F' => (d - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            code = code * 16 + nibble;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let x: f64 = text
                .parse()
                .map_err(|_| self.err("invalid float literal"))?;
            Number::from_f64(x)
                .map(Value::Number)
                .ok_or_else(|| self.err("non-finite float literal"))
        } else {
            let i: i64 = text
                .parse()
                .map_err(|_| self.err("invalid integer literal"))?;
            Ok(Value::Number(Number::Int(i)))
        }
    }
}
