//! Offline stand-in for `serde_json`: JSON text ⇄ the `serde` shim's
//! [`Value`] tree, plus `to_string` / `from_str` over any
//! `Serialize` / `Deserialize` type and a [`json!`] object macro.

use std::fmt;

pub use serde::value::{Map, Number, Value};
use serde::{Deserialize, Serialize};

mod parse;
mod print;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Error {
        Error::new(e)
    }
}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serialize `value` to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Build a [`Value`] literal. Supports the object / array / scalar forms
/// used in this workspace; expression values go through `Serialize`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key, $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible value conversion")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(
            to_string("hi \"there\"\n").unwrap(),
            "\"hi \\\"there\\\"\\n\""
        );
        let x: f64 = from_str("2.75").unwrap();
        assert_eq!(x, 2.75);
        let s: String = from_str("\"a\\u0041b\"").unwrap();
        assert_eq!(s, "aAb");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3, 4.25)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let mut m = std::collections::BTreeMap::new();
        m.insert((1u32, 2u32), "x".to_string());
        let back: std::collections::BTreeMap<(u32, u32), String> =
            from_str(&to_string(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1.0, "b": [1, 2], "c": "x" });
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"a\":1.0,\"b\":[1,2],\"c\":\"x\"}");
    }

    #[test]
    fn pretty_print_indents() {
        let v = json!({ "a": [true, Value::Null] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    true,\n    null\n  ]\n}"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1.5 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }
}
