//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Everything is driven by a SplitMix64 generator: statistically solid for
//! simulation purposes, trivially seedable, and — crucially for this
//! workspace — **deterministic across platforms and runs**, which the
//! simulator's reproducibility tests rely on.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Not the same stream as upstream `rand`'s `StdRng`, but this
    /// workspace only ever compares runs against other runs of itself.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Raw entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's standard domain
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p` (must be in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        f64::sample(self) < p
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2⁻⁴⁰ for every span this workspace
                // uses; acceptable for a simulation shim.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod seq {
    //! Slice helpers.

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let x = rng.gen_range(60.0..200.0);
            assert!((60.0..200.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 5 should not produce identity");
    }
}
