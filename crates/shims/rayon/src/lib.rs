//! Offline stand-in for `rayon`: `into_par_iter()` degrades to the plain
//! sequential iterator, so downstream `.map(...).collect()` chains compile
//! and run unchanged (single-threaded). Results are identical — only
//! wall-clock parallelism is lost.

pub mod prelude {
    /// Sequential drop-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: IntoIterator> IntoParallelIterator for T {
        type Item = T::Item;
        type Iter = T::IntoIter;

        fn into_par_iter(self) -> T::IntoIter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
