//! Offline stand-in for `criterion`: runs each benchmark closure a small
//! fixed number of times and reports the mean wall-clock duration. No
//! statistics, plots, or baselines — just enough to keep `cargo bench`
//! targets compiling and producing useful numbers.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Runs a single benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // One warm-up call, then timed iterations.
        black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(full_name: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {full_name:<50} {mean:>12.3?}/iter ({} iters)",
        b.iters
    );
}

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn bench_function<L: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        label: L,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, label),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut body = |b: &mut Bencher| f(b, input);
        run_one(&full, self.sample_size, &mut body);
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
