//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` with no
//! dependency on `syn`/`quote` (unavailable without a registry): the type
//! definition is parsed directly from the token stream. Supported shapes —
//! everything this workspace derives on:
//!
//! * structs with named fields (including simple `<T>` type parameters),
//! * tuple structs (newtypes serialize transparently),
//! * unit structs,
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   serde: `"Variant"`, `{"Variant": payload}`, `{"Variant": {fields}}`).
//!
//! `#[serde(...)]` attributes are accepted but ignored — the workspace does
//! not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Ast {
    name: String,
    /// Type-parameter identifiers (e.g. `["T"]` for `PerTier<T>`).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_serialize(&ast)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let ast = parse(input);
    gen_deserialize(&ast)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Ast {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected `struct` or `enum`, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("expected type name, found {t}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Kind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Tuple(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Named(parse_named_fields(g.stream()))
            }
            // `struct Foo<T> where ...` — unsupported; none in this repo.
            Some(t) => panic!("unsupported struct body starting at {t}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            t => panic!("expected enum body, found {t:?}"),
        },
        k => panic!("cannot derive for `{k}`"),
    };
    Ast {
        name,
        generics,
        kind,
    }
}

/// Skip `#[...]` attributes (incl. doc comments) and `pub` / `pub(...)`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parse `<A, B, ...>` after the type name: plain type parameters only.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let Some(TokenTree::Punct(p)) = tokens.get(*i) else {
        return params;
    };
    if p.as_char() != '<' {
        return params;
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
                continue;
            }
            Some(TokenTree::Ident(id)) if depth == 1 && at_param_start => {
                params.push(id.to_string());
                at_param_start = false;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde shim derive: lifetime parameters are not supported")
            }
            None => panic!("unterminated generics"),
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Split a group's tokens on top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-field body (`{ a: T, b: U }`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                t => panic!("expected field name, found {t:?}"),
            }
        })
        .collect()
}

/// Variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                t => panic!("expected variant name, found {t:?}"),
            };
            i += 1;
            let kind = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                _ => VariantKind::Unit,
            };
            Variant { name, kind }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(ast: &Ast, trait_path: &str) -> String {
    if ast.generics.is_empty() {
        format!("impl {} for {}", trait_path, ast.name)
    } else {
        let bounds: Vec<String> = ast
            .generics
            .iter()
            .map(|g| format!("{g}: {trait_path}"))
            .collect();
        format!(
            "impl<{}> {} for {}<{}>",
            bounds.join(", "),
            trait_path,
            ast.name,
            ast.generics.join(", ")
        )
    }
}

fn gen_serialize(ast: &Ast) -> String {
    let body = match &ast.kind {
        Kind::Unit => "::serde::value::Value::Null".to_string(),
        Kind::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", elems.join(", "))
        }
        Kind::Named(fields) => gen_named_to_value(fields, "self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{}::{tag} => ::serde::value::Value::String(\"{tag}\".to_string()),",
                            ast.name
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{}::{tag}(__a0) => {{ let mut __m = ::serde::value::Map::new(); \
                             __m.insert(\"{tag}\", ::serde::Serialize::to_value(__a0)); \
                             ::serde::value::Value::Object(__m) }},",
                            ast.name
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{}::{tag}({}) => {{ let mut __m = ::serde::value::Map::new(); \
                                 __m.insert(\"{tag}\", ::serde::value::Value::Array(vec![{}])); \
                                 ::serde::value::Value::Object(__m) }},",
                                ast.name,
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let inner = gen_named_to_value(fields, "");
                            format!(
                                "{}::{tag} {{ {binds} }} => {{ let mut __m = ::serde::value::Map::new(); \
                                 __m.insert(\"{tag}\", {inner}); \
                                 ::serde::value::Value::Object(__m) }},",
                                ast.name
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header} {{ fn to_value(&self) -> ::serde::value::Value {{ {body} }} }}",
        header = impl_header(ast, "::serde::Serialize")
    )
}

/// `{ let mut m = Map::new(); m.insert("f", to_value(<prefix>f)); ... }`
fn gen_named_to_value(fields: &[String], prefix: &str) -> String {
    let inserts: Vec<String> = fields
        .iter()
        .map(|f| format!("__m.insert(\"{f}\", ::serde::Serialize::to_value(&{prefix}{f}));"))
        .collect();
    format!(
        "{{ let mut __m = ::serde::value::Map::new(); {} ::serde::value::Value::Object(__m) }}",
        inserts.join(" ")
    )
}

fn gen_deserialize(ast: &Ast) -> String {
    let name = &ast.name;
    let body = match &ast.kind {
        Kind::Unit => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Kind::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::arr_elem(__a, {i})?"))
                .collect();
            format!(
                "{{ let __a = ::serde::de::expect_array(__v)?; Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Kind::Named(fields) => {
            let gets: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::obj_field(__m, \"{f}\")?"))
                .collect();
            format!(
                "{{ let __m = ::serde::de::expect_object(__v, \"{name}\")?; Ok({name} {{ {} }}) }}",
                gets.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{tag}\" => Ok({name}::{tag}),", tag = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let tag = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{tag}\" => Ok({name}::{tag}(::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de::arr_elem(__a, {i})?"))
                                .collect();
                            Some(format!(
                                "\"{tag}\" => {{ let __a = ::serde::de::expect_array(__payload)?; \
                                 Ok({name}::{tag}({})) }},",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let gets: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de::obj_field(__pm, \"{f}\")?"))
                                .collect();
                            Some(format!(
                                "\"{tag}\" => {{ let __pm = ::serde::de::expect_object(__payload, \"{tag}\")?; \
                                 Ok({name}::{tag} {{ {} }}) }},",
                                gets.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{ \
                   ::serde::value::Value::String(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => Err(::serde::de::DeError::custom(format!(\
                       \"unknown {name} variant `{{__other}}`\"))), \
                   }}, \
                   ::serde::value::Value::Object(__m) => {{ \
                     let (__tag, __payload) = __m.single_entry().ok_or_else(|| \
                       ::serde::de::DeError::custom(\"expected single-key enum object\"))?; \
                     let _ = __payload; \
                     match __tag {{ \
                       {data_arms} \
                       __other => Err(::serde::de::DeError::custom(format!(\
                         \"unknown {name} variant `{{__other}}`\"))), \
                     }} \
                   }}, \
                   __other => Err(::serde::de::DeError::expected(\"enum {name}\", __other)), \
                 }}",
                unit_arms = unit_arms.join(" "),
                data_arms = data_arms.join(" "),
            )
        }
    };
    format!(
        "{header} {{ fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::DeError> {{ {body} }} }}",
        header = impl_header(ast, "::serde::Deserialize")
    )
}
