//! The framework-wide error type.
//!
//! Each layer of the pipeline keeps its own error enum
//! ([`cast_estimator::EstimatorError`], [`cast_solver::SolverError`],
//! [`cast_sim::SimError`], [`crate::deploy::DeployError`]) — those stay
//! the precise, matchable types for callers working inside one layer.
//! [`CastError`] wraps all of them so the façade's methods share one
//! `Result` surface and callers can `?` across layers without manual
//! conversions. [`CastError::kind`] gives a stable, lightweight
//! classification for logging and retry policies.

use cast_estimator::EstimatorError;
use cast_runtime::RuntimeError;
use cast_sim::SimError;
use cast_solver::SolverError;

use crate::deploy::DeployError;

/// Any failure the [`crate::framework::Cast`] façade can surface.
#[derive(Debug)]
pub enum CastError {
    /// Offline profiling or model fitting failed.
    Estimator(EstimatorError),
    /// Planning failed (malformed plan, infeasible constraint, …).
    Solver(SolverError),
    /// The cluster simulation rejected its inputs or failed to run.
    Sim(SimError),
    /// Deployment failed (plan validation or simulation at deploy time).
    Deploy(DeployError),
    /// The online tiering runtime failed mid-stream.
    Runtime(RuntimeError),
}

/// Stable classification of a [`CastError`], independent of the wrapped
/// error's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastErrorKind {
    /// From the estimator layer.
    Estimator,
    /// From the solver layer.
    Solver,
    /// From the simulator layer.
    Sim,
    /// From the deployment layer.
    Deploy,
    /// From the online runtime layer.
    Runtime,
}

impl CastError {
    /// Which layer produced the error.
    pub fn kind(&self) -> CastErrorKind {
        match self {
            CastError::Estimator(_) => CastErrorKind::Estimator,
            CastError::Solver(_) => CastErrorKind::Solver,
            CastError::Sim(_) => CastErrorKind::Sim,
            CastError::Deploy(_) => CastErrorKind::Deploy,
            CastError::Runtime(_) => CastErrorKind::Runtime,
        }
    }
}

impl std::fmt::Display for CastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastError::Estimator(e) => write!(f, "estimator error: {e}"),
            CastError::Solver(e) => write!(f, "solver error: {e}"),
            CastError::Sim(e) => write!(f, "simulation error: {e}"),
            CastError::Deploy(e) => write!(f, "deployment error: {e}"),
            CastError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for CastError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CastError::Estimator(e) => Some(e),
            CastError::Solver(e) => Some(e),
            CastError::Sim(e) => Some(e),
            CastError::Deploy(e) => Some(e),
            CastError::Runtime(e) => Some(e),
        }
    }
}

impl From<EstimatorError> for CastError {
    fn from(e: EstimatorError) -> Self {
        CastError::Estimator(e)
    }
}

impl From<SolverError> for CastError {
    fn from(e: SolverError) -> Self {
        CastError::Solver(e)
    }
}

impl From<SimError> for CastError {
    fn from(e: SimError) -> Self {
        CastError::Sim(e)
    }
}

impl From<DeployError> for CastError {
    fn from(e: DeployError) -> Self {
        CastError::Deploy(e)
    }
}

impl From<RuntimeError> for CastError {
    fn from(e: RuntimeError) -> Self {
        CastError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_displayed() {
        let e: CastError = SolverError::Unassigned(3).into();
        assert_eq!(e.kind(), CastErrorKind::Solver);
        assert!(e.to_string().contains("solver error"));
        let e: CastError = SimError::MissingPlacement(1).into();
        assert_eq!(e.kind(), CastErrorKind::Sim);
        let e: CastError = DeployError::Plan(SolverError::Unassigned(0)).into();
        assert_eq!(e.kind(), CastErrorKind::Deploy);
        assert!(std::error::Error::source(&e).is_some());
    }
}
