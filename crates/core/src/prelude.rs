//! One-stop imports for CAST users, grouped by layer.
//!
//! ```
//! use cast_core::prelude::*;
//! ```

// Façade: the framework object, its strategies, goals, reports, and the
// unified error type every façade method returns.
pub use crate::deploy::{DeployError, DeployOutcome};
pub use crate::error::{CastError, CastErrorKind};
pub use crate::framework::{Cast, CastBuilder, OnlineCast, PlanStrategy, Planned};
pub use crate::goals::TenantGoal;
pub use crate::report::{DeploymentReport, ResilienceReport};

// Cloud model: provider catalogs, storage tiers, and the unit types that
// appear throughout the API surface.
pub use cast_cloud::units::{Bandwidth, DataSize, Duration, Money};
pub use cast_cloud::{Catalog, Tier};

// Estimator: the profiled performance model consumed by the solvers.
pub use cast_estimator::{Estimator, ModelMatrix};

// Simulator: the unified entry point (`Sim::builder`), live-state capture
// for what-if forks, and fault-injection inputs for deploy-time stress
// tests.
pub use cast_sim::{
    DegradationWindow, EngineSnapshot, FaultPlan, RunState, Sim, SimBuilder, VmCrash,
};

// Solver: plan representation, annealer tuning knobs, and the
// simulation-backed candidate scoring used at live replan points.
pub use cast_solver::{AnnealConfig, Assignment, CandidateScoring, TieringPlan};

// Workload: job and workload descriptions, plus the arrival streams the
// online runtime consumes.
pub use cast_workload::{
    AppKind, ArrivalConfig, ArrivalProcess, ArrivalStream, DriftConfig, Job, JobId, WorkloadSpec,
};

// Online runtime: rolling-horizon replanning over an arrival stream.
pub use cast_runtime::{AdmissionPolicy, OnlineReport, OnlineRuntime, ReplanPolicy, RuntimeConfig};

// Observability: attach a recording `Collector` via the `Observe` trait
// (`X::new(..).observe(collector)` at every layer), then drain its trace
// into a `TraceSink` and snapshot its metrics.
pub use cast_obs::{Collector, MetricsSnapshot, Observe, TraceSink};
