//! One-stop imports for CAST users.
//!
//! ```
//! use cast_core::prelude::*;
//! ```

pub use crate::deploy::{DeployError, DeployOutcome};
pub use crate::framework::{Cast, CastBuilder, PlanStrategy, Planned};
pub use crate::goals::TenantGoal;
pub use crate::report::{DeploymentReport, ResilienceReport};
pub use cast_cloud::units::{Bandwidth, DataSize, Duration, Money};
pub use cast_cloud::{Catalog, Tier};
pub use cast_estimator::{Estimator, ModelMatrix};
pub use cast_sim::{DegradationWindow, FaultPlan, VmCrash};
pub use cast_solver::{AnnealConfig, Assignment, TieringPlan};
pub use cast_workload::{AppKind, Job, JobId, WorkloadSpec};
