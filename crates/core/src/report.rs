//! Deployment reports: predicted vs observed.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

use cast_cloud::tier::Tier;
use cast_solver::PlanEval;

use crate::deploy::DeployOutcome;

/// A side-by-side comparison of the solver's prediction and the deployed
/// (simulated) reality — what a tenant reviews before trusting CAST.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Strategy label (e.g. `"CAST++"`).
    pub strategy: String,
    /// The solver's model-side evaluation.
    pub predicted: PlanEval,
    /// What the deployment measured.
    pub observed: DeployOutcome,
}

impl DeploymentReport {
    /// Relative runtime prediction error, in percent.
    pub fn time_error_pct(&self) -> f64 {
        let obs = self.observed.makespan.secs();
        if obs <= 0.0 {
            return 0.0;
        }
        100.0 * (self.predicted.time.secs() - obs).abs() / obs
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.strategy);
        let _ = writeln!(
            out,
            "predicted: T={} cost={} utility={:.3e}",
            self.predicted.time,
            self.predicted.cost.total(),
            self.predicted.utility
        );
        let _ = writeln!(
            out,
            "observed:  T={} cost={} utility={:.3e}  (err {:.1}%)",
            self.observed.makespan,
            self.observed.cost.total(),
            self.observed.utility,
            self.time_error_pct()
        );
        let _ = writeln!(out, "capacities:");
        for tier in Tier::ALL {
            let c = *self.observed.capacities.get(tier);
            if !c.is_zero() {
                let _ = writeln!(out, "  {:<9} {}", tier.name(), c);
            }
        }
        out
    }
}

impl DeployOutcome {
    /// Short textual summary of the outcome alone.
    pub fn render(&self) -> String {
        format!(
            "makespan={} cost={} utility={:.3e} ({} jobs)",
            self.makespan,
            self.cost.total(),
            self.utility,
            self.report.jobs.len()
        )
    }
}

/// How a solved plan holds up under fault injection: the same workload and
/// placements deployed fault-free and under a
/// [`cast_sim::FaultPlan`], side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Fault-free deployment.
    pub baseline: DeployOutcome,
    /// Deployment under the fault plan.
    pub faulted: DeployOutcome,
}

impl ResilienceReport {
    /// Runtime degradation in percent (positive = faults slowed the
    /// workload down).
    pub fn runtime_degradation_pct(&self) -> f64 {
        let base = self.baseline.makespan.secs();
        if base <= 0.0 {
            return 0.0;
        }
        100.0 * (self.faulted.makespan.secs() - base) / base
    }

    /// Tenant-utility degradation in percent (positive = faults cost
    /// utility).
    pub fn utility_degradation_pct(&self) -> f64 {
        let base = self.baseline.utility;
        if base <= 0.0 {
            return 0.0;
        }
        100.0 * (base - self.faulted.utility) / base
    }

    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let f = &self.faulted.report.faults;
        let _ = writeln!(out, "=== resilience ===");
        let _ = writeln!(out, "baseline: {}", self.baseline.render());
        let _ = writeln!(out, "faulted:  {}", self.faulted.render());
        let _ = writeln!(
            out,
            "faults: {} task failures, {} retries, {} speculations, {} kills, {} VM crashes",
            f.task_failures, f.retries, f.speculations, f.kills, f.vm_crashes
        );
        let _ = writeln!(
            out,
            "degradation: runtime +{:.1}%, utility -{:.1}%",
            self.runtime_degradation_pct(),
            self.utility_degradation_pct()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::cost::CostBreakdown;
    use cast_cloud::tier::PerTier;
    use cast_cloud::units::{DataSize, Duration, Money};
    use cast_sim::metrics::SimReport;

    fn outcome(makespan: f64) -> DeployOutcome {
        DeployOutcome {
            report: SimReport::default(),
            makespan: Duration::from_secs(makespan),
            cost: CostBreakdown {
                vm: Money::from_dollars(10.0),
                storage: PerTier::from_fn(|_| Money::ZERO),
            },
            utility: 0.01,
            capacities: PerTier::from_fn(|_| DataSize::from_gb(1.0)),
        }
    }

    fn eval(time: f64) -> PlanEval {
        PlanEval {
            time: Duration::from_secs(time),
            cost: CostBreakdown {
                vm: Money::from_dollars(9.0),
                storage: PerTier::from_fn(|_| Money::ZERO),
            },
            utility: 0.011,
            capacities: PerTier::from_fn(|_| DataSize::ZERO),
        }
    }

    #[test]
    fn error_math() {
        let r = DeploymentReport {
            strategy: "CAST".into(),
            predicted: eval(110.0),
            observed: outcome(100.0),
        };
        assert!((r.time_error_pct() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn resilience_degradation_math() {
        let r = ResilienceReport {
            baseline: outcome(100.0),
            faulted: DeployOutcome {
                utility: 0.008,
                ..outcome(125.0)
            },
        };
        assert!((r.runtime_degradation_pct() - 25.0).abs() < 1e-9);
        assert!((r.utility_degradation_pct() - 20.0).abs() < 1e-9);
        let s = r.render();
        assert!(s.contains("runtime +25.0%"));
        assert!(s.contains("utility -20.0%"));
        assert!(s.contains("VM crashes"));
    }

    #[test]
    fn render_mentions_strategy_and_tiers() {
        let r = DeploymentReport {
            strategy: "CAST++".into(),
            predicted: eval(90.0),
            observed: outcome(100.0),
        };
        let s = r.render();
        assert!(s.contains("CAST++"));
        assert!(s.contains("ephSSD"));
        assert!(s.contains("err 10.0%"));
    }
}
