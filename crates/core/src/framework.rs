//! The [`Cast`] framework object: profiling + planning.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;
use cast_cloud::Catalog;
use cast_estimator::mrcute::ClusterSpec;
use cast_estimator::profiler::{profile_all, ProfilerConfig};
use cast_estimator::Estimator;
use cast_obs::Observe;
use cast_solver::castpp::{CastPlusPlus, CastPlusPlusConfig};
use cast_solver::{
    evaluate, greedy_plan, AnnealConfig, Annealer, EvalContext, GreedyMode, PlanEval, SolverError,
    TieringPlan,
};
use cast_workload::profile::ProfileSet;
use cast_workload::spec::WorkloadSpec;

use crate::deploy::{self, DeployOutcome};

/// Which planner produces the tiering plan — the eight configurations of
/// Fig. 7 plus CAST++.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanStrategy {
    /// Everything on one tier (the four non-tiered baselines).
    Uniform(Tier),
    /// Algorithm 1 with exact-fit capacities.
    GreedyExactFit,
    /// Algorithm 1 with per-job over-provisioning.
    GreedyOverProvisioned,
    /// Algorithm 2: simulated-annealing utility maximisation.
    Cast,
    /// CAST plus reuse- and workflow-awareness.
    CastPlusPlus,
}

impl PlanStrategy {
    /// All strategies in Fig. 7 presentation order.
    pub const ALL: [PlanStrategy; 8] = [
        PlanStrategy::Uniform(Tier::EphSsd),
        PlanStrategy::Uniform(Tier::PersSsd),
        PlanStrategy::Uniform(Tier::PersHdd),
        PlanStrategy::Uniform(Tier::ObjStore),
        PlanStrategy::GreedyExactFit,
        PlanStrategy::GreedyOverProvisioned,
        PlanStrategy::Cast,
        PlanStrategy::CastPlusPlus,
    ];

    /// Figure label, mirroring [`Tier::name`]: a static string so callers
    /// can store and compare labels without allocating. `Display` renders
    /// the same text for formatting contexts.
    pub fn label(self) -> &'static str {
        match self {
            PlanStrategy::Uniform(Tier::EphSsd) => "ephSSD 100%",
            PlanStrategy::Uniform(Tier::PersSsd) => "persSSD 100%",
            PlanStrategy::Uniform(Tier::PersHdd) => "persHDD 100%",
            PlanStrategy::Uniform(Tier::ObjStore) => "objStore 100%",
            PlanStrategy::GreedyExactFit => "Greedy exact-fit",
            PlanStrategy::GreedyOverProvisioned => "Greedy over-prov",
            PlanStrategy::Cast => "CAST",
            PlanStrategy::CastPlusPlus => "CAST++",
        }
    }
}

impl std::fmt::Display for PlanStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A plan together with its model-side evaluation.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The chosen assignments.
    pub plan: TieringPlan,
    /// Estimated time/cost/utility (Eq. 2–6).
    pub eval: PlanEval,
    /// Per-workflow evaluations (CAST++ only; empty otherwise).
    pub workflows: Vec<(cast_workload::WorkflowId, cast_solver::castpp::WorkflowEval)>,
}

/// The CAST framework: a profiled estimator bound to a target cluster.
#[derive(Debug, Clone)]
pub struct Cast {
    estimator: Estimator,
    anneal: AnnealConfig,
    castpp: CastPlusPlusConfig,
    obs: cast_obs::Collector,
}

/// Builder for [`Cast`].
#[derive(Debug, Clone)]
pub struct CastBuilder {
    catalog: Catalog,
    cluster: ClusterSpec,
    profiles: ProfileSet,
    profiler: ProfilerConfig,
    anneal: AnnealConfig,
    castpp: CastPlusPlusConfig,
    obs: cast_obs::Collector,
}

impl Default for CastBuilder {
    fn default() -> Self {
        CastBuilder {
            catalog: Catalog::google_cloud(),
            cluster: ClusterSpec::paper(),
            profiles: ProfileSet::defaults(),
            profiler: ProfilerConfig::default(),
            anneal: AnnealConfig::default(),
            castpp: CastPlusPlusConfig::default(),
            obs: cast_obs::Collector::noop(),
        }
    }
}

impl CastBuilder {
    /// Target cluster size (worker VMs); slots follow the VM shape.
    pub fn nvm(mut self, nvm: usize) -> Self {
        self.cluster.nvm = nvm;
        self
    }

    /// Override the provider catalog.
    pub fn catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Override application profiles.
    pub fn profiles(mut self, profiles: ProfileSet) -> Self {
        self.profiles = profiles;
        self
    }

    /// Override profiling parameters.
    pub fn profiler(mut self, cfg: ProfilerConfig) -> Self {
        self.profiler = cfg;
        self
    }

    /// Override annealing parameters.
    pub fn anneal(mut self, cfg: AnnealConfig) -> Self {
        self.anneal = cfg;
        self.castpp.utility_anneal = cfg;
        self
    }

    /// Run every annealing solve as `n` parallel restart chains (best of
    /// N by `(score, seed)`; deterministic for any thread count). Applies
    /// to CAST's utility solve and both CAST++ phases.
    pub fn restarts(mut self, n: usize) -> Self {
        let n = n.max(1);
        self.anneal.restarts = n;
        self.castpp.utility_anneal.restarts = n;
        self.castpp.workflow_anneal.restarts = n;
        self
    }

    /// Run the offline profiling campaign and produce the framework.
    pub fn build(self) -> Result<Cast, crate::error::CastError> {
        let matrix = profile_all(&self.catalog, &self.profiles, &self.profiler)?;
        Ok(Cast {
            estimator: Estimator {
                matrix,
                catalog: self.catalog,
                cluster: self.cluster,
                profiles: self.profiles,
            },
            anneal: self.anneal,
            castpp: self.castpp,
            obs: self.obs,
        })
    }

    /// Profile and build an online-serving façade in one step: the
    /// framework plus an epoch-loop runtime configuration (see
    /// [`Cast::online`] for the borrowing variant).
    pub fn online(
        self,
        cfg: cast_runtime::RuntimeConfig,
    ) -> Result<OnlineCast, crate::error::CastError> {
        Ok(OnlineCast {
            cast: self.build()?,
            cfg,
        })
    }

    /// Build with an already-profiled estimator (skips profiling — used by
    /// tests and by callers that persist the model matrix).
    pub fn build_with_estimator(self, estimator: Estimator) -> Cast {
        Cast {
            estimator,
            anneal: self.anneal,
            castpp: self.castpp,
            obs: self.obs,
        }
    }
}

/// Subsequent [`Cast::plan`] calls record solver spans and counters into
/// the attached collector, and deployment calls record the simulator's
/// job/phase/wave/task spans. With a recording collector the results stay
/// bit-identical; with the default [`cast_obs::Collector::noop`] every
/// instrumentation point is a no-op.
impl cast_obs::Observe for Cast {
    fn collector_slot(&mut self) -> &mut cast_obs::Collector {
        &mut self.obs
    }
}

/// The collector is forwarded to the built framework (see the
/// [`cast_obs::Observe`] impl on [`Cast`]).
impl cast_obs::Observe for CastBuilder {
    fn collector_slot(&mut self) -> &mut cast_obs::Collector {
        &mut self.obs
    }
}

impl Cast {
    /// Start building a framework.
    pub fn builder() -> CastBuilder {
        CastBuilder::default()
    }

    /// The profiled estimator.
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// The attached collector (no-op unless [`cast_obs::Observe::observe`]
    /// was called).
    pub fn collector(&self) -> &cast_obs::Collector {
        &self.obs
    }

    /// Produce a tiering plan for `spec` with `strategy`.
    pub fn plan(
        &self,
        spec: &WorkloadSpec,
        strategy: PlanStrategy,
    ) -> Result<Planned, crate::error::CastError> {
        let ctx = EvalContext::new(&self.estimator, spec);
        match strategy {
            PlanStrategy::Uniform(tier) => {
                let plan = TieringPlan::uniform(spec, tier);
                let eval = evaluate(&plan, &ctx)?;
                Ok(Planned {
                    plan,
                    eval,
                    workflows: Vec::new(),
                })
            }
            PlanStrategy::GreedyExactFit => {
                let plan = greedy_plan(&ctx, GreedyMode::ExactFit)?;
                let eval = evaluate(&plan, &ctx)?;
                Ok(Planned {
                    plan,
                    eval,
                    workflows: Vec::new(),
                })
            }
            PlanStrategy::GreedyOverProvisioned => {
                let plan = greedy_plan(&ctx, GreedyMode::OverProvisioned)?;
                let eval = evaluate(&plan, &ctx)?;
                Ok(Planned {
                    plan,
                    eval,
                    workflows: Vec::new(),
                })
            }
            PlanStrategy::Cast => {
                let init = best_init(&ctx)?;
                let out = Annealer::new(self.anneal)
                    .observe(self.obs.clone())
                    .solve(&ctx, init)?;
                Ok(Planned {
                    plan: out.plan,
                    eval: out.eval,
                    workflows: Vec::new(),
                })
            }
            PlanStrategy::CastPlusPlus => {
                let out = CastPlusPlus::new(self.castpp)
                    .observe(self.obs.clone())
                    .solve(&ctx)?;
                Ok(Planned {
                    plan: out.plan,
                    eval: out.eval,
                    workflows: out.workflows,
                })
            }
        }
    }

    /// Plan for a high-level tenant goal (Fig. 6's "tenant goals" input):
    /// utility maximisation runs plain CAST; deadline-bound goals run the
    /// full CAST++ pipeline.
    pub fn plan_for_goal(
        &self,
        spec: &WorkloadSpec,
        goal: crate::goals::TenantGoal,
    ) -> Result<Planned, crate::error::CastError> {
        let strategy = if goal.needs_workflow_awareness() {
            PlanStrategy::CastPlusPlus
        } else {
            PlanStrategy::Cast
        };
        self.plan(spec, strategy)
    }

    /// Deploy a plan on the simulated cluster and measure the outcome.
    pub fn deploy(
        &self,
        spec: &WorkloadSpec,
        plan: &TieringPlan,
    ) -> Result<DeployOutcome, crate::error::CastError> {
        self.deploy_with_faults(spec, plan, &cast_sim::FaultPlan::default())
    }

    /// Deploy a plan under a fault-injection scenario.
    pub fn deploy_with_faults(
        &self,
        spec: &WorkloadSpec,
        plan: &TieringPlan,
        faults: &cast_sim::FaultPlan,
    ) -> Result<DeployOutcome, crate::error::CastError> {
        deploy::deploy_observed(&self.estimator, spec, plan, faults, &self.obs).map_err(Into::into)
    }

    /// Stress-test a solved plan: deploy it fault-free and again under
    /// `faults`, reporting the runtime and utility degradation the tenant
    /// would see on an unreliable cluster.
    pub fn resilience(
        &self,
        spec: &WorkloadSpec,
        plan: &TieringPlan,
        faults: &cast_sim::FaultPlan,
    ) -> Result<crate::report::ResilienceReport, crate::error::CastError> {
        let baseline = self.deploy(spec, plan)?;
        let faulted = self.deploy_with_faults(spec, plan, faults)?;
        Ok(crate::report::ResilienceReport { baseline, faulted })
    }

    /// Serve an arrival stream online: an epoch loop that replans
    /// (warm-started from the incumbent) and migrates data as the
    /// workload drifts. The returned runtime borrows this framework's
    /// estimator and inherits its annealing parameters and collector;
    /// call [`cast_runtime::OnlineRuntime::run`] on it.
    pub fn online(&self, cfg: cast_runtime::RuntimeConfig) -> cast_runtime::OnlineRuntime<'_> {
        cast_runtime::OnlineRuntime::new(&self.estimator, self.anneal, cfg)
            .observe(self.obs.clone())
    }
}

/// An owned online-serving façade: a profiled [`Cast`] framework bound to
/// a [`cast_runtime::RuntimeConfig`], built by [`CastBuilder::online`].
#[derive(Debug, Clone)]
pub struct OnlineCast {
    cast: Cast,
    cfg: cast_runtime::RuntimeConfig,
}

impl OnlineCast {
    /// Serve `stream` to completion.
    pub fn run(
        &self,
        stream: &cast_workload::ArrivalStream,
    ) -> Result<cast_runtime::OnlineReport, crate::error::CastError> {
        self.cast.online(self.cfg).run(stream).map_err(Into::into)
    }

    /// The underlying framework (planning and deployment still work).
    pub fn cast(&self) -> &Cast {
        &self.cast
    }

    /// The runtime configuration this façade serves under.
    pub fn config(&self) -> &cast_runtime::RuntimeConfig {
        &self.cfg
    }
}

/// The annealer's starting point: the best-estimated of the greedy plans
/// and the four uniform plans (§4.2.2: "the results from the greedy
/// algorithm or the characteristics of analytics applications ... can be
/// used to devise an initial placement").
pub fn best_init(ctx: &EvalContext<'_>) -> Result<TieringPlan, SolverError> {
    let mut candidates = vec![
        greedy_plan(ctx, GreedyMode::OverProvisioned)?,
        greedy_plan(ctx, GreedyMode::ExactFit)?,
    ];
    for tier in Tier::ALL {
        candidates.push(TieringPlan::uniform(ctx.spec, tier));
    }
    let mut best: Option<(f64, TieringPlan)> = None;
    for plan in candidates {
        let u = evaluate(&plan, ctx)?.utility;
        if best.as_ref().is_none_or(|(bu, _)| u > *bu) {
            best = Some((u, plan));
        }
    }
    Ok(best.expect("non-empty candidate set").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::units::DataSize;
    use cast_estimator::profiler::ProfilerConfig;
    use cast_workload::synth;

    fn quick_framework() -> Cast {
        let profiler = ProfilerConfig {
            nvm: 2,
            reference_input: DataSize::from_gb(20.0),
            block_grid: vec![100.0, 400.0, 1600.0],
            eph_grid: vec![375.0],
            objstore_scratch_gb: 100.0,
        };
        CastBuilder::default()
            .nvm(4)
            .profiler(profiler)
            .anneal(AnnealConfig {
                iterations: 300,
                ..AnnealConfig::default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn build_profiles_all_pairs() {
        let fw = quick_framework();
        assert_eq!(fw.estimator().matrix.len(), 20);
    }

    #[test]
    fn online_facade_serves_a_stream() {
        use cast_cloud::units::Duration;
        let fw = quick_framework();
        let stream = cast_workload::arrival::generate(&cast_workload::ArrivalConfig {
            seed: 9,
            horizon: Duration::from_mins(60.0),
            process: cast_workload::ArrivalProcess::Poisson { jobs_per_hour: 8.0 },
            drift: cast_workload::DriftConfig::none(),
            workflow_fraction: 0.0,
            max_bin: 3,
        })
        .unwrap();
        let cfg = cast_runtime::RuntimeConfig {
            policy: cast_runtime::ReplanPolicy::Periodic,
            ..cast_runtime::RuntimeConfig::default()
        };
        // The borrowing and owned façades serve the same stream
        // identically (same estimator, annealer and config).
        let report = fw.online(cfg).run(&stream).unwrap();
        assert_eq!(report.jobs_completed, stream.total_jobs());
        assert!(report.total_cost > 0.0);
        let owned = OnlineCast {
            cast: fw.clone(),
            cfg,
        };
        let again = owned.run(&stream).unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn every_strategy_produces_a_full_plan() {
        let fw = quick_framework();
        let spec = synth::prediction_workload();
        for strategy in PlanStrategy::ALL {
            let planned = fw.plan(&spec, strategy).unwrap();
            assert_eq!(planned.plan.len(), spec.jobs.len(), "{strategy}");
            assert!(planned.eval.utility.is_finite());
        }
    }

    #[test]
    fn cast_at_least_matches_greedy() {
        let fw = quick_framework();
        let spec = synth::prediction_workload();
        let greedy = fw.plan(&spec, PlanStrategy::GreedyOverProvisioned).unwrap();
        let cast = fw.plan(&spec, PlanStrategy::Cast).unwrap();
        assert!(cast.eval.utility >= greedy.eval.utility - 1e-15);
    }

    #[test]
    fn goals_select_the_right_solver() {
        let fw = quick_framework();
        let spec = synth::fig4_workflow();
        // Deadline goals must produce per-workflow evaluations.
        let deadline = fw
            .plan_for_goal(&spec, crate::goals::TenantGoal::MeetDeadlinesMinCost)
            .unwrap();
        assert_eq!(deadline.workflows.len(), 1);
        // Utility goals run plain CAST (no workflow evaluations).
        let utility = fw
            .plan_for_goal(&spec, crate::goals::TenantGoal::MaxUtility)
            .unwrap();
        assert!(utility.workflows.is_empty());
    }

    #[test]
    fn multi_restart_cast_plans_are_deterministic() {
        let profiler = ProfilerConfig {
            nvm: 2,
            reference_input: DataSize::from_gb(20.0),
            block_grid: vec![100.0, 400.0, 1600.0],
            eph_grid: vec![375.0],
            objstore_scratch_gb: 100.0,
        };
        let fw = CastBuilder::default()
            .nvm(4)
            .profiler(profiler)
            .anneal(AnnealConfig {
                iterations: 300,
                ..AnnealConfig::default()
            })
            .restarts(3)
            .build()
            .unwrap();
        let spec = synth::prediction_workload();
        let a = fw.plan(&spec, PlanStrategy::Cast).unwrap();
        let b = fw.plan(&spec, PlanStrategy::Cast).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.eval.utility.to_bits(), b.eval.utility.to_bits());
        // Best-of-3 includes the base chain, so it cannot lose to the
        // single-restart framework.
        let single = quick_framework().plan(&spec, PlanStrategy::Cast).unwrap();
        assert!(a.eval.utility >= single.eval.utility);
    }

    #[test]
    fn strategy_labels_match_figures() {
        for strategy in PlanStrategy::ALL {
            // Display and the static label agree, and uniform labels track
            // the tier names.
            assert_eq!(strategy.to_string(), strategy.label());
        }
        assert_eq!(PlanStrategy::Uniform(Tier::EphSsd).label(), "ephSSD 100%");
        assert_eq!(
            PlanStrategy::Uniform(Tier::ObjStore).label(),
            format!("{} 100%", Tier::ObjStore.name())
        );
        assert_eq!(PlanStrategy::Cast.label(), "CAST");
        assert_eq!(PlanStrategy::CastPlusPlus.label(), "CAST++");
    }
}
