//! High-level tenant goals (§4: "high-level tenants' goals such as
//! achieving high utility, or reducing deadline miss rates").

use serde::{Deserialize, Serialize};

/// What the tenant asks CAST to optimise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TenantGoal {
    /// Maximise tenant utility `U = (1/T)/($vm + $store)` over the whole
    /// workload (Eq. 2).
    MaxUtility,
    /// Meet every workflow's deadline while minimising total cost
    /// (Eq. 8–9); independent jobs still optimise utility.
    MeetDeadlinesMinCost,
}

impl TenantGoal {
    /// Whether this goal requires workflow-aware optimisation.
    pub fn needs_workflow_awareness(self) -> bool {
        matches!(self, TenantGoal::MeetDeadlinesMinCost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workflow_awareness_flag() {
        assert!(!TenantGoal::MaxUtility.needs_workflow_awareness());
        assert!(TenantGoal::MeetDeadlinesMinCost.needs_workflow_awareness());
    }
}
