//! Plan deployment: provision the simulated cluster per the plan and run
//! the workload on it.

use serde::{Deserialize, Serialize};

use cast_cloud::cost::{CostBreakdown, CostModel};
use cast_cloud::tier::PerTier;
use cast_cloud::units::{DataSize, Duration};
use cast_estimator::Estimator;
use cast_sim::config::SimConfig;
use cast_sim::metrics::SimReport;
use cast_sim::SimError;
use cast_solver::objective::provision_round;
use cast_solver::TieringPlan;
use cast_workload::spec::WorkloadSpec;

/// What actually happened when the plan ran.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployOutcome {
    /// Per-job simulation metrics.
    pub report: SimReport,
    /// Observed workload completion time (simulated makespan).
    pub makespan: Duration,
    /// Cost at the observed makespan with the provisioned capacities.
    pub cost: CostBreakdown,
    /// Observed tenant utility (Eq. 2 with observed time and cost).
    pub utility: f64,
    /// Capacities the deployment provisioned.
    pub capacities: PerTier<DataSize>,
}

/// Error deploying a plan: either the plan itself is malformed or the
/// simulation failed.
#[derive(Debug)]
pub enum DeployError {
    /// The plan is incomplete or violates a constraint.
    Plan(cast_solver::SolverError),
    /// Provisioning or simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Plan(e) => write!(f, "plan error: {e}"),
            DeployError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<cast_solver::SolverError> for DeployError {
    fn from(e: cast_solver::SolverError) -> Self {
        DeployError::Plan(e)
    }
}

impl From<SimError> for DeployError {
    fn from(e: SimError) -> Self {
        DeployError::Sim(e)
    }
}

impl From<cast_cloud::CloudError> for DeployError {
    fn from(e: cast_cloud::CloudError) -> Self {
        DeployError::Sim(SimError::Cloud(e))
    }
}

/// Provision and run. Capacities come from the plan (with the paper's
/// scratch/backing conventions and volume-granularity rounding).
pub fn deploy(
    estimator: &Estimator,
    spec: &WorkloadSpec,
    plan: &TieringPlan,
) -> Result<DeployOutcome, DeployError> {
    deploy_with_faults(estimator, spec, plan, &cast_sim::FaultPlan::default())
}

/// [`deploy`], but replaying the solved plan under a fault-injection
/// scenario. With the default (empty) plan this is bit-identical to
/// [`deploy`].
pub fn deploy_with_faults(
    estimator: &Estimator,
    spec: &WorkloadSpec,
    plan: &TieringPlan,
    faults: &cast_sim::FaultPlan,
) -> Result<DeployOutcome, DeployError> {
    deploy_observed(estimator, spec, plan, faults, &cast_obs::Collector::noop())
}

/// [`deploy_with_faults`] with an observability collector: the simulated
/// run records its job/phase/wave/task spans, tier-contention samples and
/// fault edges into `collector`. The outcome is bit-identical to the
/// unobserved call.
pub fn deploy_observed(
    estimator: &Estimator,
    spec: &WorkloadSpec,
    plan: &TieringPlan,
    faults: &cast_sim::FaultPlan,
    collector: &cast_obs::Collector,
) -> Result<DeployOutcome, DeployError> {
    let raw = plan.capacities(spec, true)?;
    let capacities = provision_round(estimator, &raw);
    let nvm = estimator.cluster.nvm;
    let mut cfg = SimConfig::with_aggregate_capacity(estimator.catalog.clone(), nvm, &capacities)?;
    cfg.faults = faults.clone();
    let report = cast_sim::Sim::builder(&cfg)
        .jobs(spec, &plan.to_placements())
        .collector(collector.clone())
        .build()?
        .run()?;
    let makespan = report.makespan;
    let cost_model = CostModel::new(&estimator.catalog, nvm);
    let cost = cost_model.breakdown(&capacities, makespan);
    let utility = cost_model.tenant_utility(&capacities, makespan);
    Ok(DeployOutcome {
        report,
        makespan,
        cost,
        utility,
        capacities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::Tier;
    use cast_cloud::Catalog;
    use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
    use cast_estimator::mrcute::ClusterSpec;
    use cast_workload::apps::AppKind;
    use cast_workload::profile::ProfileSet;
    use cast_workload::synth;

    fn estimator(nvm: usize) -> Estimator {
        let mut matrix = ModelMatrix::new();
        for app in AppKind::ALL {
            for tier in Tier::ALL {
                matrix.insert(
                    app,
                    tier,
                    CapacityCurve::fit(&[(
                        375.0,
                        PhaseBw {
                            map: 10.0,
                            shuffle_reduce: 10.0,
                        },
                    )])
                    .unwrap(),
                );
            }
        }
        Estimator {
            matrix,
            catalog: Catalog::google_cloud(),
            cluster: ClusterSpec {
                nvm,
                map_slots: 16,
                reduce_slots: 8,
                task_startup_secs: 1.5,
            },
            profiles: ProfileSet::defaults(),
        }
    }

    #[test]
    fn deploy_runs_and_prices_the_plan() {
        let est = estimator(2);
        let spec = synth::single_job(AppKind::Grep, DataSize::from_gb(20.0));
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let out = deploy(&est, &spec, &plan).unwrap();
        assert!(out.makespan.secs() > 0.0);
        assert!(out.utility > 0.0);
        assert!(out.cost.total().dollars() > 0.0);
        assert!(out.capacities.get(Tier::PersSsd).gb() > 0.0);
    }

    #[test]
    fn faulted_deploy_degrades_and_empty_plan_matches() {
        let est = estimator(2);
        let spec = synth::single_job(AppKind::Grep, DataSize::from_gb(20.0));
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let baseline = deploy(&est, &spec, &plan).unwrap();
        let same = deploy_with_faults(&est, &spec, &plan, &cast_sim::FaultPlan::default()).unwrap();
        assert_eq!(baseline.report, same.report, "empty plan must be a no-op");
        let faults = cast_sim::FaultPlan {
            max_task_attempts: 8,
            ..cast_sim::FaultPlan::with_task_failures(0.4)
        };
        let faulted = deploy_with_faults(&est, &spec, &plan, &faults).unwrap();
        assert!(faulted.report.faults.task_failures > 0);
        assert!(faulted.makespan.secs() > baseline.makespan.secs());
        assert!(faulted.utility < baseline.utility);
    }

    #[test]
    fn ephemeral_deployment_provisions_backing_store() {
        let est = estimator(2);
        let spec = synth::single_job(AppKind::Sort, DataSize::from_gb(20.0));
        let plan = TieringPlan::uniform(&spec, Tier::EphSsd);
        let out = deploy(&est, &spec, &plan).unwrap();
        assert!(out.capacities.get(Tier::EphSsd).gb() >= 375.0);
        assert!(out.capacities.get(Tier::ObjStore).gb() > 0.0);
        // The simulation should include staging.
        let m = out.report.jobs[0];
        assert!(m.stage_in.secs() > 0.0);
    }
}
