//! # cast-core
//!
//! The CAST framework façade — the end-to-end pipeline of Fig. 6:
//!
//! ```text
//!  workload spec + tenant goals + cloud service specs
//!        │
//!        ▼
//!  1. job performance estimator  (offline profiling → M̂, REG splines)
//!        │
//!        ▼
//!  2. tiering solver             (greedy / CAST annealing / CAST++)
//!        │
//!        ▼
//!  ⟨S₁,C₁⟩, ⟨S₂,C₂⟩, …          (job → storage service + capacity)
//!        │
//!        ▼
//!  deployment                    (provision volumes, run the workload)
//! ```
//!
//! [`framework::Cast`] owns the profiled estimator and answers planning
//! requests; [`deploy`] materialises a plan on the simulated cluster and
//! measures what actually happened; [`report`] compares the two.
//!
//! ```no_run
//! use cast_core::prelude::*;
//!
//! let framework = Cast::builder().nvm(25).build().unwrap();
//! let spec = cast_workload::synth::facebook_workload(Default::default()).unwrap();
//! let planned = framework.plan(&spec, PlanStrategy::CastPlusPlus).unwrap();
//! let outcome = framework.deploy(&spec, &planned.plan).unwrap();
//! println!("{}", outcome.render());
//! ```

pub mod deploy;
pub mod error;
pub mod framework;
pub mod goals;
pub mod prelude;
pub mod report;

pub use deploy::{deploy_observed, deploy_with_faults, DeployError, DeployOutcome};
pub use error::{CastError, CastErrorKind};
pub use framework::{Cast, CastBuilder, OnlineCast, PlanStrategy, Planned};
pub use goals::TenantGoal;
pub use report::{DeploymentReport, ResilienceReport};
