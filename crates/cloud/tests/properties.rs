//! Property-based tests for the cloud model.

use proptest::prelude::*;

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{DataSize, Duration};
use cast_cloud::{Catalog, CostModel, Provisioner};

fn arb_tier() -> impl Strategy<Value = Tier> {
    prop::sample::select(Tier::ALL.to_vec())
}

proptest! {
    /// Throughput and IOPS never decrease with capacity on any service.
    #[test]
    fn performance_is_monotone_in_capacity(
        tier in arb_tier(),
        a in 1.0f64..20_000.0,
        b in 1.0f64..20_000.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for catalog in [Catalog::google_cloud(), Catalog::aws_like()] {
            let svc = catalog.service(tier);
            prop_assert!(
                svc.throughput(DataSize::from_gb(hi)).mb_per_sec() + 1e-9
                    >= svc.throughput(DataSize::from_gb(lo)).mb_per_sec()
            );
            prop_assert!(svc.iops(DataSize::from_gb(hi)) + 1e-9 >= svc.iops(DataSize::from_gb(lo)));
        }
    }

    /// `provisionable` is idempotent and never shrinks a request.
    #[test]
    fn provisionable_is_a_closure_operator(tier in arb_tier(), gb in 0.1f64..5_000.0) {
        let catalog = Catalog::google_cloud();
        let svc = catalog.service(tier);
        let once = svc.provisionable(DataSize::from_gb(gb));
        let twice = svc.provisionable(once);
        prop_assert!(once.gb() + 1e-9 >= gb);
        prop_assert!((twice.gb() - once.gb()).abs() < 1e-9, "idempotence");
    }

    /// Cluster provisioning covers the aggregate demand on every tier.
    #[test]
    fn provision_plan_covers_demand(
        nvm in 1usize..32,
        eph in 0.0f64..2_000.0,
        ssd in 0.0f64..20_000.0,
        hdd in 0.0f64..20_000.0,
        obj in 0.0f64..50_000.0,
    ) {
        let catalog = Catalog::google_cloud();
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(eph);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(ssd);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(hdd);
        *agg.get_mut(Tier::ObjStore) = DataSize::from_gb(obj);
        let p = Provisioner::new(&catalog);
        // Ephemeral demand may exceed the 4-volume/VM attachment budget;
        // that's a legitimate rejection, not a property violation.
        match p.plan(&agg, nvm) {
            Ok(plan) => {
                for t in Tier::ALL {
                    prop_assert!(
                        plan.aggregate(t).gb() + 1e-6 >= agg.get(t).gb(),
                        "{t}: {} < {}",
                        plan.aggregate(t).gb(),
                        agg.get(t).gb()
                    );
                }
            }
            Err(_) => {
                prop_assert!(eph > 0.0, "only ephemeral limits can reject here");
            }
        }
    }

    /// VM cost is linear in time; storage cost is monotone and
    /// step-constant within a billing hour.
    #[test]
    fn cost_model_shape(nvm in 1usize..64, mins in 1.0f64..600.0, gb in 1.0f64..10_000.0) {
        let model = CostModel::new(&Catalog::google_cloud(), nvm);
        let t = Duration::from_mins(mins);
        let vm1 = model.vm_cost(t).dollars();
        let vm2 = model.vm_cost(t * 2.0).dollars();
        prop_assert!((vm2 - 2.0 * vm1).abs() < 1e-9, "VM cost linear in T");

        let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
        *caps.get_mut(Tier::PersSsd) = DataSize::from_gb(gb);
        let s1: f64 = model.storage_cost(&caps, t).iter().map(|(_, m)| m.dollars()).sum();
        let s2: f64 = model
            .storage_cost(&caps, t * 2.0)
            .iter()
            .map(|(_, m)| m.dollars())
            .sum();
        prop_assert!(s2 + 1e-12 >= s1, "storage cost monotone in T");
        // Within the same billing hour the charge is identical.
        let within = Duration::from_mins(mins.min(59.0));
        let sa: f64 = model
            .storage_cost(&caps, within)
            .iter()
            .map(|(_, m)| m.dollars())
            .sum();
        let sb: f64 = model
            .storage_cost(&caps, Duration::from_mins(1.0))
            .iter()
            .map(|(_, m)| m.dollars())
            .sum();
        prop_assert!((sa - sb).abs() < 1e-12, "hourly billing is a step function");
    }

    /// Utility strictly decreases when only the makespan grows.
    #[test]
    fn utility_decreases_with_time(nvm in 1usize..32, gb in 1.0f64..5_000.0, mins in 61.0f64..600.0) {
        let model = CostModel::new(&Catalog::google_cloud(), nvm);
        let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
        *caps.get_mut(Tier::PersHdd) = DataSize::from_gb(gb);
        let fast = model.tenant_utility(&caps, Duration::from_mins(mins));
        let slow = model.tenant_utility(&caps, Duration::from_mins(mins * 1.5));
        prop_assert!(fast > slow);
    }
}
