//! Capacity→performance scaling models.
//!
//! Google Cloud persistent volumes earn bandwidth and IOPS proportionally to
//! their provisioned capacity (Table 1: a 500 GB `persSSD` volume is ~5×
//! faster than a 100 GB one). Ephemeral SSD comes in fixed 375 GB volumes
//! each contributing full bandwidth, and object storage offers a flat
//! per-stream rate regardless of stored bytes. CAST exploits exactly this
//! surface when it over-provisions capacity to buy performance (§3.1.2,
//! "Performance Scaling").

use serde::{Deserialize, Serialize};

use crate::units::{Bandwidth, DataSize};

/// How a storage service's performance responds to provisioned capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingModel {
    /// Fixed-size volumes, each contributing its full bandwidth
    /// (ephemeral SSD: 375 GB / 733 MB/s per volume).
    PerVolume {
        /// Size of one volume.
        volume: DataSize,
        /// Sequential bandwidth of one volume.
        bw_per_volume: Bandwidth,
        /// 4 KB IOPS of one volume.
        iops_per_volume: f64,
        /// Maximum number of volumes that may be aggregated (per VM).
        max_volumes: usize,
    },
    /// Bandwidth and IOPS grow linearly with capacity up to a cap
    /// (persistent SSD/HDD).
    Linear {
        /// MB/s earned per provisioned GB.
        bw_per_gb: f64,
        /// 4 KB IOPS earned per provisioned GB.
        iops_per_gb: f64,
        /// Per-VM bandwidth ceiling.
        bw_cap: Bandwidth,
        /// Per-VM IOPS ceiling.
        iops_cap: f64,
    },
    /// Capacity-independent per-stream rate (object storage).
    FlatStream {
        /// Sequential bandwidth of one stream.
        stream_bw: Bandwidth,
        /// 4 KB IOPS.
        iops: f64,
    },
}

impl ScalingModel {
    /// Aggregate sequential bandwidth available to one VM that has
    /// provisioned `capacity` on this service.
    pub fn throughput(&self, capacity: DataSize) -> Bandwidth {
        match *self {
            ScalingModel::PerVolume {
                volume,
                bw_per_volume,
                max_volumes,
                ..
            } => {
                let n = volumes_for(capacity, volume).min(max_volumes);
                bw_per_volume * n as f64
            }
            ScalingModel::Linear {
                bw_per_gb, bw_cap, ..
            } => Bandwidth::from_mbps(bw_per_gb * capacity.gb()).min(bw_cap),
            ScalingModel::FlatStream { stream_bw, .. } => stream_bw,
        }
    }

    /// Aggregate 4 KB random IOPS for `capacity`.
    pub fn iops(&self, capacity: DataSize) -> f64 {
        match *self {
            ScalingModel::PerVolume {
                volume,
                iops_per_volume,
                max_volumes,
                ..
            } => {
                let n = volumes_for(capacity, volume).min(max_volumes);
                iops_per_volume * n as f64
            }
            ScalingModel::Linear {
                iops_per_gb,
                iops_cap,
                ..
            } => (iops_per_gb * capacity.gb()).min(iops_cap),
            ScalingModel::FlatStream { iops, .. } => iops,
        }
    }

    /// Smallest provisionable capacity that actually stores `size` bytes
    /// under this model (e.g. ephemeral SSD rounds up to whole 375 GB
    /// volumes; object storage is exact).
    pub fn provisionable(&self, size: DataSize) -> DataSize {
        match *self {
            ScalingModel::PerVolume { volume, .. } => {
                let n = volumes_for(size, volume).max(1);
                volume * n as f64
            }
            ScalingModel::Linear { .. } | ScalingModel::FlatStream { .. } => size,
        }
    }
}

/// Number of whole volumes needed to hold `capacity`.
fn volumes_for(capacity: DataSize, volume: DataSize) -> usize {
    if capacity.is_zero() {
        return 0;
    }
    (capacity.gb() / volume.gb()).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eph() -> ScalingModel {
        ScalingModel::PerVolume {
            volume: DataSize::from_gb(375.0),
            bw_per_volume: Bandwidth::from_mbps(733.0),
            iops_per_volume: 100_000.0,
            max_volumes: 4,
        }
    }

    fn ssd() -> ScalingModel {
        ScalingModel::Linear {
            bw_per_gb: 0.468,
            iops_per_gb: 30.0,
            bw_cap: Bandwidth::from_mbps(240.0),
            iops_cap: 15_000.0,
        }
    }

    #[test]
    fn per_volume_quantizes_and_caps() {
        let m = eph();
        // 1 GB still needs one whole volume.
        assert!((m.throughput(DataSize::from_gb(1.0)).mb_per_sec() - 733.0).abs() < 1e-9);
        // 400 GB spills into a second volume.
        assert!((m.throughput(DataSize::from_gb(400.0)).mb_per_sec() - 1466.0).abs() < 1e-9);
        // The 4-volume cap binds at 10 volumes' worth of data.
        assert!((m.throughput(DataSize::from_gb(3750.0)).mb_per_sec() - 4.0 * 733.0).abs() < 1e-9);
        assert!((m.iops(DataSize::from_gb(3750.0)) - 400_000.0).abs() < 1e-9);
    }

    #[test]
    fn per_volume_provisionable_rounds_to_whole_volumes() {
        let m = eph();
        assert!((m.provisionable(DataSize::from_gb(1.0)).gb() - 375.0).abs() < 1e-9);
        assert!((m.provisionable(DataSize::from_gb(376.0)).gb() - 750.0).abs() < 1e-9);
        // Zero-sized datasets still need one volume to exist on the tier.
        assert!((m.provisionable(DataSize::ZERO).gb() - 375.0).abs() < 1e-9);
    }

    #[test]
    fn linear_matches_table1_within_tolerance() {
        let m = ssd();
        // Table 1: 100 GB → 48 MB/s, 250 GB → 118 MB/s, 500 GB → 234 MB/s.
        for (gb, expect) in [(100.0, 48.0), (250.0, 118.0), (500.0, 234.0)] {
            let got = m.throughput(DataSize::from_gb(gb)).mb_per_sec();
            let err = (got - expect).abs() / expect;
            assert!(err < 0.03, "{gb} GB: got {got}, want {expect}");
        }
        // IOPS slope is exactly 30/GB in Table 1.
        assert!((m.iops(DataSize::from_gb(250.0)) - 7500.0).abs() < 1e-9);
    }

    #[test]
    fn linear_caps_bind() {
        let m = ssd();
        assert!((m.throughput(DataSize::from_gb(5000.0)).mb_per_sec() - 240.0).abs() < 1e-9);
        assert!((m.iops(DataSize::from_gb(5000.0)) - 15_000.0).abs() < 1e-9);
    }

    #[test]
    fn flat_stream_ignores_capacity() {
        let m = ScalingModel::FlatStream {
            stream_bw: Bandwidth::from_mbps(265.0),
            iops: 550.0,
        };
        assert_eq!(
            m.throughput(DataSize::from_gb(1.0)),
            m.throughput(DataSize::from_tb(100.0))
        );
        assert!((m.provisionable(DataSize::from_gb(7.0)).gb() - 7.0).abs() < 1e-12);
    }
}
