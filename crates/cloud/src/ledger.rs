//! Shared-capacity accounting for multi-tenant regions.
//!
//! A fleet shard provisions a fixed pool of per-tier capacity and lets
//! many tenants draw epoch-scoped grants from it. Two pieces model the
//! contention:
//!
//! * [`CapacityLedger`] — double-entry bookkeeping per tier: what the
//!   shard provisioned, what is currently committed to tenants, and what
//!   remains. Grants are all-or-nothing per call; epoch settlement
//!   releases everything back.
//! * [`weighted_max_min`] — the fair-share allocator: given concurrent
//!   demands with priorities (weights), split each tier's capacity by
//!   weighted max-min fairness (progressive water-filling). Small
//!   demands are satisfied exactly; the rest divide the remainder in
//!   weight proportion. The allocation is a pure function of its inputs
//!   — no RNG, no iteration-order dependence — so fleet settlement stays
//!   bit-deterministic.
//!
//! Everything is `f64`-exact arithmetic over [`DataSize`]; callers that
//! need byte-identical reports across worker counts get it for free as
//! long as they present demands in a deterministic order.

use crate::tier::{PerTier, Tier};
use crate::units::DataSize;

/// One tenant's demand in a fair-share round: a priority weight and the
/// per-tier capacity it wants for the coming epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareRequest {
    /// Relative priority weight (> 0). Twice the weight ⇒ twice the
    /// share of any saturated tier.
    pub weight: f64,
    /// Requested capacity per tier.
    pub demand: PerTier<DataSize>,
}

/// Weighted max-min fair allocation of `capacity` across `requests`,
/// tier by tier.
///
/// Per tier this is progressive filling: every unsatisfied request
/// receives water in proportion to its weight until it either reaches
/// its demand (and stops drawing) or the tier runs dry. The result is
/// the unique allocation where no request can gain without a
/// lower-priority-per-weight request losing.
///
/// Properties (pinned by tests):
/// * never over-allocates a tier;
/// * a request never receives more than its demand;
/// * when total demand fits, everyone gets exactly their demand;
/// * under saturation, fully-throttled requests split the tier in
///   weight proportion.
pub fn weighted_max_min(
    capacity: &PerTier<DataSize>,
    requests: &[ShareRequest],
) -> Vec<PerTier<DataSize>> {
    let mut grants: Vec<PerTier<DataSize>> =
        vec![PerTier::from_fn(|_| DataSize::ZERO); requests.len()];
    for tier in Tier::ALL {
        let mut remaining = capacity.get(tier).gb();
        // Active set: indices still below their demand.
        let mut active: Vec<usize> = (0..requests.len())
            .filter(|&i| requests[i].demand.get(tier).gb() > 0.0 && requests[i].weight > 0.0)
            .collect();
        // Water-filling rounds: each round either satisfies at least one
        // request exactly (removing it from the active set) or exhausts
        // the tier, so it terminates in ≤ n rounds.
        while remaining > 1e-12 && !active.is_empty() {
            let weight_sum: f64 = active.iter().map(|&i| requests[i].weight).sum();
            // The level at which the first active request saturates.
            let mut level = f64::INFINITY;
            for &i in &active {
                let deficit = requests[i].demand.get(tier).gb() - grants[i].get(tier).gb();
                level = level.min(deficit / requests[i].weight);
            }
            let fill = level.min(remaining / weight_sum);
            for &i in &active {
                let add = fill * requests[i].weight;
                *grants[i].get_mut(tier) = *grants[i].get(tier) + DataSize::from_gb(add);
                remaining -= add;
            }
            if fill < level {
                break; // tier exhausted mid-round
            }
            active.retain(|&i| requests[i].demand.get(tier).gb() - grants[i].get(tier).gb() > 1e-9);
        }
        // Clamp accumulated f64 noise: a grant never exceeds its demand.
        for (i, req) in requests.iter().enumerate() {
            let g = grants[i].get_mut(tier);
            *g = g.min(*req.demand.get(tier));
        }
    }
    grants
}

/// Double-entry per-tier capacity bookkeeping for one shard's
/// provisioned storage pool.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityLedger {
    provisioned: PerTier<DataSize>,
    committed: PerTier<DataSize>,
}

impl CapacityLedger {
    /// A ledger over a fixed provisioned pool, nothing committed.
    pub fn new(provisioned: PerTier<DataSize>) -> CapacityLedger {
        CapacityLedger {
            provisioned,
            committed: PerTier::from_fn(|_| DataSize::ZERO),
        }
    }

    /// The fixed provisioned pool.
    pub fn provisioned(&self) -> &PerTier<DataSize> {
        &self.provisioned
    }

    /// Capacity currently committed to tenants.
    pub fn committed(&self) -> &PerTier<DataSize> {
        &self.committed
    }

    /// Capacity still free on each tier.
    pub fn available(&self) -> PerTier<DataSize> {
        PerTier::from_fn(|t| {
            let free = self.provisioned.get(t).gb() - self.committed.get(t).gb();
            DataSize::from_gb(free.max(0.0))
        })
    }

    /// Whether `demand` fits in the free pool on every tier.
    pub fn fits(&self, demand: &PerTier<DataSize>) -> bool {
        let free = self.available();
        Tier::ALL
            .into_iter()
            .all(|t| demand.get(t).gb() <= free.get(t).gb() + 1e-9)
    }

    /// Commit `grant` against the pool. Returns `false` (and commits
    /// nothing) when any tier would go over-committed.
    pub fn commit(&mut self, grant: &PerTier<DataSize>) -> bool {
        if !self.fits(grant) {
            return false;
        }
        for t in Tier::ALL {
            *self.committed.get_mut(t) = *self.committed.get(t) + *grant.get(t);
        }
        true
    }

    /// Release a previously committed grant (epoch settlement). Floors
    /// at zero so a stray double-release cannot underflow the books.
    pub fn release(&mut self, grant: &PerTier<DataSize>) {
        for t in Tier::ALL {
            let left = self.committed.get(t).gb() - grant.get(t).gb();
            *self.committed.get_mut(t) = DataSize::from_gb(left.max(0.0));
        }
    }

    /// Release everything — the end-of-epoch reset.
    pub fn release_all(&mut self) {
        self.committed = PerTier::from_fn(|_| DataSize::ZERO);
    }

    /// Peak utilization across tiers, in `[0, 1]` (0 when nothing is
    /// provisioned).
    pub fn utilization(&self) -> f64 {
        Tier::ALL
            .into_iter()
            .map(|t| {
                let p = self.provisioned.get(t).gb();
                if p > 0.0 {
                    self.committed.get(t).gb() / p
                } else {
                    0.0
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(v: f64) -> DataSize {
        DataSize::from_gb(v)
    }

    fn uniform(v: f64) -> PerTier<DataSize> {
        PerTier::from_fn(|_| gb(v))
    }

    fn req(weight: f64, demand_gb: f64) -> ShareRequest {
        ShareRequest {
            weight,
            demand: uniform(demand_gb),
        }
    }

    #[test]
    fn underloaded_pool_satisfies_everyone_exactly() {
        let grants = weighted_max_min(&uniform(100.0), &[req(1.0, 30.0), req(5.0, 40.0)]);
        for t in Tier::ALL {
            assert!((grants[0].get(t).gb() - 30.0).abs() < 1e-9);
            assert!((grants[1].get(t).gb() - 40.0).abs() < 1e-9);
        }
    }

    #[test]
    fn saturated_pool_splits_by_weight() {
        // Both want the whole tier; weights 1:3 must split 25:75.
        let grants = weighted_max_min(&uniform(100.0), &[req(1.0, 100.0), req(3.0, 100.0)]);
        for t in Tier::ALL {
            assert!((grants[0].get(t).gb() - 25.0).abs() < 1e-6);
            assert!((grants[1].get(t).gb() - 75.0).abs() < 1e-6);
        }
    }

    #[test]
    fn max_min_protects_small_demands() {
        // The small request is fully satisfied; the two big ones split
        // the remainder evenly (90/2 = 45 each), not weight-blindly.
        let grants = weighted_max_min(
            &uniform(100.0),
            &[req(1.0, 10.0), req(1.0, 80.0), req(1.0, 80.0)],
        );
        for t in Tier::ALL {
            assert!((grants[0].get(t).gb() - 10.0).abs() < 1e-6);
            assert!((grants[1].get(t).gb() - 45.0).abs() < 1e-6);
            assert!((grants[2].get(t).gb() - 45.0).abs() < 1e-6);
        }
    }

    #[test]
    fn never_over_allocates_and_never_exceeds_demand() {
        let requests = [
            req(2.0, 13.0),
            req(0.5, 77.0),
            req(9.0, 41.0),
            req(1.0, 5.0),
        ];
        let grants = weighted_max_min(&uniform(60.0), &requests);
        for t in Tier::ALL {
            let total: f64 = grants.iter().map(|g| g.get(t).gb()).sum();
            assert!(total <= 60.0 + 1e-6, "over-allocated tier {t}");
            for (g, r) in grants.iter().zip(requests.iter()) {
                assert!(g.get(t).gb() <= r.demand.get(t).gb() + 1e-9);
            }
        }
    }

    #[test]
    fn zero_weight_and_zero_demand_draw_nothing() {
        let grants = weighted_max_min(&uniform(100.0), &[req(0.0, 50.0), req(1.0, 0.0)]);
        for t in Tier::ALL {
            assert_eq!(grants[0].get(t).gb(), 0.0);
            assert_eq!(grants[1].get(t).gb(), 0.0);
        }
    }

    #[test]
    fn ledger_commit_release_round_trip() {
        let mut ledger = CapacityLedger::new(uniform(100.0));
        assert!(ledger.commit(&uniform(60.0)));
        assert!((ledger.utilization() - 0.6).abs() < 1e-12);
        // A grant that no longer fits is refused atomically.
        assert!(!ledger.commit(&uniform(50.0)));
        assert!(
            (ledger.utilization() - 0.6).abs() < 1e-12,
            "refused commit must not move the books"
        );
        assert!(ledger.commit(&uniform(40.0)));
        assert!(!ledger.commit(&uniform(1.0)));
        ledger.release(&uniform(60.0));
        assert!(ledger.commit(&uniform(60.0)));
        ledger.release_all();
        assert_eq!(ledger.available(), uniform(100.0));
        assert_eq!(ledger.utilization(), 0.0);
    }

    #[test]
    fn release_floors_at_zero() {
        let mut ledger = CapacityLedger::new(uniform(10.0));
        assert!(ledger.commit(&uniform(4.0)));
        ledger.release(&uniform(9.0));
        assert_eq!(*ledger.committed(), PerTier::from_fn(|_| DataSize::ZERO));
    }

    #[test]
    fn allocation_is_deterministic() {
        let requests: Vec<ShareRequest> = (0..17)
            .map(|i| req(1.0 + (i % 3) as f64, 7.0 * (i + 1) as f64 % 53.0))
            .collect();
        let a = weighted_max_min(&uniform(120.0), &requests);
        let b = weighted_max_min(&uniform(120.0), &requests);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
