//! Error type for the cloud model.

use std::fmt;

/// Errors raised by catalog lookups, provisioning and cost accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// A tier name could not be parsed.
    UnknownTier(String),
    /// Requested capacity violates a provisioning rule.
    InvalidCapacity {
        /// Tier the request was made against.
        tier: String,
        /// Requested capacity in GB.
        requested_gb: f64,
        /// Human-readable rule that was violated.
        rule: &'static str,
    },
    /// A VM type name was not found in the price sheet.
    UnknownVmType(String),
    /// An attachment limit (e.g. 4 ephemeral volumes per VM) was exceeded.
    AttachmentLimit {
        /// Tier of the volumes being attached.
        tier: String,
        /// Number of volumes requested per VM.
        requested: usize,
        /// Maximum allowed per VM.
        limit: usize,
    },
    /// A cluster was configured with zero worker VMs.
    EmptyCluster,
    /// A redundancy scheme is degenerate (zero copies / zero data shards).
    InvalidRedundancy(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::UnknownTier(name) => write!(f, "unknown storage tier {name:?}"),
            CloudError::InvalidCapacity {
                tier,
                requested_gb,
                rule,
            } => write!(
                f,
                "invalid capacity {requested_gb} GB for tier {tier}: {rule}"
            ),
            CloudError::UnknownVmType(name) => write!(f, "unknown VM type {name:?}"),
            CloudError::AttachmentLimit {
                tier,
                requested,
                limit,
            } => write!(
                f,
                "cannot attach {requested} {tier} volumes per VM (limit {limit})"
            ),
            CloudError::EmptyCluster => {
                write!(f, "cluster must have at least one worker VM")
            }
            CloudError::InvalidRedundancy(reason) => {
                write!(f, "invalid redundancy scheme: {reason}")
            }
        }
    }
}

impl std::error::Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CloudError::InvalidCapacity {
            tier: "persSSD".into(),
            requested_gb: -5.0,
            rule: "capacity must be positive",
        };
        let msg = e.to_string();
        assert!(msg.contains("persSSD"));
        assert!(msg.contains("-5"));
        assert!(msg.contains("positive"));
    }
}
