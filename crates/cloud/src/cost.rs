//! Deployment cost accounting — Eq. 5 ($vm) and Eq. 6 ($store).
//!
//! The paper charges VM time per minute for the whole workload makespan and
//! storage per provisioned GB rounded up to whole hours. Tenant utility
//! (Eq. 2) is `(1/T) / ($vm + $store)` with `T` in minutes.

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::pricing::PriceSheet;
use crate::tier::{PerTier, Tier};
use crate::units::{DataSize, Duration, Money};

/// Itemised deployment cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Compute cost: `nvm · price_vm · T` (Eq. 5), master included.
    pub vm: Money,
    /// Storage cost per tier: `capacity[f] · price_store[f] · ceil(hours)`.
    pub storage: PerTier<Money>,
}

impl CostBreakdown {
    /// Total storage dollars across tiers.
    pub fn storage_total(&self) -> Money {
        Tier::ALL.iter().map(|&t| *self.storage.get(t)).sum()
    }

    /// Grand total (`$vm + $store`).
    pub fn total(&self) -> Money {
        self.vm + self.storage_total()
    }
}

/// Prices a deployment: fixed cluster size, per-tier provisioned capacity,
/// and a makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    prices: PriceSheet,
    /// Number of worker VMs.
    pub nvm: usize,
    /// Whether the master VM's cost is included (the paper's cluster has
    /// one master; its cost is marginal but real).
    pub include_master: bool,
}

impl CostModel {
    /// Build from a catalog and a cluster size.
    pub fn new(catalog: &Catalog, nvm: usize) -> CostModel {
        CostModel {
            prices: PriceSheet::from_catalog(catalog),
            nvm,
            include_master: true,
        }
    }

    /// Eq. 5: VM cost for makespan `t`.
    pub fn vm_cost(&self, t: Duration) -> Money {
        let worker = self.prices.worker_vm_per_minute * (t.mins() * self.nvm as f64);
        if self.include_master {
            worker + self.prices.master_vm_per_minute * t.mins()
        } else {
            worker
        }
    }

    /// Eq. 6: storage cost for per-tier aggregate `capacity` held for `t`
    /// (billed in whole hours, minimum one).
    pub fn storage_cost(&self, capacity: &PerTier<DataSize>, t: Duration) -> PerTier<Money> {
        let hours = t.billing_hours();
        PerTier::from_fn(|tier| {
            let cap = *capacity.get(tier);
            if cap.is_zero() {
                Money::ZERO
            } else {
                self.prices.storage_hourly(tier, cap) * hours
            }
        })
    }

    /// Full breakdown for a deployment.
    pub fn breakdown(&self, capacity: &PerTier<DataSize>, t: Duration) -> CostBreakdown {
        CostBreakdown {
            vm: self.vm_cost(t),
            storage: self.storage_cost(capacity, t),
        }
    }

    /// Eq. 2: tenant utility `(1/T) / ($vm + $store)` with `T` in minutes.
    ///
    /// Returns 0 for a non-positive makespan or cost (degenerate inputs).
    pub fn tenant_utility(&self, capacity: &PerTier<DataSize>, t: Duration) -> f64 {
        let total = self.breakdown(capacity, t).total();
        if t.mins() <= 0.0 || total.dollars() <= 0.0 {
            return 0.0;
        }
        (1.0 / t.mins()) / total.dollars()
    }

    /// Access the underlying price sheet.
    pub fn prices(&self) -> &PriceSheet {
        &self.prices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(ssd_gb: f64) -> PerTier<DataSize> {
        let mut c = PerTier::from_fn(|_| DataSize::ZERO);
        *c.get_mut(Tier::PersSsd) = DataSize::from_gb(ssd_gb);
        c
    }

    #[test]
    fn vm_cost_matches_hand_calc() {
        let model = CostModel::new(&Catalog::google_cloud(), 25);
        // 25 workers * $0.80/h + master $0.20/h for 2 h = $40.40.
        let c = model.vm_cost(Duration::from_hours(2.0));
        assert!((c.dollars() - (25.0 * 0.80 * 2.0 + 0.20 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn master_can_be_excluded() {
        let mut model = CostModel::new(&Catalog::google_cloud(), 10);
        model.include_master = false;
        let c = model.vm_cost(Duration::from_hours(1.0));
        assert!((c.dollars() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn storage_cost_rounds_up_to_hours() {
        let model = CostModel::new(&Catalog::google_cloud(), 1);
        let cap = caps(730.0); // $0.17*730/month → $0.17/h.
        let half_hour = model.storage_cost(&cap, Duration::from_mins(30.0));
        let full_hour = model.storage_cost(&cap, Duration::from_hours(1.0));
        assert_eq!(
            half_hour.get(Tier::PersSsd).dollars(),
            full_hour.get(Tier::PersSsd).dollars()
        );
        assert!((full_hour.get(Tier::PersSsd).dollars() - 0.17).abs() < 1e-9);
        let ninety_min = model.storage_cost(&cap, Duration::from_mins(90.0));
        assert!((ninety_min.get(Tier::PersSsd).dollars() - 0.34).abs() < 1e-9);
    }

    #[test]
    fn empty_tier_costs_nothing() {
        let model = CostModel::new(&Catalog::google_cloud(), 1);
        let cap = caps(100.0);
        let bd = model.breakdown(&cap, Duration::from_hours(1.0));
        assert_eq!(*bd.storage.get(Tier::EphSsd), Money::ZERO);
        assert_eq!(*bd.storage.get(Tier::ObjStore), Money::ZERO);
    }

    #[test]
    fn utility_falls_with_time_and_cost() {
        let model = CostModel::new(&Catalog::google_cloud(), 10);
        let cap = caps(1000.0);
        let fast = model.tenant_utility(&cap, Duration::from_mins(60.0));
        let slow = model.tenant_utility(&cap, Duration::from_mins(120.0));
        assert!(fast > slow, "shorter makespan must yield higher utility");
        let big = caps(10_000.0);
        let pricey = model.tenant_utility(&big, Duration::from_mins(60.0));
        assert!(fast > pricey, "more provisioned storage must cost utility");
    }

    #[test]
    fn utility_degenerate_inputs_are_zero() {
        let model = CostModel::new(&Catalog::google_cloud(), 10);
        assert_eq!(model.tenant_utility(&caps(100.0), Duration::ZERO), 0.0);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let model = CostModel::new(&Catalog::google_cloud(), 5);
        let mut cap = caps(500.0);
        *cap.get_mut(Tier::ObjStore) = DataSize::from_gb(2000.0);
        let bd = model.breakdown(&cap, Duration::from_hours(3.0));
        let sum = bd.vm + bd.storage_total();
        assert!((bd.total().dollars() - sum.dollars()).abs() < 1e-12);
    }
}
