//! Description of a single storage service (one row group of Table 1).

use serde::{Deserialize, Serialize};

use crate::error::CloudError;
use crate::redundancy::RedundancyScheme;
use crate::scaling::ScalingModel;
use crate::tier::Tier;
use crate::units::{Bandwidth, DataSize, Duration, Money};

/// A storage service offered by the cloud provider: one of the tiers of
/// Table 1 together with its performance surface, pricing, and provisioning
/// rules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageService {
    /// Which tier this service implements.
    pub tier: Tier,
    /// How performance responds to provisioned capacity.
    pub scaling: ScalingModel,
    /// Price per GB per month (Table 1's `$/month` column divided by GB).
    pub price_per_gb_month: Money,
    /// Fixed latency paid per object/request — the GCS-connector connection
    /// setup cost of §3.1.2. Zero for block devices.
    pub request_overhead: Duration,
    /// Largest provisionable volume, if bounded (10 240 GB for persistent
    /// disks; ephemeral SSD is bounded through `scaling`'s volume count).
    pub max_volume: Option<DataSize>,
    /// Maximum number of volumes attachable to one VM, if bounded.
    pub max_volumes_per_vm: Option<usize>,
    /// How the service keeps data alive. The default,
    /// [`RedundancyScheme::NONE`], models provider-internal durability
    /// already folded into the list price; explicit schemes make the
    /// raw-capacity overhead billable and shard loss simulatable.
    pub redundancy: RedundancyScheme,
}

impl StorageService {
    /// Aggregate sequential bandwidth one VM gets from `capacity` provisioned
    /// on this service.
    #[inline]
    pub fn throughput(&self, capacity: DataSize) -> Bandwidth {
        self.scaling.throughput(capacity)
    }

    /// Aggregate 4 KB IOPS for `capacity`.
    #[inline]
    pub fn iops(&self, capacity: DataSize) -> f64 {
        self.scaling.iops(capacity)
    }

    /// Round a raw dataset footprint up to the capacity that must actually
    /// be provisioned (volume granularity).
    #[inline]
    pub fn provisionable(&self, size: DataSize) -> DataSize {
        self.scaling.provisionable(size)
    }

    /// Hourly price for `capacity` of this service. Cloud storage is listed
    /// monthly; CAST bills by the hour (Eq. 6), using a 730-hour month.
    pub fn price_per_hour(&self, capacity: DataSize) -> Money {
        const HOURS_PER_MONTH: f64 = 730.0;
        self.price_per_gb_month * (capacity.gb() / HOURS_PER_MONTH)
    }

    /// Validate a requested per-VM capacity against this service's rules.
    pub fn validate_capacity(&self, capacity: DataSize) -> Result<(), CloudError> {
        if capacity.gb().is_nan() || capacity.gb() < 0.0 || !capacity.gb().is_finite() {
            return Err(CloudError::InvalidCapacity {
                tier: self.tier.name().to_string(),
                requested_gb: capacity.gb(),
                rule: "capacity must be a finite non-negative number",
            });
        }
        if let Some(max) = self.max_volume {
            // For volume-granular tiers the limit applies per volume, which
            // `scaling.provisionable` already respects; for linear tiers the
            // requested capacity itself may not exceed one max volume times
            // the per-VM attachment budget.
            let budget = self.max_volumes_per_vm.unwrap_or(1) as f64;
            if capacity.gb() > max.gb() * budget {
                return Err(CloudError::InvalidCapacity {
                    tier: self.tier.name().to_string(),
                    requested_gb: capacity.gb(),
                    rule: "capacity exceeds per-VM volume budget",
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> StorageService {
        StorageService {
            tier: Tier::ObjStore,
            scaling: ScalingModel::FlatStream {
                stream_bw: Bandwidth::from_mbps(265.0),
                iops: 550.0,
            },
            price_per_gb_month: Money::from_dollars(0.026),
            request_overhead: Duration::from_secs(0.08),
            max_volume: None,
            max_volumes_per_vm: None,
            redundancy: RedundancyScheme::NONE,
        }
    }

    #[test]
    fn hourly_price_uses_730_hour_month() {
        let s = obj();
        let hourly = s.price_per_hour(DataSize::from_gb(730.0));
        // 730 GB * $0.026/GB-month / 730 h = $0.026/h.
        assert!((hourly.dollars() - 0.026).abs() < 1e-12);
    }

    #[test]
    fn unbounded_service_accepts_huge_capacity() {
        let s = obj();
        assert!(s.validate_capacity(DataSize::from_tb(10_000.0)).is_ok());
    }

    #[test]
    fn negative_capacity_rejected() {
        let s = obj();
        assert!(s.validate_capacity(DataSize::from_gb(-1.0)).is_err());
    }

    #[test]
    fn bounded_service_rejects_over_budget() {
        let mut s = obj();
        s.max_volume = Some(DataSize::from_gb(10_240.0));
        s.max_volumes_per_vm = Some(2);
        assert!(s.validate_capacity(DataSize::from_gb(20_480.0)).is_ok());
        assert!(s.validate_capacity(DataSize::from_gb(20_481.0)).is_err());
    }
}
