//! The four cloud storage tiers of Table 1.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::error::CloudError;

/// A cloud storage service class, as offered by the provider.
///
/// The names mirror the paper's Table 1:
///
/// * [`Tier::EphSsd`] — VM-local ephemeral SSD. Fastest, but **not
///   persistent**: data must be staged in from / out to [`Tier::ObjStore`].
/// * [`Tier::PersSsd`] — network-attached persistent SSD; bandwidth scales
///   with provisioned capacity.
/// * [`Tier::PersHdd`] — network-attached persistent HDD; cheapest block
///   storage, bandwidth also capacity-scaled.
/// * [`Tier::ObjStore`] — RESTful object storage; cheapest overall, good
///   sequential streams, but pays a connection-setup penalty per object
///   (the GCS-connector effect of §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// VM-local ephemeral SSD (`ephSSD`).
    EphSsd,
    /// Network-attached persistent SSD (`persSSD`).
    PersSsd,
    /// Network-attached persistent HDD (`persHDD`).
    PersHdd,
    /// Object storage (`objStore`).
    ObjStore,
}

impl Tier {
    /// All tiers, in Table 1 order.
    pub const ALL: [Tier; 4] = [Tier::EphSsd, Tier::PersSsd, Tier::PersHdd, Tier::ObjStore];

    /// The paper's name for this tier.
    pub fn name(self) -> &'static str {
        match self {
            Tier::EphSsd => "ephSSD",
            Tier::PersSsd => "persSSD",
            Tier::PersHdd => "persHDD",
            Tier::ObjStore => "objStore",
        }
    }

    /// Whether data on this tier survives VM termination.
    ///
    /// Ephemeral SSD data is lost with the VM, so CAST charges staging
    /// transfers (and backing object-store capacity) to jobs placed there.
    pub fn is_persistent(self) -> bool {
        !matches!(self, Tier::EphSsd)
    }

    /// Whether this is a block device (attached volume) rather than an
    /// object service.
    pub fn is_block(self) -> bool {
        !matches!(self, Tier::ObjStore)
    }

    /// Whether volume bandwidth scales with provisioned capacity.
    pub fn scales_with_capacity(self) -> bool {
        matches!(self, Tier::PersSsd | Tier::PersHdd)
    }

    /// Index of the tier in [`Tier::ALL`]; handy for dense per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Tier::EphSsd => 0,
            Tier::PersSsd => 1,
            Tier::PersHdd => 2,
            Tier::ObjStore => 3,
        }
    }

    /// Inverse of [`Tier::index`].
    pub fn from_index(i: usize) -> Option<Tier> {
        Tier::ALL.get(i).copied()
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Tier {
    type Err = CloudError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ephssd" | "eph" | "local-ssd" => Ok(Tier::EphSsd),
            "persssd" | "pd-ssd" | "ssd" => Ok(Tier::PersSsd),
            "pershdd" | "pd-standard" | "hdd" => Ok(Tier::PersHdd),
            "objstore" | "gcs" | "object" | "obj" => Ok(Tier::ObjStore),
            other => Err(CloudError::UnknownTier(other.to_string())),
        }
    }
}

/// A dense map from [`Tier`] to `T`, avoiding hash maps in hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerTier<T> {
    values: [T; 4],
}

impl<T> PerTier<T> {
    /// Build from a function of each tier.
    pub fn from_fn(mut f: impl FnMut(Tier) -> T) -> Self {
        PerTier {
            values: [
                f(Tier::EphSsd),
                f(Tier::PersSsd),
                f(Tier::PersHdd),
                f(Tier::ObjStore),
            ],
        }
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, tier: Tier) -> &T {
        &self.values[tier.index()]
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, tier: Tier) -> &mut T {
        &mut self.values[tier.index()]
    }

    /// Iterate `(tier, &value)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (Tier, &T)> {
        Tier::ALL.iter().map(move |&t| (t, self.get(t)))
    }

    /// Iterate `(tier, &mut value)` pairs in Table 1 order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Tier, &mut T)> {
        self.values
            .iter_mut()
            .enumerate()
            .map(|(i, v)| (Tier::from_index(i).expect("dense tier index"), v))
    }
}

impl<T> std::ops::Index<Tier> for PerTier<T> {
    type Output = T;
    #[inline]
    fn index(&self, tier: Tier) -> &T {
        self.get(tier)
    }
}

impl<T> std::ops::IndexMut<Tier> for PerTier<T> {
    #[inline]
    fn index_mut(&mut self, tier: Tier) -> &mut T {
        self.get_mut(tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_match_paper() {
        assert_eq!(Tier::EphSsd.name(), "ephSSD");
        assert_eq!(Tier::PersSsd.name(), "persSSD");
        assert_eq!(Tier::PersHdd.name(), "persHDD");
        assert_eq!(Tier::ObjStore.name(), "objStore");
    }

    #[test]
    fn only_ephemeral_is_non_persistent() {
        let non_persistent: Vec<_> = Tier::ALL.iter().filter(|t| !t.is_persistent()).collect();
        assert_eq!(non_persistent, vec![&Tier::EphSsd]);
    }

    #[test]
    fn only_network_block_tiers_scale() {
        assert!(!Tier::EphSsd.scales_with_capacity());
        assert!(Tier::PersSsd.scales_with_capacity());
        assert!(Tier::PersHdd.scales_with_capacity());
        assert!(!Tier::ObjStore.scales_with_capacity());
    }

    #[test]
    fn index_roundtrip() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_index(t.index()), Some(t));
        }
        assert_eq!(Tier::from_index(4), None);
    }

    #[test]
    fn parse_accepts_paper_and_gcp_spellings() {
        assert_eq!("ephSSD".parse::<Tier>().unwrap(), Tier::EphSsd);
        assert_eq!("pd-ssd".parse::<Tier>().unwrap(), Tier::PersSsd);
        assert_eq!("persHDD".parse::<Tier>().unwrap(), Tier::PersHdd);
        assert_eq!("gcs".parse::<Tier>().unwrap(), Tier::ObjStore);
        assert!("floppy".parse::<Tier>().is_err());
    }

    #[test]
    fn per_tier_indexing() {
        let mut m = PerTier::from_fn(|t| t.index() * 10);
        assert_eq!(m[Tier::PersHdd], 20);
        m[Tier::PersHdd] = 99;
        assert_eq!(m[Tier::PersHdd], 99);
        let collected: Vec<_> = m.iter().map(|(t, v)| (t, *v)).collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[3], (Tier::ObjStore, 30));
    }
}
