//! Virtual machine shapes.
//!
//! The paper's testbed uses `n1-standard-16` slaves (16 vCPUs, 60 GB) and an
//! `n1-standard-4` master. CAST's optimization model deliberately fixes one
//! VM type (§4.2.1 footnote 3) and tiers only storage; we keep the VM model
//! small but explicit so the cost terms (Eq. 5) and the simulator's slot and
//! NIC limits have one source of truth.

use serde::{Deserialize, Serialize};

use crate::units::{Bandwidth, Duration, Money};

/// A virtual machine shape with its price and the resources the MapReduce
/// runtime carves out of it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmType {
    /// Provider name, e.g. `n1-standard-16`.
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Guest memory in GB.
    pub memory_gb: f64,
    /// On-demand price per hour.
    pub price_per_hour: Money,
    /// Network bandwidth available to the guest. Google Cloud granted
    /// ~2 Gbit/s per vCPU, capped at 16 Gbit/s, circa 2015.
    pub nic: Bandwidth,
    /// Concurrent map tasks this VM runs (one per vCPU by default).
    pub map_slots: usize,
    /// Concurrent reduce tasks this VM runs (half the vCPUs by default).
    pub reduce_slots: usize,
}

impl VmType {
    /// The 16-vCPU worker shape used by the paper's evaluation cluster.
    pub fn n1_standard_16() -> VmType {
        VmType {
            name: "n1-standard-16".to_string(),
            vcpus: 16,
            memory_gb: 60.0,
            // GCE on-demand price as of early 2015.
            price_per_hour: Money::from_dollars(0.80),
            nic: Bandwidth::from_gbps(2.0), // 16 Gbit/s
            map_slots: 16,
            reduce_slots: 8,
        }
    }

    /// The 4-vCPU master shape.
    pub fn n1_standard_4() -> VmType {
        VmType {
            name: "n1-standard-4".to_string(),
            vcpus: 4,
            memory_gb: 15.0,
            price_per_hour: Money::from_dollars(0.20),
            nic: Bandwidth::from_gbps(1.0), // 8 Gbit/s
            map_slots: 4,
            reduce_slots: 2,
        }
    }

    /// Price for running this VM for `t`, billed per minute (Eq. 5 charges
    /// `price_vm · T` with `T` in minutes).
    pub fn cost_for(&self, t: Duration) -> Money {
        self.price_per_hour * t.hours()
    }

    /// Per-minute price, the `price_vm` of Table 3.
    pub fn price_per_minute(&self) -> Money {
        self.price_per_hour * (1.0 / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_16_shape() {
        let vm = VmType::n1_standard_16();
        assert_eq!(vm.vcpus, 16);
        assert_eq!(vm.map_slots, 16);
        assert_eq!(vm.reduce_slots, 8);
        assert!((vm.nic.mb_per_sec() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn cost_scales_linearly_with_time() {
        let vm = VmType::n1_standard_16();
        let one_hour = vm.cost_for(Duration::from_hours(1.0));
        let two_hours = vm.cost_for(Duration::from_hours(2.0));
        assert!((two_hours.dollars() - 2.0 * one_hour.dollars()).abs() < 1e-12);
        assert!((one_hour.dollars() - 0.80).abs() < 1e-12);
    }

    #[test]
    fn per_minute_price_is_hourly_over_sixty() {
        let vm = VmType::n1_standard_4();
        assert!((vm.price_per_minute().dollars() - 0.20 / 60.0).abs() < 1e-12);
    }
}
