//! Cluster storage provisioning.
//!
//! A tiering plan talks about *aggregate* capacity per tier ("this workload
//! needs 2 TB of persSSD"); a real deployment attaches *volumes to VMs*.
//! The [`Provisioner`] turns aggregates into a per-VM [`ProvisionPlan`],
//! enforcing the provider rules (375 GB ephemeral volume granularity, at
//! most 4 ephemeral volumes per VM, 10 240 GB per persistent volume), and
//! exposes the resulting per-VM bandwidth that the simulator and the
//! REG(·) regression both consume.

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::error::CloudError;
use crate::tier::{PerTier, Tier};
use crate::units::{Bandwidth, DataSize};

/// One tier's worth of storage attached to a single VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VolumeSpec {
    /// The tier of the attached storage.
    pub tier: Tier,
    /// Provisioned capacity on this VM (already rounded to volume
    /// granularity where applicable).
    pub capacity: DataSize,
}

/// A fully-resolved storage layout for a homogeneous cluster: every worker
/// VM carries the same volume set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvisionPlan {
    /// Per-VM capacity on each tier.
    pub per_vm: PerTier<DataSize>,
    /// Number of worker VMs.
    pub nvm: usize,
}

impl ProvisionPlan {
    /// Aggregate provisioned capacity across the cluster for `tier`.
    pub fn aggregate(&self, tier: Tier) -> DataSize {
        *self.per_vm.get(tier) * self.nvm as f64
    }

    /// Aggregate capacity on every tier.
    pub fn aggregates(&self) -> PerTier<DataSize> {
        PerTier::from_fn(|t| self.aggregate(t))
    }

    /// Total provisioned bytes across all tiers and VMs.
    pub fn total(&self) -> DataSize {
        Tier::ALL.iter().map(|&t| self.aggregate(t)).sum()
    }
}

/// Validates and materialises provisioning requests against a catalog.
#[derive(Debug, Clone)]
pub struct Provisioner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Provisioner<'a> {
    /// Create a provisioner for `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Provisioner { catalog }
    }

    /// Turn aggregate per-tier capacity demands into a per-VM plan for a
    /// cluster of `nvm` workers.
    ///
    /// Object storage needs no attachment and passes through unrounded.
    /// Block tiers are split evenly across VMs and rounded up to the tier's
    /// provisionable granularity; attachment limits are enforced.
    pub fn plan(
        &self,
        aggregate: &PerTier<DataSize>,
        nvm: usize,
    ) -> Result<ProvisionPlan, CloudError> {
        assert!(nvm > 0, "cluster must have at least one worker");
        let mut per_vm = PerTier::from_fn(|_| DataSize::ZERO);
        for tier in Tier::ALL {
            let total = *aggregate.get(tier);
            if total.is_zero() {
                continue;
            }
            let svc = self.catalog.service(tier);
            let raw = total / nvm as f64;
            let rounded = if tier.is_block() {
                svc.provisionable(raw)
            } else {
                raw
            };
            if let (Some(limit), Some(max_vol)) = (svc.max_volumes_per_vm, svc.max_volume) {
                let nvol = (rounded.gb() / max_vol.gb()).ceil() as usize;
                if nvol > limit {
                    return Err(CloudError::AttachmentLimit {
                        tier: tier.name().to_string(),
                        requested: nvol,
                        limit,
                    });
                }
            }
            svc.validate_capacity(rounded)?;
            *per_vm.get_mut(tier) = rounded;
        }
        Ok(ProvisionPlan { per_vm, nvm })
    }

    /// Sequential bandwidth one VM enjoys on `tier` under `plan`.
    pub fn per_vm_bandwidth(&self, plan: &ProvisionPlan, tier: Tier) -> Bandwidth {
        let cap = *plan.per_vm.get(tier);
        if tier.is_block() && cap.is_zero() {
            return Bandwidth::ZERO;
        }
        self.catalog.service(tier).throughput(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(eph: f64, ssd: f64, hdd: f64, obj: f64) -> PerTier<DataSize> {
        let mut m = PerTier::from_fn(|_| DataSize::ZERO);
        *m.get_mut(Tier::EphSsd) = DataSize::from_gb(eph);
        *m.get_mut(Tier::PersSsd) = DataSize::from_gb(ssd);
        *m.get_mut(Tier::PersHdd) = DataSize::from_gb(hdd);
        *m.get_mut(Tier::ObjStore) = DataSize::from_gb(obj);
        m
    }

    #[test]
    fn ephemeral_rounds_to_whole_volumes_per_vm() {
        let catalog = Catalog::google_cloud();
        let p = Provisioner::new(&catalog);
        // 1000 GB over 10 VMs = 100 GB/VM → one 375 GB volume each.
        let plan = p.plan(&agg(1000.0, 0.0, 0.0, 0.0), 10).unwrap();
        assert!((plan.per_vm.get(Tier::EphSsd).gb() - 375.0).abs() < 1e-9);
        assert!((plan.aggregate(Tier::EphSsd).gb() - 3750.0).abs() < 1e-9);
    }

    #[test]
    fn ephemeral_attachment_limit_enforced() {
        let catalog = Catalog::google_cloud();
        let p = Provisioner::new(&catalog);
        // 375*5 GB per VM would need 5 volumes — over the 4-volume limit.
        let err = p.plan(&agg(375.0 * 5.0, 0.0, 0.0, 0.0), 1).unwrap_err();
        assert!(matches!(err, CloudError::AttachmentLimit { .. }));
    }

    #[test]
    fn objstore_passes_through_unrounded() {
        let catalog = Catalog::google_cloud();
        let p = Provisioner::new(&catalog);
        let plan = p.plan(&agg(0.0, 0.0, 0.0, 123.4), 10).unwrap();
        assert!((plan.per_vm.get(Tier::ObjStore).gb() - 12.34).abs() < 1e-9);
    }

    #[test]
    fn per_vm_bandwidth_reflects_scaling() {
        let catalog = Catalog::google_cloud();
        let p = Provisioner::new(&catalog);
        let plan = p.plan(&agg(0.0, 2000.0, 0.0, 0.0), 10).unwrap();
        // 200 GB/VM of persSSD ≈ 93.6 MB/s.
        let bw = p.per_vm_bandwidth(&plan, Tier::PersSsd);
        assert!((bw.mb_per_sec() - 0.468 * 200.0).abs() < 1e-9);
        // Unprovisioned block tier gives zero bandwidth.
        assert_eq!(p.per_vm_bandwidth(&plan, Tier::PersHdd), Bandwidth::ZERO);
        // objStore bandwidth exists without provisioning.
        let plan2 = p.plan(&agg(0.0, 0.0, 0.0, 10.0), 10).unwrap();
        assert!(p.per_vm_bandwidth(&plan2, Tier::ObjStore).mb_per_sec() > 0.0);
    }

    #[test]
    fn totals_add_up() {
        let catalog = Catalog::google_cloud();
        let p = Provisioner::new(&catalog);
        let plan = p.plan(&agg(0.0, 1000.0, 500.0, 250.0), 5).unwrap();
        let want = 1000.0 + 500.0 + 250.0;
        assert!((plan.total().gb() - want).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_vm_cluster_panics() {
        let catalog = Catalog::google_cloud();
        let _ = Provisioner::new(&catalog).plan(&agg(0.0, 0.0, 0.0, 0.0), 0);
    }
}
