//! # cast-cloud
//!
//! Cloud provider model for the CAST storage-tiering framework (HPDC'15).
//!
//! This crate captures everything CAST needs to know about the cloud it is
//! deploying into:
//!
//! * the **storage service catalog** — the four Google Cloud services of
//!   Table 1 (`ephSSD`, `persSSD`, `persHDD`, `objStore`) with their
//!   capacity, throughput, IOPS and price characteristics
//!   ([`catalog::Catalog`]),
//! * **capacity→performance scaling** — network-attached volumes scale
//!   bandwidth with provisioned capacity ([`scaling`]),
//! * **provisioning rules** — volume granularity and per-VM attachment
//!   limits ([`provision`]),
//! * **shared-capacity accounting** — the per-shard capacity ledger and
//!   weighted max-min fair-share allocator multi-tenant serving draws
//!   epoch grants from ([`ledger`]),
//! * **VM shapes and prices** ([`vm`]), and
//! * **cost accounting** — the hourly-rounded storage billing and per-minute
//!   VM billing of Eq. 5/6 ([`cost`]).
//!
//! All quantities flow through the strongly-typed units in [`units`] so that
//! gigabytes, megabytes-per-second, dollars and seconds cannot be confused.

pub mod catalog;
pub mod cost;
pub mod error;
pub mod ledger;
pub mod pricing;
pub mod provision;
pub mod redundancy;
pub mod scaling;
pub mod service;
pub mod tier;
pub mod units;
pub mod vm;

pub use catalog::Catalog;
pub use cost::{CostBreakdown, CostModel};
pub use error::CloudError;
pub use ledger::{weighted_max_min, CapacityLedger, ShareRequest};
pub use pricing::PriceSheet;
pub use provision::{ProvisionPlan, Provisioner, VolumeSpec};
pub use redundancy::RedundancyScheme;
pub use service::StorageService;
pub use tier::Tier;
pub use units::{Bandwidth, DataSize, Duration, Money};
pub use vm::VmType;
