//! Strongly-typed units used throughout the workspace.
//!
//! The CAST model mixes gigabytes, megabytes per second, dollars per
//! GB-month and wall-clock seconds; a single transposed constant silently
//! corrupts every downstream tiering decision. These newtypes keep the units
//! straight at compile time while staying `Copy` and arithmetic-friendly.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of bytes in one (decimal) gigabyte, matching cloud-provider
/// marketing units used in Table 1.
pub const BYTES_PER_GB: f64 = 1_000_000_000.0;
/// Number of bytes in one (decimal) megabyte.
pub const BYTES_PER_MB: f64 = 1_000_000.0;

/// An amount of data, stored internally in bytes.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct DataSize(f64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0.0);

    /// Construct from raw bytes.
    #[inline]
    pub fn from_bytes(bytes: f64) -> Self {
        debug_assert!(bytes.is_finite());
        DataSize(bytes)
    }

    /// Construct from decimal megabytes.
    #[inline]
    pub fn from_mb(mb: f64) -> Self {
        DataSize(mb * BYTES_PER_MB)
    }

    /// Construct from decimal gigabytes.
    #[inline]
    pub fn from_gb(gb: f64) -> Self {
        DataSize(gb * BYTES_PER_GB)
    }

    /// Construct from decimal terabytes.
    #[inline]
    pub fn from_tb(tb: f64) -> Self {
        DataSize(tb * 1000.0 * BYTES_PER_GB)
    }

    /// Raw bytes.
    #[inline]
    pub fn bytes(self) -> f64 {
        self.0
    }

    /// Decimal megabytes.
    #[inline]
    pub fn mb(self) -> f64 {
        self.0 / BYTES_PER_MB
    }

    /// Decimal gigabytes.
    #[inline]
    pub fn gb(self) -> f64 {
        self.0 / BYTES_PER_GB
    }

    /// True if this size is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: DataSize) -> DataSize {
        DataSize(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: DataSize) -> DataSize {
        DataSize(self.0.min(other.0))
    }

    /// Time to move this much data at `bw`, saturating to zero for empty
    /// transfers. Panics in debug builds if `bw` is non-positive while the
    /// size is non-zero.
    #[inline]
    pub fn transfer_time(self, bw: Bandwidth) -> Duration {
        if self.0 <= 0.0 {
            return Duration::ZERO;
        }
        debug_assert!(bw.mb_per_sec() > 0.0, "transfer over zero bandwidth");
        Duration::from_secs(self.mb() / bw.mb_per_sec())
    }

    /// Scale by a dimensionless factor (e.g. a selectivity ratio).
    #[inline]
    pub fn scale(self, factor: f64) -> DataSize {
        DataSize(self.0 * factor)
    }
}

impl Add for DataSize {
    type Output = DataSize;
    #[inline]
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    #[inline]
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    #[inline]
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 - rhs.0)
    }
}

impl SubAssign for DataSize {
    #[inline]
    fn sub_assign(&mut self, rhs: DataSize) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for DataSize {
    type Output = DataSize;
    #[inline]
    fn mul(self, rhs: f64) -> DataSize {
        DataSize(self.0 * rhs)
    }
}

impl Div<f64> for DataSize {
    type Output = DataSize;
    #[inline]
    fn div(self, rhs: f64) -> DataSize {
        DataSize(self.0 / rhs)
    }
}

impl Div for DataSize {
    type Output = f64;
    #[inline]
    fn div(self, rhs: DataSize) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> DataSize {
        iter.fold(DataSize::ZERO, Add::add)
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let gb = self.gb();
        if gb >= 1000.0 {
            write!(f, "{:.2} TB", gb / 1000.0)
        } else if gb >= 1.0 {
            write!(f, "{gb:.1} GB")
        } else {
            write!(f, "{:.1} MB", self.mb())
        }
    }
}

/// Sequential bandwidth, in decimal megabytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth.
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from MB/s.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        debug_assert!(mbps >= 0.0 && mbps.is_finite());
        Bandwidth(mbps)
    }

    /// Construct from GB/s.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Bandwidth(gbps * 1000.0)
    }

    /// MB/s value.
    #[inline]
    pub fn mb_per_sec(self) -> f64 {
        self.0
    }

    /// Element-wise minimum — the effective rate of two serial bottlenecks.
    #[inline]
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.min(other.0))
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Bandwidth) -> Bandwidth {
        Bandwidth(self.0.max(other.0))
    }

    /// Fair share of this bandwidth across `n` concurrent streams.
    #[inline]
    pub fn share(self, n: usize) -> Bandwidth {
        if n == 0 {
            self
        } else {
            Bandwidth(self.0 / n as f64)
        }
    }
}

impl Add for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn add(self, rhs: Bandwidth) -> Bandwidth {
        Bandwidth(self.0 + rhs.0)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 * rhs)
    }
}

impl Div<f64> for Bandwidth {
    type Output = Bandwidth;
    #[inline]
    fn div(self, rhs: f64) -> Bandwidth {
        Bandwidth(self.0 / rhs)
    }
}

impl Sum for Bandwidth {
    fn sum<I: Iterator<Item = Bandwidth>>(iter: I) -> Bandwidth {
        iter.fold(Bandwidth::ZERO, Add::add)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} MB/s", self.0)
    }
}

/// A span of (simulated) wall-clock time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// Zero seconds.
    pub const ZERO: Duration = Duration(0.0);
    /// Positive infinity; used as "never" in event scheduling.
    pub const INFINITY: Duration = Duration(f64::INFINITY);

    /// Construct from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan());
        Duration(secs)
    }

    /// Construct from minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Duration(mins * 60.0)
    }

    /// Construct from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Duration(hours * 3600.0)
    }

    /// Seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Minutes.
    #[inline]
    pub fn mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Whole billing hours, rounded up (cloud storage is billed hourly;
    /// Eq. 6 uses `ceil(T/60)` with `T` in minutes).
    #[inline]
    pub fn billing_hours(self) -> f64 {
        self.hours().ceil().max(1.0)
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Element-wise minimum.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// True if zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True if finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Duration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 3600.0 {
            write!(f, "{:.2} h", self.hours())
        } else if self.0 >= 60.0 {
            write!(f, "{:.1} min", self.mins())
        } else {
            write!(f, "{:.1} s", self.0)
        }
    }
}

/// US dollars.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Money(f64);

impl Money {
    /// Zero dollars.
    pub const ZERO: Money = Money(0.0);

    /// Construct from a dollar amount.
    #[inline]
    pub fn from_dollars(d: f64) -> Self {
        debug_assert!(d.is_finite());
        Money(d)
    }

    /// Dollar amount.
    #[inline]
    pub fn dollars(self) -> f64 {
        self.0
    }

    /// Element-wise maximum.
    #[inline]
    pub fn max(self, other: Money) -> Money {
        Money(self.0.max(other.0))
    }
}

impl Add for Money {
    type Output = Money;
    #[inline]
    fn add(self, rhs: Money) -> Money {
        Money(self.0 + rhs.0)
    }
}

impl AddAssign for Money {
    #[inline]
    fn add_assign(&mut self, rhs: Money) {
        self.0 += rhs.0;
    }
}

impl Sub for Money {
    type Output = Money;
    #[inline]
    fn sub(self, rhs: Money) -> Money {
        Money(self.0 - rhs.0)
    }
}

impl Neg for Money {
    type Output = Money;
    #[inline]
    fn neg(self) -> Money {
        Money(-self.0)
    }
}

impl Mul<f64> for Money {
    type Output = Money;
    #[inline]
    fn mul(self, rhs: f64) -> Money {
        Money(self.0 * rhs)
    }
}

impl Div for Money {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Money) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, Add::add)
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.2}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasize_roundtrips_units() {
        let s = DataSize::from_gb(1.5);
        assert!((s.mb() - 1500.0).abs() < 1e-9);
        assert!((s.bytes() - 1.5e9).abs() < 1e-3);
        assert!((DataSize::from_tb(2.0).gb() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn datasize_arithmetic() {
        let a = DataSize::from_gb(10.0);
        let b = DataSize::from_gb(4.0);
        assert!(((a + b).gb() - 14.0).abs() < 1e-12);
        assert!(((a - b).gb() - 6.0).abs() < 1e-12);
        assert!(((a * 2.0).gb() - 20.0).abs() < 1e-12);
        assert!(((a / 2.0).gb() - 5.0).abs() < 1e-12);
        assert!((a / b - 2.5).abs() < 1e-12);
        let total: DataSize = [a, b].into_iter().sum();
        assert!((total.gb() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_matches_hand_calc() {
        // 1 GB at 100 MB/s = 10 seconds.
        let t = DataSize::from_gb(1.0).transfer_time(Bandwidth::from_mbps(100.0));
        assert!((t.secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time_of_zero_bytes_is_zero_even_at_zero_bandwidth() {
        let t = DataSize::ZERO.transfer_time(Bandwidth::ZERO);
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn bandwidth_share_is_fair() {
        let bw = Bandwidth::from_mbps(300.0);
        assert!((bw.share(3).mb_per_sec() - 100.0).abs() < 1e-12);
        // Sharing across zero streams leaves it untouched.
        assert_eq!(bw.share(0), bw);
    }

    #[test]
    fn billing_hours_round_up_with_minimum_of_one() {
        assert_eq!(Duration::from_mins(5.0).billing_hours(), 1.0);
        assert_eq!(Duration::from_hours(1.0).billing_hours(), 1.0);
        assert_eq!(Duration::from_mins(61.0).billing_hours(), 2.0);
        assert_eq!(Duration::ZERO.billing_hours(), 1.0);
    }

    #[test]
    fn duration_display_picks_sane_units() {
        assert_eq!(format!("{}", Duration::from_secs(30.0)), "30.0 s");
        assert_eq!(format!("{}", Duration::from_mins(5.0)), "5.0 min");
        assert_eq!(format!("{}", Duration::from_hours(2.0)), "2.00 h");
    }

    #[test]
    fn money_arithmetic() {
        let a = Money::from_dollars(10.0);
        let b = Money::from_dollars(2.5);
        assert!(((a + b).dollars() - 12.5).abs() < 1e-12);
        assert!(((a - b).dollars() - 7.5).abs() < 1e-12);
        assert!(((a * 3.0).dollars() - 30.0).abs() < 1e-12);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn datasize_display() {
        assert_eq!(format!("{}", DataSize::from_gb(1500.0)), "1.50 TB");
        assert_eq!(format!("{}", DataSize::from_gb(12.0)), "12.0 GB");
        assert_eq!(format!("{}", DataSize::from_mb(12.0)), "12.0 MB");
    }
}
