//! The storage service catalog — Table 1 of the paper as data.

use serde::{Deserialize, Serialize};

use crate::redundancy::RedundancyScheme;
use crate::scaling::ScalingModel;
use crate::service::StorageService;
use crate::tier::{PerTier, Tier};
use crate::units::{Bandwidth, DataSize, Duration, Money};
use crate::vm::VmType;

/// Cluster-wide object-store throughput ceiling in MB/s (2015-era GCS
/// bucket throughput: individual VMs each saw ~265 MB/s, but a whole
/// cluster hammering one bucket saturated at roughly a dozen VMs' worth).
pub const OBJSTORE_CLUSTER_MBPS: f64 = 3500.0;

/// A provider's storage offerings plus the VM shape CAST deploys on.
///
/// The default, [`Catalog::google_cloud`], is Table 1 verbatim (Google Cloud,
/// prices and measurements as of 2015-01-14). Other providers — or ablation
/// variants such as "objStore with no request overhead" — are expressed by
/// mutating a copy.
///
/// ```
/// use cast_cloud::{Catalog, Tier};
/// use cast_cloud::units::DataSize;
///
/// let catalog = Catalog::google_cloud();
/// let ssd = catalog.service(Tier::PersSsd);
/// // A 500 GB persSSD volume delivers Table 1's 234 MB/s.
/// assert_eq!(ssd.throughput(DataSize::from_gb(500.0)).mb_per_sec().round(), 234.0);
/// assert_eq!(ssd.iops(DataSize::from_gb(500.0)), 15_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    services: PerTier<StorageService>,
    /// Worker VM shape used for all slaves.
    pub worker_vm: VmType,
    /// Master VM shape (runs no tasks; contributes cost only).
    pub master_vm: VmType,
}

impl Catalog {
    /// Table 1: Google Cloud storage details.
    ///
    /// * `ephSSD` — 375 GB volumes, 733 MB/s and 100 000 IOPS each, at most
    ///   4 per VM, $0.218/GB-month.
    /// * `persSSD` — linear scaling ≈0.468 MB/s and exactly 30 IOPS per GB
    ///   (48/118/234 MB/s and 3 000/7 500/15 000 IOPS at 100/250/500 GB),
    ///   up to 10 240 GB per volume, $0.17/GB-month.
    /// * `persHDD` — ≈0.194 MB/s and 1.5 IOPS per GB (20/45/97 MB/s at
    ///   100/250/500 GB), up to 10 240 GB, $0.04/GB-month.
    /// * `objStore` — 265 MB/s streams, 550 IOPS, no capacity limit,
    ///   $0.026/GB-month, plus a per-request connection-setup overhead
    ///   (the GCS-connector effect of §3.1.2).
    pub fn google_cloud() -> Catalog {
        let services = PerTier::from_fn(|tier| match tier {
            Tier::EphSsd => StorageService {
                tier,
                scaling: ScalingModel::PerVolume {
                    volume: DataSize::from_gb(375.0),
                    bw_per_volume: Bandwidth::from_mbps(733.0),
                    iops_per_volume: 100_000.0,
                    max_volumes: 4,
                },
                price_per_gb_month: Money::from_dollars(0.218),
                request_overhead: Duration::ZERO,
                max_volume: Some(DataSize::from_gb(375.0)),
                max_volumes_per_vm: Some(4),
                redundancy: RedundancyScheme::NONE,
            },
            Tier::PersSsd => StorageService {
                tier,
                scaling: ScalingModel::Linear {
                    bw_per_gb: 0.468,
                    iops_per_gb: 30.0,
                    // The 2015-era per-VM persistent-SSD throughput ceiling
                    // (Table 1's 500 GB row sits essentially at the cap).
                    bw_cap: Bandwidth::from_mbps(240.0),
                    iops_cap: 15_000.0,
                },
                price_per_gb_month: Money::from_dollars(0.17),
                request_overhead: Duration::ZERO,
                max_volume: Some(DataSize::from_gb(10_240.0)),
                max_volumes_per_vm: Some(8),
                redundancy: RedundancyScheme::NONE,
            },
            Tier::PersHdd => StorageService {
                tier,
                scaling: ScalingModel::Linear {
                    bw_per_gb: 0.194,
                    iops_per_gb: 1.5,
                    bw_cap: Bandwidth::from_mbps(180.0),
                    iops_cap: 3_000.0,
                },
                price_per_gb_month: Money::from_dollars(0.04),
                request_overhead: Duration::ZERO,
                max_volume: Some(DataSize::from_gb(10_240.0)),
                max_volumes_per_vm: Some(8),
                redundancy: RedundancyScheme::NONE,
            },
            Tier::ObjStore => StorageService {
                tier,
                scaling: ScalingModel::FlatStream {
                    stream_bw: Bandwidth::from_mbps(265.0),
                    iops: 550.0,
                },
                price_per_gb_month: Money::from_dollars(0.026),
                request_overhead: Duration::from_secs(0.5),
                max_volume: None,
                max_volumes_per_vm: None,
                redundancy: RedundancyScheme::NONE,
            },
        });
        Catalog {
            services,
            worker_vm: VmType::n1_standard_16(),
            master_vm: VmType::n1_standard_4(),
        }
    }

    /// An AWS-2015-style catalog, demonstrating that the model is not
    /// Google-specific (§1: "Other cloud service providers such as AWS
    /// EC2, Microsoft Azure, and HP Cloud provide similar storage services
    /// with different performance–cost trade-offs"):
    ///
    /// * instance-store SSD (~800 GB volumes on i2-class instances),
    /// * EBS gp2 (3 IOPS/GB burstable, ~0.75 MB/s per GB effective
    ///   streaming, 160 MB/s per-volume ceiling, $0.10/GB-month),
    /// * EBS magnetic ($0.05/GB-month),
    /// * S3 (no capacity limit, $0.03/GB-month, higher request latency).
    pub fn aws_like() -> Catalog {
        let mut c = Catalog::google_cloud();
        *c.service_mut(Tier::EphSsd) = StorageService {
            tier: Tier::EphSsd,
            scaling: ScalingModel::PerVolume {
                volume: DataSize::from_gb(800.0),
                bw_per_volume: Bandwidth::from_mbps(400.0),
                iops_per_volume: 40_000.0,
                max_volumes: 8,
            },
            price_per_gb_month: Money::from_dollars(0.0), // bundled with the instance
            request_overhead: Duration::ZERO,
            max_volume: Some(DataSize::from_gb(800.0)),
            max_volumes_per_vm: Some(8),
            redundancy: RedundancyScheme::NONE,
        };
        *c.service_mut(Tier::PersSsd) = StorageService {
            tier: Tier::PersSsd,
            scaling: ScalingModel::Linear {
                bw_per_gb: 0.75,
                iops_per_gb: 3.0,
                bw_cap: Bandwidth::from_mbps(160.0),
                iops_cap: 10_000.0,
            },
            price_per_gb_month: Money::from_dollars(0.10),
            request_overhead: Duration::ZERO,
            max_volume: Some(DataSize::from_gb(16_384.0)),
            max_volumes_per_vm: Some(8),
            redundancy: RedundancyScheme::NONE,
        };
        *c.service_mut(Tier::PersHdd) = StorageService {
            tier: Tier::PersHdd,
            scaling: ScalingModel::Linear {
                bw_per_gb: 0.12,
                iops_per_gb: 0.5,
                bw_cap: Bandwidth::from_mbps(90.0),
                iops_cap: 500.0,
            },
            price_per_gb_month: Money::from_dollars(0.05),
            request_overhead: Duration::ZERO,
            max_volume: Some(DataSize::from_gb(1_024.0)),
            max_volumes_per_vm: Some(8),
            redundancy: RedundancyScheme::NONE,
        };
        *c.service_mut(Tier::ObjStore) = StorageService {
            tier: Tier::ObjStore,
            scaling: ScalingModel::FlatStream {
                stream_bw: Bandwidth::from_mbps(220.0),
                iops: 300.0,
            },
            price_per_gb_month: Money::from_dollars(0.03),
            request_overhead: Duration::from_secs(0.6),
            max_volume: None,
            max_volumes_per_vm: None,
            redundancy: RedundancyScheme::NONE,
        };
        c
    }

    /// The durability-aware catalog: Table 1 with persistent HDD recast
    /// as an erasure-coded cold tier (4+2 Reed–Solomon, 50 % raw-capacity
    /// overhead, tolerates two simultaneous shard losses) and persistent
    /// SSD kept at provider-internal durability. This is the deployment
    /// shape of the `durability_sweep` experiment; swap
    /// [`RedundancyScheme::TRIPLE`] onto the cold tier to price the 3×
    /// replication alternative at equal fault tolerance.
    pub fn with_ec_cold_tier() -> Catalog {
        let mut c = Catalog::google_cloud();
        c.service_mut(Tier::PersHdd).redundancy = RedundancyScheme::RS_4_2;
        c
    }

    /// Look up one service.
    #[inline]
    pub fn service(&self, tier: Tier) -> &StorageService {
        self.services.get(tier)
    }

    /// Mutable access for ablations and what-if analysis.
    #[inline]
    pub fn service_mut(&mut self, tier: Tier) -> &mut StorageService {
        self.services.get_mut(tier)
    }

    /// Iterate services in Table 1 order.
    pub fn services(&self) -> impl Iterator<Item = &StorageService> {
        Tier::ALL.iter().map(move |&t| self.service(t))
    }

    /// The tier data is staged through when a job runs on non-persistent
    /// storage (Fig. 1 accounts input download and output upload against
    /// `objStore`).
    pub fn backing_store(&self) -> Tier {
        Tier::ObjStore
    }

    /// Render Table 1 as aligned text rows (used by the `table1` bench
    /// binary and doc examples).
    pub fn table1(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Storage    Capacity       Throughput  IOPS      Cost\n\
             type       (GB/volume)    (MB/sec)    (4KB)     ($/month)\n",
        );
        for (sample_gb, svc) in [
            (375.0, self.service(Tier::EphSsd)),
            (500.0, self.service(Tier::PersSsd)),
            (500.0, self.service(Tier::PersHdd)),
            (f64::NAN, self.service(Tier::ObjStore)),
        ] {
            let cap = DataSize::from_gb(if sample_gb.is_nan() { 1.0 } else { sample_gb });
            let cap_str = if sample_gb.is_nan() {
                "N/A".to_string()
            } else {
                format!("{sample_gb:.0}")
            };
            out.push_str(&format!(
                "{:<10} {:<14} {:<11.0} {:<9.0} {:.3}/GB\n",
                svc.tier.name(),
                cap_str,
                svc.throughput(cap).mb_per_sec(),
                svc.iops(cap),
                svc.price_per_gb_month.dollars(),
            ));
        }
        out
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::google_cloud()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_throughput_points() {
        let c = Catalog::google_cloud();
        let cases = [
            (Tier::EphSsd, 375.0, 733.0, 0.0),
            (Tier::PersSsd, 100.0, 48.0, 0.03),
            (Tier::PersSsd, 250.0, 118.0, 0.03),
            (Tier::PersSsd, 500.0, 234.0, 0.01),
            (Tier::PersHdd, 100.0, 20.0, 0.03),
            (Tier::PersHdd, 250.0, 45.0, 0.08),
            (Tier::PersHdd, 500.0, 97.0, 0.01),
            (Tier::ObjStore, 500.0, 265.0, 0.0),
        ];
        for (tier, gb, want, tol) in cases {
            let got = c
                .service(tier)
                .throughput(DataSize::from_gb(gb))
                .mb_per_sec();
            let err = (got - want).abs() / want;
            assert!(
                err <= tol + 1e-9,
                "{tier} @ {gb} GB: got {got:.1} MB/s, want {want} (tol {tol})"
            );
        }
    }

    #[test]
    fn table1_iops_points_are_exact() {
        let c = Catalog::google_cloud();
        let cases = [
            (Tier::EphSsd, 375.0, 100_000.0),
            (Tier::PersSsd, 100.0, 3_000.0),
            (Tier::PersSsd, 250.0, 7_500.0),
            (Tier::PersSsd, 500.0, 15_000.0),
            (Tier::PersHdd, 100.0, 150.0),
            (Tier::PersHdd, 250.0, 375.0),
            (Tier::PersHdd, 500.0, 750.0),
            (Tier::ObjStore, 500.0, 550.0),
        ];
        for (tier, gb, want) in cases {
            let got = c.service(tier).iops(DataSize::from_gb(gb));
            assert!((got - want).abs() < 1e-6, "{tier} @ {gb} GB IOPS");
        }
    }

    #[test]
    fn table1_prices() {
        let c = Catalog::google_cloud();
        let prices = [
            (Tier::EphSsd, 0.218),
            (Tier::PersSsd, 0.17),
            (Tier::PersHdd, 0.04),
            (Tier::ObjStore, 0.026),
        ];
        for (tier, want) in prices {
            assert!((c.service(tier).price_per_gb_month.dollars() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn price_ordering_matches_paper_narrative() {
        // ephSSD is the most expensive, objStore the cheapest.
        let c = Catalog::google_cloud();
        let p = |t: Tier| c.service(t).price_per_gb_month.dollars();
        assert!(p(Tier::EphSsd) > p(Tier::PersSsd));
        assert!(p(Tier::PersSsd) > p(Tier::PersHdd));
        assert!(p(Tier::PersHdd) > p(Tier::ObjStore));
    }

    #[test]
    fn only_objstore_has_request_overhead() {
        let c = Catalog::google_cloud();
        for t in Tier::ALL {
            let has = !c.service(t).request_overhead.is_zero();
            assert_eq!(has, t == Tier::ObjStore, "{t}");
        }
    }

    #[test]
    fn table1_render_contains_all_tiers() {
        let s = Catalog::google_cloud().table1();
        for t in Tier::ALL {
            assert!(s.contains(t.name()), "missing {t} in:\n{s}");
        }
    }

    #[test]
    fn backing_store_is_objstore() {
        assert_eq!(Catalog::google_cloud().backing_store(), Tier::ObjStore);
    }

    #[test]
    fn aws_like_catalog_has_same_structure_different_surface() {
        let aws = Catalog::aws_like();
        let gcp = Catalog::google_cloud();
        // Same tier menu, different performance/price points.
        for t in Tier::ALL {
            assert_eq!(aws.service(t).tier, t);
        }
        assert_ne!(
            aws.service(Tier::PersSsd).price_per_gb_month,
            gcp.service(Tier::PersSsd).price_per_gb_month
        );
        // Instance store comes bundled with the instance on AWS.
        assert_eq!(aws.service(Tier::EphSsd).price_per_gb_month.dollars(), 0.0);
        // gp2's burstable streaming beats pd-ssd per GB but caps lower.
        let cap = DataSize::from_gb(100.0);
        assert!(
            aws.service(Tier::PersSsd).throughput(cap).mb_per_sec()
                > gcp.service(Tier::PersSsd).throughput(cap).mb_per_sec()
        );
        assert!(
            aws.service(Tier::PersSsd)
                .throughput(DataSize::from_gb(2000.0))
                .mb_per_sec()
                < gcp
                    .service(Tier::PersSsd)
                    .throughput(DataSize::from_gb(2000.0))
                    .mb_per_sec()
        );
    }

    #[test]
    fn catalogs_serde_roundtrip() {
        for catalog in [Catalog::google_cloud(), Catalog::aws_like()] {
            let json = serde_json::to_string(&catalog).unwrap();
            let back: Catalog = serde_json::from_str(&json).unwrap();
            assert_eq!(back, catalog);
        }
    }
}
