//! Price sheet utilities.
//!
//! Thin helpers over [`Catalog`] that answer the
//! pricing questions the solver asks: the `price_vm` and `price_store`
//! terms of Table 3.

use serde::{Deserialize, Serialize};

use crate::catalog::Catalog;
use crate::error::CloudError;
use crate::tier::{PerTier, Tier};
use crate::units::{DataSize, Money};
use crate::vm::VmType;

/// Snapshot of the prices the optimizer needs, decoupled from the richer
/// catalog so solver code stays allocation-free in its inner loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceSheet {
    /// $/GB/hour per tier (monthly list price over a 730-hour month).
    pub storage_per_gb_hour: PerTier<Money>,
    /// Raw bytes billed per logical byte on each tier — the tier's
    /// [`crate::redundancy::RedundancyScheme::storage_factor`] (1.0 for
    /// provider-internal durability, 3.0 for 3× replication, 1.5 for
    /// 4+2 erasure coding).
    pub redundancy_factor: PerTier<f64>,
    /// $/minute for one worker VM.
    pub worker_vm_per_minute: Money,
    /// $/minute for the master VM.
    pub master_vm_per_minute: Money,
}

impl PriceSheet {
    /// Extract the price sheet from a catalog.
    pub fn from_catalog(catalog: &Catalog) -> PriceSheet {
        PriceSheet {
            storage_per_gb_hour: PerTier::from_fn(|t| {
                catalog.service(t).price_per_hour(DataSize::from_gb(1.0))
            }),
            redundancy_factor: PerTier::from_fn(|t| catalog.service(t).redundancy.storage_factor()),
            worker_vm_per_minute: catalog.worker_vm.price_per_minute(),
            master_vm_per_minute: catalog.master_vm.price_per_minute(),
        }
    }

    /// Hourly storage price for a *logical* `capacity` on `tier`: the
    /// bill covers the raw bytes the tier's redundancy scheme actually
    /// stores (`capacity × redundancy_factor`).
    #[inline]
    pub fn storage_hourly(&self, tier: Tier, capacity: DataSize) -> Money {
        *self.storage_per_gb_hour.get(tier) * (capacity.gb() * self.redundancy_factor.get(tier))
    }

    /// Look up a VM type by name among the known shapes.
    pub fn lookup_vm(name: &str) -> Result<VmType, CloudError> {
        match name {
            "n1-standard-16" => Ok(VmType::n1_standard_16()),
            "n1-standard-4" => Ok(VmType::n1_standard_4()),
            other => Err(CloudError::UnknownVmType(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheet_matches_catalog() {
        let c = Catalog::google_cloud();
        let p = PriceSheet::from_catalog(&c);
        // persHDD: $0.04/GB-month / 730 h.
        let want = 0.04 / 730.0;
        assert!((p.storage_per_gb_hour.get(Tier::PersHdd).dollars() - want).abs() < 1e-15);
        assert!((p.worker_vm_per_minute.dollars() - 0.80 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn storage_hourly_scales_with_capacity() {
        let p = PriceSheet::from_catalog(&Catalog::google_cloud());
        let one = p.storage_hourly(Tier::ObjStore, DataSize::from_gb(100.0));
        let two = p.storage_hourly(Tier::ObjStore, DataSize::from_gb(200.0));
        assert!((two.dollars() - 2.0 * one.dollars()).abs() < 1e-15);
    }

    #[test]
    fn default_redundancy_factor_is_identity() {
        let p = PriceSheet::from_catalog(&Catalog::google_cloud());
        for t in Tier::ALL {
            assert!((p.redundancy_factor.get(t) - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn ec_cold_tier_bills_raw_capacity() {
        let base = PriceSheet::from_catalog(&Catalog::google_cloud());
        let ec = PriceSheet::from_catalog(&Catalog::with_ec_cold_tier());
        let cap = DataSize::from_gb(1000.0);
        let plain = base.storage_hourly(Tier::PersHdd, cap).dollars();
        let coded = ec.storage_hourly(Tier::PersHdd, cap).dollars();
        // rs(4+2) stores 1.5 raw bytes per logical byte.
        assert!((coded - 1.5 * plain).abs() < 1e-12);
        // Other tiers are untouched by the preset.
        let a = base.storage_hourly(Tier::ObjStore, cap).dollars();
        let b = ec.storage_hourly(Tier::ObjStore, cap).dollars();
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn replication_vs_erasure_cost_gap() {
        use crate::redundancy::RedundancyScheme;
        let mut rep3 = Catalog::google_cloud();
        rep3.service_mut(Tier::PersHdd).redundancy = RedundancyScheme::TRIPLE;
        let rep3 = PriceSheet::from_catalog(&rep3);
        let ec = PriceSheet::from_catalog(&Catalog::with_ec_cold_tier());
        let cap = DataSize::from_gb(1000.0);
        let rep_cost = rep3.storage_hourly(Tier::PersHdd, cap).dollars();
        let ec_cost = ec.storage_hourly(Tier::PersHdd, cap).dollars();
        // Same fault tolerance (2 losses), but ec pays 1.5/3.0 = 50% of the
        // replicated bill — comfortably past the 40% reduction target.
        let reduction = 1.0 - ec_cost / rep_cost;
        assert!(reduction >= 0.40, "reduction {reduction}");
    }

    #[test]
    fn vm_lookup() {
        assert!(PriceSheet::lookup_vm("n1-standard-16").is_ok());
        assert!(PriceSheet::lookup_vm("m5.24xlarge").is_err());
    }
}
