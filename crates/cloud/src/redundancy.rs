//! Redundancy schemes: how a storage tier keeps data alive.
//!
//! CAST's original model treats durability as the provider's problem —
//! every tier is a black box that never loses bytes. The durability
//! extension makes the scheme explicit so the simulator can kill shards
//! and the cost model can charge for the raw capacity a scheme actually
//! consumes:
//!
//! * [`RedundancyScheme::Replicated`] — `copies` full replicas. Storage
//!   overhead `(copies − 1) × 100 %` (3× replication = 200 %), tolerates
//!   `copies − 1` simultaneous shard losses, and any single live replica
//!   serves reads at full speed.
//! * [`RedundancyScheme::ErasureCoded`] — Reed–Solomon `data + parity`
//!   striping. Overhead `parity / data × 100 %` (4+2 = 50 %), tolerates
//!   `parity` losses, but a degraded stripe must fetch `data` surviving
//!   fragments to reconstruct each missing one — degraded reads pay a
//!   bandwidth penalty that replication does not.
//!
//! The default scheme everywhere is `Replicated { copies: 1 }`: the
//! provider-internal durability already folded into Table 1's prices.
//! Under it every cost and simulation result is bit-identical to the
//! pre-durability model.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::CloudError;

/// How a tier lays out one dataset's bytes across failure domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RedundancyScheme {
    /// `copies` full replicas of every byte.
    Replicated {
        /// Number of replicas (1 = provider-internal durability only).
        copies: u32,
    },
    /// Reed–Solomon erasure coding: `data` data shards plus `parity`
    /// parity shards per stripe.
    ErasureCoded {
        /// Data shards per stripe.
        data: u32,
        /// Parity shards per stripe.
        parity: u32,
    },
}

impl RedundancyScheme {
    /// The default scheme: one provider-managed copy, no modeled overhead.
    pub const NONE: RedundancyScheme = RedundancyScheme::Replicated { copies: 1 };

    /// Plain three-way replication (the classic hot/warm default).
    pub const TRIPLE: RedundancyScheme = RedundancyScheme::Replicated { copies: 3 };

    /// The 4+2 Reed–Solomon cold-tier configuration: 50 % overhead,
    /// tolerates two simultaneous shard failures — the same tolerance as
    /// [`RedundancyScheme::TRIPLE`] at half the raw capacity.
    pub const RS_4_2: RedundancyScheme = RedundancyScheme::ErasureCoded { data: 4, parity: 2 };

    /// Raw bytes stored per logical byte (`3.0` for 3× replication,
    /// `1.5` for 4+2 erasure coding).
    pub fn storage_factor(self) -> f64 {
        match self {
            RedundancyScheme::Replicated { copies } => copies.max(1) as f64,
            RedundancyScheme::ErasureCoded { data, parity } => {
                let d = data.max(1) as f64;
                (d + parity as f64) / d
            }
        }
    }

    /// Storage overhead beyond the logical bytes, as a percentage
    /// (3× replication → 200, 4+2 → 50).
    pub fn overhead_pct(self) -> f64 {
        (self.storage_factor() - 1.0) * 100.0
    }

    /// Total shards (replicas or stripe fragments) holding one dataset.
    pub fn shard_count(self) -> u32 {
        match self {
            RedundancyScheme::Replicated { copies } => copies.max(1),
            RedundancyScheme::ErasureCoded { data, parity } => data.max(1) + parity,
        }
    }

    /// Minimum live shards required to serve a read: one replica, or the
    /// stripe's `data` fragments.
    pub fn read_threshold(self) -> u32 {
        match self {
            RedundancyScheme::Replicated { .. } => 1,
            RedundancyScheme::ErasureCoded { data, .. } => data.max(1),
        }
    }

    /// Simultaneous shard losses survivable without losing data.
    pub fn fault_tolerance(self) -> u32 {
        self.shard_count() - self.read_threshold()
    }

    /// Extra read bytes per logical byte when `lost` shards are missing:
    /// an erasure-coded stripe must fetch `data` surviving fragments to
    /// rebuild each missing one (`lost / data` extra), while replication
    /// reads an intact surviving copy for free. `lost` is clamped to the
    /// scheme's tolerance — beyond it the data is gone, not degraded.
    pub fn degraded_read_amplification(self, lost: u32) -> f64 {
        let lost = lost.min(self.fault_tolerance());
        match self {
            RedundancyScheme::Replicated { .. } => 0.0,
            RedundancyScheme::ErasureCoded { data, .. } => f64::from(lost) / data.max(1) as f64,
        }
    }

    /// Whether the scheme is erasure-coded (degraded reads cost extra).
    pub fn is_erasure_coded(self) -> bool {
        matches!(self, RedundancyScheme::ErasureCoded { .. })
    }

    /// Reject degenerate configurations (zero copies, zero data shards).
    pub fn validate(self) -> Result<(), CloudError> {
        match self {
            RedundancyScheme::Replicated { copies: 0 } => Err(CloudError::InvalidRedundancy(
                "replication needs at least one copy".to_string(),
            )),
            RedundancyScheme::ErasureCoded { data: 0, .. } => Err(CloudError::InvalidRedundancy(
                "erasure coding needs at least one data shard".to_string(),
            )),
            _ => Ok(()),
        }
    }
}

impl Default for RedundancyScheme {
    fn default() -> Self {
        RedundancyScheme::NONE
    }
}

impl fmt::Display for RedundancyScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RedundancyScheme::Replicated { copies } => write!(f, "rep({copies})"),
            RedundancyScheme::ErasureCoded { data, parity } => write!(f, "rs({data}+{parity})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_reference_numbers() {
        // 3× replication: 200 % overhead; RS 4+2: 50 %.
        assert_eq!(RedundancyScheme::TRIPLE.overhead_pct(), 200.0);
        assert_eq!(RedundancyScheme::RS_4_2.overhead_pct(), 50.0);
        assert_eq!(RedundancyScheme::NONE.overhead_pct(), 0.0);
    }

    #[test]
    fn equal_tolerance_at_half_the_raw_bytes() {
        let rep3 = RedundancyScheme::TRIPLE;
        let ec = RedundancyScheme::RS_4_2;
        assert_eq!(rep3.fault_tolerance(), 2);
        assert_eq!(ec.fault_tolerance(), 2);
        assert!(ec.storage_factor() <= rep3.storage_factor() / 2.0);
    }

    #[test]
    fn shard_and_threshold_accounting() {
        assert_eq!(RedundancyScheme::RS_4_2.shard_count(), 6);
        assert_eq!(RedundancyScheme::RS_4_2.read_threshold(), 4);
        assert_eq!(RedundancyScheme::TRIPLE.shard_count(), 3);
        assert_eq!(RedundancyScheme::TRIPLE.read_threshold(), 1);
    }

    #[test]
    fn degraded_reads_cost_only_under_erasure_coding() {
        let ec = RedundancyScheme::RS_4_2;
        assert_eq!(ec.degraded_read_amplification(0), 0.0);
        assert_eq!(ec.degraded_read_amplification(1), 0.25);
        assert_eq!(ec.degraded_read_amplification(2), 0.5);
        // Clamped at tolerance: 3 lost shards is data loss, not a read.
        assert_eq!(ec.degraded_read_amplification(3), 0.5);
        assert_eq!(RedundancyScheme::TRIPLE.degraded_read_amplification(2), 0.0);
    }

    #[test]
    fn validation_rejects_degenerate_schemes() {
        assert!(RedundancyScheme::Replicated { copies: 0 }
            .validate()
            .is_err());
        assert!(RedundancyScheme::ErasureCoded { data: 0, parity: 2 }
            .validate()
            .is_err());
        assert!(RedundancyScheme::RS_4_2.validate().is_ok());
    }

    #[test]
    fn scheme_roundtrips_through_json() {
        for s in [
            RedundancyScheme::NONE,
            RedundancyScheme::TRIPLE,
            RedundancyScheme::RS_4_2,
        ] {
            let json = serde_json::to_string(&s).unwrap();
            let back: RedundancyScheme = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(RedundancyScheme::TRIPLE.to_string(), "rep(3)");
        assert_eq!(RedundancyScheme::RS_4_2.to_string(), "rs(4+2)");
    }
}
