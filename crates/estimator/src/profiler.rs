//! Offline application profiling (§4.1).
//!
//! CAST runs each application on each storage service at several volume
//! capacities and records effective per-task phase bandwidths. The paper
//! does this on the real cluster; we do it on the [`cast_sim`] cluster —
//! the calibration jobs exercise exactly the machinery later used for
//! "observed" numbers, mirroring the paper's setup where the estimator is
//! fit to measurements of the system it predicts.

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::DataSize;
use cast_cloud::Catalog;
use cast_sim::config::SimConfig;
use cast_sim::placement::PlacementMap;
use cast_sim::Sim;
use cast_workload::apps::AppKind;
use cast_workload::job::JobId;
use cast_workload::profile::ProfileSet;
use cast_workload::synth;

use crate::error::EstimatorError;
use crate::model::{CapacityCurve, ModelMatrix, PhaseBw};
use crate::mrcute::ClusterSpec;

/// Profiling campaign configuration.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Size of the profiling cluster (the target cluster by default —
    /// cluster-wide effects such as the object-store bucket ceiling do not
    /// transfer across sizes).
    pub nvm: usize,
    /// Input size of each calibration job.
    pub reference_input: DataSize,
    /// Per-VM capacity grid for capacity-scaled tiers (GB).
    pub block_grid: Vec<f64>,
    /// Per-VM capacity grid for ephemeral SSD (whole 375 GB volumes).
    pub eph_grid: Vec<f64>,
    /// Scratch persSSD capacity per VM backing objStore placements (GB).
    pub objstore_scratch_gb: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            // Profile on the target cluster scale, as the paper does: the
            // cluster-wide object-store ceiling only shows at full width.
            nvm: 25,
            reference_input: DataSize::from_gb(500.0),
            block_grid: vec![10.0, 20.0, 50.0, 100.0, 200.0, 400.0, 600.0, 1000.0],
            eph_grid: vec![375.0, 750.0, 1500.0],
            objstore_scratch_gb: 100.0,
        }
    }
}

impl ProfilerConfig {
    /// Capacity grid for `tier`.
    fn grid(&self, tier: Tier) -> Vec<f64> {
        match tier {
            Tier::EphSsd => self.eph_grid.clone(),
            Tier::PersSsd | Tier::PersHdd => self.block_grid.clone(),
            // objStore performance is capacity-independent: single point.
            Tier::ObjStore => vec![1.0],
        }
    }
}

/// Run the full profiling campaign: every application on every tier across
/// the capacity grid.
pub fn profile_all(
    catalog: &Catalog,
    profiles: &ProfileSet,
    cfg: &ProfilerConfig,
) -> Result<ModelMatrix, EstimatorError> {
    let mut matrix = ModelMatrix::new();
    for app in AppKind::ALL {
        for tier in Tier::ALL {
            let mut samples: Vec<(f64, PhaseBw)> = Vec::new();
            for cap in cfg.grid(tier) {
                // Knots live at the capacity that is actually provisioned
                // (volume granularity rounds requests up); otherwise a
                // later lookup at a provisioned size would interpolate
                // between mislabelled measurements.
                let knot = if tier.is_block() {
                    catalog
                        .service(tier)
                        .provisionable(DataSize::from_gb(cap))
                        .gb()
                } else {
                    cap
                };
                if samples.iter().any(|&(x, _)| (x - knot).abs() < 1e-9) {
                    continue;
                }
                let bw = profile_point(catalog, profiles, cfg, app, tier, knot)?;
                samples.push((knot, bw));
            }
            matrix.insert(app, tier, CapacityCurve::fit(&samples)?);
        }
    }
    Ok(matrix)
}

/// Profile one (application, tier, per-VM capacity) point.
pub fn profile_point(
    catalog: &Catalog,
    profiles: &ProfileSet,
    cfg: &ProfilerConfig,
    app: AppKind,
    tier: Tier,
    per_vm_capacity_gb: f64,
) -> Result<PhaseBw, EstimatorError> {
    let spec = synth::single_job(app, cfg.reference_input);
    let job = spec.jobs[0];
    let profile = profiles.get(app);

    // Provision the tier under test, plus the support tiers its placement
    // convention needs (objStore scratch, ephemeral backing store).
    let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
    *agg.get_mut(tier) = DataSize::from_gb(per_vm_capacity_gb) * cfg.nvm as f64;
    if tier == Tier::ObjStore {
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(cfg.objstore_scratch_gb) * cfg.nvm as f64;
    }
    let sim_cfg = SimConfig::with_aggregate_capacity(catalog.clone(), cfg.nvm, &agg)
        .map_err(|e| EstimatorError::Profiling(e.to_string()))?;
    // Profiling runs keep the cluster's natural task-time skew: measured
    // wave times then include straggler effects, exactly as when CAST
    // profiles a real cluster.

    let mut spec = spec;
    spec.profiles = profiles.clone();
    let placements = PlacementMap::uniform([JobId(0)], tier);
    let report = Sim::builder(&sim_cfg)
        .jobs(&spec, &placements)
        .build()
        .and_then(|s| s.run())
        .map_err(|e| EstimatorError::Profiling(e.to_string()))?;
    let metrics = report.jobs[0];

    let cluster = ClusterSpec {
        nvm: cfg.nvm,
        map_slots: sim_cfg.vm.map_slots,
        reduce_slots: sim_cfg.vm.reduce_slots,
        task_startup_secs: sim_cfg.task_startup_secs,
    };
    let m = job.maps.max(1);
    let r = job.reduces.max(1);
    let map_waves = cluster.map_waves_frac(m);
    let red_waves = cluster.reduce_waves_frac(r);

    // Subtract the analytic request-overhead component so it is not
    // double-counted when Eq. 1 adds it back.
    let map_fixed = sim_cfg.task_startup_secs
        + profile.input_files_per_map as f64 * catalog.service(tier).request_overhead.secs();
    let red_fixed = sim_cfg.task_startup_secs
        + profile.output_files_per_reduce as f64 * catalog.service(tier).request_overhead.secs();

    let map_split_mb = job.input.mb() / m as f64;
    let map_wave = (metrics.map.secs() / map_waves - map_fixed).max(1e-6);
    let map_bw = map_split_mb / map_wave;

    let inter = job.inter(profile);
    let output = job.output(profile);
    let red_mb = (inter.mb() + output.mb()) / r as f64;
    let sr_bw = if red_mb > 1e-9 && metrics.reduce.secs() > 1e-9 {
        let red_wave = (metrics.reduce.secs() / red_waves - red_fixed).max(1e-6);
        red_mb / red_wave
    } else {
        f64::INFINITY
    };

    Ok(PhaseBw {
        map: map_bw,
        shuffle_reduce: if sr_bw.is_finite() { sr_bw } else { 1e12 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ProfilerConfig {
        ProfilerConfig {
            nvm: 2,
            reference_input: DataSize::from_gb(20.0),
            block_grid: vec![100.0, 400.0],
            eph_grid: vec![375.0],
            objstore_scratch_gb: 100.0,
        }
    }

    #[test]
    fn profile_point_extracts_sane_grep_bandwidth() {
        let catalog = Catalog::google_cloud();
        let profiles = ProfileSet::defaults();
        let cfg = quick_cfg();
        // Grep on 400 GB/VM persSSD (187 MB/s per VM, 16 tasks): per-task
        // share ≈ 11.7 MB/s.
        let bw = profile_point(
            &catalog,
            &profiles,
            &cfg,
            AppKind::Grep,
            Tier::PersSsd,
            400.0,
        )
        .unwrap();
        assert!(
            bw.map > 5.0 && bw.map < 30.0,
            "per-task map bandwidth out of range: {}",
            bw.map
        );
    }

    #[test]
    fn bandwidth_grows_with_capacity() {
        let catalog = Catalog::google_cloud();
        let profiles = ProfileSet::defaults();
        let cfg = quick_cfg();
        let small = profile_point(
            &catalog,
            &profiles,
            &cfg,
            AppKind::Grep,
            Tier::PersSsd,
            100.0,
        )
        .unwrap();
        let large = profile_point(
            &catalog,
            &profiles,
            &cfg,
            AppKind::Grep,
            Tier::PersSsd,
            400.0,
        )
        .unwrap();
        assert!(
            large.map > 2.0 * small.map,
            "{} vs {}",
            small.map,
            large.map
        );
    }

    #[test]
    fn cpu_bound_app_insensitive_to_capacity() {
        let catalog = Catalog::google_cloud();
        let profiles = ProfileSet::defaults();
        let cfg = quick_cfg();
        // 16 KMeans tasks demand only ~80 MB/s per VM; any capacity beyond
        // ~200 GB of persSSD saturates the CPU side (Fig. 1d's regime).
        let small = profile_point(
            &catalog,
            &profiles,
            &cfg,
            AppKind::KMeans,
            Tier::PersSsd,
            500.0,
        )
        .unwrap();
        let large = profile_point(
            &catalog,
            &profiles,
            &cfg,
            AppKind::KMeans,
            Tier::PersSsd,
            1600.0,
        )
        .unwrap();
        let ratio = large.map / small.map;
        assert!(
            (0.8..1.4).contains(&ratio),
            "KMeans should be CPU-bound: {} vs {}",
            small.map,
            large.map
        );
    }

    #[test]
    fn full_profile_covers_all_pairs() {
        let catalog = Catalog::google_cloud();
        let profiles = ProfileSet::defaults();
        let mut cfg = quick_cfg();
        cfg.block_grid = vec![200.0];
        let matrix = profile_all(&catalog, &profiles, &cfg).unwrap();
        assert_eq!(matrix.len(), AppKind::ALL.len() * Tier::ALL.len());
        for app in AppKind::ALL {
            for tier in Tier::ALL {
                assert!(matrix.contains(app, tier), "{app}/{tier}");
            }
        }
    }
}
