//! The Eq. 1 performance model.
//!
//! `EST(R̂, M̂(sᵢ, L̂ᵢ))` predicts one job's runtime from the cluster shape
//! (`R̂`: VM count and slots), the job layout (`L̂ᵢ`: sizes and task
//! counts) and profiled per-task bandwidths (`M̂`). Each phase costs
//! `#waves × runtime-per-wave`.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;
use cast_cloud::units::{Bandwidth, DataSize, Duration};
use cast_cloud::Catalog;
use cast_workload::job::Job;
use cast_workload::profile::AppProfile;

use crate::model::PhaseBw;

/// `R̂`: the compute-side cluster description of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of worker VMs (`nvm`).
    pub nvm: usize,
    /// Map slots per VM (`mc`).
    pub map_slots: usize,
    /// Reduce slots per VM (`rc`).
    pub reduce_slots: usize,
    /// Per-task framework startup overhead, seconds (JVM launch +
    /// scheduling). Mirrors the simulator's `task_startup_secs`.
    pub task_startup_secs: f64,
}

impl ClusterSpec {
    /// The paper's 400-core evaluation cluster (25 × 16 slots).
    pub fn paper() -> ClusterSpec {
        ClusterSpec {
            nvm: 25,
            map_slots: 16,
            reduce_slots: 8,
            task_startup_secs: 1.5,
        }
    }

    /// Number of map waves for `m` map tasks: `⌈m / (nvm·mc)⌉`.
    pub fn map_waves(&self, m: usize) -> usize {
        m.div_ceil(self.nvm * self.map_slots)
    }

    /// Number of reduce waves for `r` reduce tasks: `⌈r / (nvm·rc)⌉`.
    pub fn reduce_waves(&self, r: usize) -> usize {
        r.div_ceil(self.nvm * self.reduce_slots)
    }

    /// Continuous relaxation of the map wave count, floored at one wave.
    ///
    /// Eq. 1 uses `⌈·⌉`; a partially-filled trailing wave both finishes
    /// early and runs its tasks under lighter contention, so the ceiling
    /// over-predicts by up to a full wave. The fractional count removes
    /// that bias (with the ceiling our Fig. 8 error grows from ~7% to
    /// ~14%, concentrated at small capacities).
    pub fn map_waves_frac(&self, m: usize) -> f64 {
        (m as f64 / (self.nvm * self.map_slots) as f64).max(1.0)
    }

    /// Continuous relaxation of the reduce wave count (see
    /// [`ClusterSpec::map_waves_frac`]).
    pub fn reduce_waves_frac(&self, r: usize) -> f64 {
        (r as f64 / (self.nvm * self.reduce_slots) as f64).max(1.0)
    }
}

/// Phase-by-phase estimate for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseEstimate {
    /// Input download / cross-tier transfer before the job.
    pub stage_in: Duration,
    /// Map phase.
    pub map: Duration,
    /// Shuffle + reduce phase.
    pub shuffle_reduce: Duration,
    /// Output upload after the job.
    pub stage_out: Duration,
}

impl PhaseEstimate {
    /// Total predicted runtime.
    pub fn total(&self) -> Duration {
        self.stage_in + self.map + self.shuffle_reduce + self.stage_out
    }
}

/// Eq. 1 with the shuffle and reduce terms folded (see crate docs): the
/// map phase moves `inputᵢ/m` per task at `bw.map`; the reduce phase moves
/// `(interᵢ+outputᵢ)/r` per task at `bw.shuffle_reduce`. Request overheads
/// for object-store files are added as fixed per-task latency.
pub fn estimate_phases(
    job: &Job,
    profile: &AppProfile,
    bw: PhaseBw,
    cluster: &ClusterSpec,
    catalog: &Catalog,
    input_tier: Tier,
    output_tier: Tier,
) -> PhaseEstimate {
    let m = job.maps.max(1);
    let r = job.reduces.max(1);

    // Wave decomposition: `full` completely-filled waves run at the
    // profiled (contended) bandwidth; a trailing partial wave runs under
    // lighter contention, bounded below by the task's own uncontended
    // processing time. Eq. 1's plain ⌈·⌉ over-charges I/O-bound partial
    // waves; a bare fractional count under-charges CPU-bound ones.
    let map_slots = cluster.nvm * cluster.map_slots;
    let red_slots = cluster.nvm * cluster.reduce_slots;

    let map_split = DataSize::from_bytes(job.input.bytes() / m as f64);
    let map_fixed = cluster.task_startup_secs
        + profile.input_files_per_map as f64 * catalog.service(input_tier).request_overhead.secs();
    let map_wave_time = if bw.map > 0.0 {
        map_split.mb() / bw.map + map_fixed
    } else {
        map_fixed
    };
    let map_solo =
        map_split.mb() / profile.map_rate.min(profile.per_task_io_cap).mb_per_sec() + map_fixed;
    let map_secs = partial_wave_time(m, map_slots, map_wave_time, map_solo);

    let inter = job.inter(profile);
    let output = job.output(profile);
    let red_bytes = DataSize::from_bytes((inter.bytes() + output.bytes()) / r as f64);
    let red_fixed = cluster.task_startup_secs
        + profile.output_files_per_reduce as f64
            * catalog.service(output_tier).request_overhead.secs();
    let red_secs = if red_bytes.mb() > 0.0 {
        let red_wave_time = if bw.shuffle_reduce > 0.0 {
            red_bytes.mb() / bw.shuffle_reduce + red_fixed
        } else {
            red_fixed
        };
        // Uncontended reduce task: fetch its partition at the client cap,
        // then stream it through the reduce function.
        let inter_per_r = job.inter(profile).mb() / r as f64;
        let red_solo = inter_per_r / profile.per_task_io_cap.mb_per_sec()
            + inter_per_r
                / profile
                    .reduce_rate
                    .min(profile.per_task_io_cap)
                    .mb_per_sec()
            + red_fixed;
        partial_wave_time(r, red_slots, red_wave_time, red_solo)
    } else {
        0.0
    };

    PhaseEstimate {
        stage_in: Duration::ZERO,
        map: Duration::from_secs(map_secs),
        shuffle_reduce: Duration::from_secs(red_secs),
        stage_out: Duration::ZERO,
    }
}

/// Phase time for `tasks` tasks over `slots` slots: full waves at the
/// contended per-wave time, plus a trailing partial wave that runs under
/// lighter contention but can never beat the task's uncontended time.
fn partial_wave_time(tasks: usize, slots: usize, wave_time: f64, solo_time: f64) -> f64 {
    let full = tasks / slots;
    let rest = tasks % slots;
    let mut t = full as f64 * wave_time;
    if rest > 0 {
        let frac = rest as f64 / slots as f64;
        t += (frac * wave_time).max(solo_time.min(wave_time));
    }
    t
}

/// Analytic transfer-time estimate for staging `bytes` from `src` to `dst`
/// with one parallel stream per VM: bounded by the slower endpoint's per-VM
/// bandwidth and the NIC, plus per-object request setup.
#[allow(clippy::too_many_arguments)]
pub fn estimate_transfer(
    bytes: DataSize,
    src: Tier,
    dst: Tier,
    src_bw: Bandwidth,
    dst_bw: Bandwidth,
    nic: Bandwidth,
    cluster: &ClusterSpec,
    catalog: &Catalog,
) -> Duration {
    if bytes.mb() <= 0.0 {
        return Duration::ZERO;
    }
    let per_vm = bytes.mb() / cluster.nvm as f64;
    let mut bw = src_bw.min(dst_bw);
    if src != Tier::EphSsd || dst != Tier::EphSsd {
        bw = bw.min(nic);
    }
    if bw.mb_per_sec() <= 0.0 {
        return Duration::INFINITY;
    }
    // Staging runs a distcp-style parallel copy: per-object request
    // overheads amortise across the copy streams of each VM.
    const TRANSFER_STREAMS_PER_VM: f64 = 4.0;
    let files = (per_vm / 256.0).ceil().max(1.0);
    let fixed = files / TRANSFER_STREAMS_PER_VM
        * (catalog.service(src).request_overhead.secs()
            + catalog.service(dst).request_overhead.secs());
    Duration::from_secs(per_vm / bw.mb_per_sec() + fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::JobId;
    use cast_workload::profile::ProfileSet;

    fn sort_job(gb: f64) -> Job {
        Job::with_default_layout(JobId(0), AppKind::Sort, DatasetId(0), DataSize::from_gb(gb))
    }

    #[test]
    fn wave_math_matches_eq1() {
        let c = ClusterSpec::paper();
        assert_eq!(c.map_waves(400), 1);
        assert_eq!(c.map_waves(401), 2);
        assert_eq!(c.map_waves(1), 1);
        assert_eq!(c.reduce_waves(200), 1);
        assert_eq!(c.reduce_waves(201), 2);
    }

    #[test]
    fn estimate_scales_with_waves() {
        let profiles = ProfileSet::defaults();
        let p = profiles.get(AppKind::Sort);
        let catalog = Catalog::google_cloud();
        let cluster = ClusterSpec::paper();
        let bw = PhaseBw {
            map: 50.0,
            shuffle_reduce: 40.0,
        };
        // 102.4 GB = 400 maps = exactly one wave on the paper cluster.
        let one_wave = sort_job(102.4);
        // 204.8 GB = 800 maps = two waves of the same per-task size.
        let two_waves = sort_job(204.8);
        let e1 = estimate_phases(
            &one_wave,
            p,
            bw,
            &cluster,
            &catalog,
            Tier::PersSsd,
            Tier::PersSsd,
        );
        let e2 = estimate_phases(
            &two_waves,
            p,
            bw,
            &cluster,
            &catalog,
            Tier::PersSsd,
            Tier::PersSsd,
        );
        assert!(
            (e2.map.secs() / e1.map.secs() - 2.0).abs() < 1e-9,
            "two waves = 2x map time"
        );
    }

    #[test]
    fn higher_bandwidth_means_faster() {
        let profiles = ProfileSet::defaults();
        let p = profiles.get(AppKind::Sort);
        let catalog = Catalog::google_cloud();
        let cluster = ClusterSpec::paper();
        // Large enough for several full waves, so the contended bandwidth
        // dominates and the uncontended-task floor does not mask the gap.
        let job = sort_job(500.0);
        let slow = estimate_phases(
            &job,
            p,
            PhaseBw {
                map: 10.0,
                shuffle_reduce: 10.0,
            },
            &cluster,
            &catalog,
            Tier::PersHdd,
            Tier::PersHdd,
        );
        let fast = estimate_phases(
            &job,
            p,
            PhaseBw {
                map: 100.0,
                shuffle_reduce: 100.0,
            },
            &cluster,
            &catalog,
            Tier::EphSsd,
            Tier::EphSsd,
        );
        assert!(slow.total().secs() > 5.0 * fast.total().secs());
    }

    #[test]
    fn objstore_output_pays_request_overheads() {
        let profiles = ProfileSet::defaults();
        let p = profiles.get(AppKind::Join);
        let catalog = Catalog::google_cloud();
        let cluster = ClusterSpec::paper();
        let job = Job::with_default_layout(
            JobId(0),
            AppKind::Join,
            DatasetId(0),
            DataSize::from_gb(100.0),
        );
        let bw = PhaseBw {
            map: 50.0,
            shuffle_reduce: 20.0,
        };
        let on_ssd = estimate_phases(
            &job,
            p,
            bw,
            &cluster,
            &catalog,
            Tier::PersSsd,
            Tier::PersSsd,
        );
        let on_obj = estimate_phases(
            &job,
            p,
            bw,
            &cluster,
            &catalog,
            Tier::ObjStore,
            Tier::ObjStore,
        );
        assert!(
            on_obj.shuffle_reduce.secs() > on_ssd.shuffle_reduce.secs() + 1.0,
            "many small files on objStore must cost setup time"
        );
    }

    #[test]
    fn transfer_estimate_bounded_by_slowest_link() {
        let catalog = Catalog::google_cloud();
        let cluster = ClusterSpec {
            nvm: 10,
            map_slots: 16,
            reduce_slots: 8,
            task_startup_secs: 1.5,
        };
        let t = estimate_transfer(
            DataSize::from_gb(100.0),
            Tier::ObjStore,
            Tier::EphSsd,
            Bandwidth::from_mbps(265.0),
            Bandwidth::from_mbps(733.0),
            Bandwidth::from_gbps(2.0),
            &cluster,
            &catalog,
        );
        // 10 GB per VM at 265 MB/s ≈ 37.7 s + request setup.
        assert!(t.secs() > 37.0 && t.secs() < 60.0, "got {t}");
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let catalog = Catalog::google_cloud();
        let cluster = ClusterSpec::paper();
        let t = estimate_transfer(
            DataSize::ZERO,
            Tier::ObjStore,
            Tier::EphSsd,
            Bandwidth::from_mbps(265.0),
            Bandwidth::from_mbps(733.0),
            Bandwidth::from_gbps(2.0),
            &cluster,
            &catalog,
        );
        assert_eq!(t, Duration::ZERO);
    }
}
