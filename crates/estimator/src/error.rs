//! Estimator error type.

use std::fmt;

/// Errors raised while fitting models or answering estimates.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorError {
    /// Spline fit with no points.
    EmptyFit,
    /// Two knots share an x-coordinate.
    DuplicateKnot(f64),
    /// No profile exists for the requested (application, tier).
    NotProfiled {
        /// Application name.
        app: String,
        /// Tier name.
        tier: String,
    },
    /// Profiling simulation failed.
    Profiling(String),
}

impl fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimatorError::EmptyFit => write!(f, "cannot fit a spline through zero points"),
            EstimatorError::DuplicateKnot(x) => {
                write!(f, "duplicate spline knot at x={x}")
            }
            EstimatorError::NotProfiled { app, tier } => {
                write!(f, "no profile for {app} on {tier}; run the profiler first")
            }
            EstimatorError::Profiling(msg) => write!(f, "profiling run failed: {msg}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = EstimatorError::NotProfiled {
            app: "Sort".into(),
            tier: "persHDD".into(),
        };
        let s = e.to_string();
        assert!(s.contains("Sort") && s.contains("persHDD"));
    }
}
