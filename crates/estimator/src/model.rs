//! The model matrix `M̂`: profiled per-task phase bandwidths.
//!
//! For each (application, tier) pair the profiler records effective
//! per-task bandwidths at several per-VM capacities; a
//! [`MonotoneSpline`] interpolates between them. This is the quantitative
//! heart of CAST: every solver decision reduces to lookups in this matrix.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use cast_cloud::tier::Tier;
use cast_workload::apps::AppKind;

use crate::error::EstimatorError;
use crate::spline::MonotoneSpline;

/// Effective per-task bandwidths for one (app, tier, capacity) point,
/// in MB/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBw {
    /// Map-phase bandwidth over `inputᵢ/m` bytes per task.
    pub map: f64,
    /// Joint shuffle+reduce bandwidth over `(interᵢ+outputᵢ)/r` bytes per
    /// task (the folded Eq. 1 form; see crate docs).
    pub shuffle_reduce: f64,
}

/// Capacity-parameterised bandwidths for one (app, tier).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityCurve {
    map: MonotoneSpline,
    shuffle_reduce: MonotoneSpline,
}

impl CapacityCurve {
    /// Build from profiled `(per-VM capacity GB, PhaseBw)` samples.
    pub fn fit(samples: &[(f64, PhaseBw)]) -> Result<CapacityCurve, EstimatorError> {
        let map_pts: Vec<(f64, f64)> = samples.iter().map(|&(c, b)| (c, b.map)).collect();
        let sr_pts: Vec<(f64, f64)> = samples
            .iter()
            .map(|&(c, b)| (c, b.shuffle_reduce))
            .collect();
        Ok(CapacityCurve {
            map: MonotoneSpline::fit(&map_pts)?,
            shuffle_reduce: MonotoneSpline::fit(&sr_pts)?,
        })
    }

    /// Bandwidths at `per_vm_capacity_gb`.
    pub fn at(&self, per_vm_capacity_gb: f64) -> PhaseBw {
        PhaseBw {
            map: self.map.eval(per_vm_capacity_gb),
            shuffle_reduce: self.shuffle_reduce.eval(per_vm_capacity_gb),
        }
    }

    /// Profiled capacity grid (map-phase knots).
    pub fn capacities(&self) -> &[f64] {
        self.map.knots()
    }
}

/// `M̂`: the full profiled model.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ModelMatrix {
    // Maps serialise as `[key, value]` entry lists (JSON map keys must be
    // strings), so tuple keys persist to the profiling cache unchanged.
    curves: BTreeMap<(AppKind, Tier), CapacityCurve>,
}

impl ModelMatrix {
    /// Empty matrix.
    pub fn new() -> ModelMatrix {
        ModelMatrix::default()
    }

    /// Insert/replace the curve for (app, tier).
    pub fn insert(&mut self, app: AppKind, tier: Tier, curve: CapacityCurve) {
        self.curves.insert((app, tier), curve);
    }

    /// Bandwidths for (app, tier) at a per-VM capacity.
    pub fn bandwidths(
        &self,
        app: AppKind,
        tier: Tier,
        per_vm_capacity_gb: f64,
    ) -> Result<PhaseBw, EstimatorError> {
        self.curves
            .get(&(app, tier))
            .map(|c| c.at(per_vm_capacity_gb))
            .ok_or_else(|| EstimatorError::NotProfiled {
                app: app.name().to_string(),
                tier: tier.name().to_string(),
            })
    }

    /// The profiled curve for (app, tier), if any.
    pub fn curve(&self, app: AppKind, tier: Tier) -> Option<&CapacityCurve> {
        self.curves.get(&(app, tier))
    }

    /// Whether (app, tier) has been profiled.
    pub fn contains(&self, app: AppKind, tier: Tier) -> bool {
        self.curves.contains_key(&(app, tier))
    }

    /// Number of profiled (app, tier) pairs.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> CapacityCurve {
        CapacityCurve::fit(&[
            (
                100.0,
                PhaseBw {
                    map: 10.0,
                    shuffle_reduce: 5.0,
                },
            ),
            (
                500.0,
                PhaseBw {
                    map: 40.0,
                    shuffle_reduce: 20.0,
                },
            ),
        ])
        .unwrap()
    }

    #[test]
    fn curve_interpolates_and_clamps() {
        let c = curve();
        let mid = c.at(300.0);
        assert!(mid.map > 10.0 && mid.map < 40.0);
        assert_eq!(c.at(1000.0).map, 40.0);
        assert_eq!(c.at(10.0).shuffle_reduce, 5.0);
    }

    #[test]
    fn matrix_lookup() {
        let mut m = ModelMatrix::new();
        assert!(m.is_empty());
        m.insert(AppKind::Sort, Tier::PersSsd, curve());
        assert!(m.contains(AppKind::Sort, Tier::PersSsd));
        assert_eq!(m.len(), 1);
        let bw = m.bandwidths(AppKind::Sort, Tier::PersSsd, 100.0).unwrap();
        assert_eq!(bw.map, 10.0);
        let err = m
            .bandwidths(AppKind::Grep, Tier::PersSsd, 100.0)
            .unwrap_err();
        assert!(matches!(err, EstimatorError::NotProfiled { .. }));
    }
}
