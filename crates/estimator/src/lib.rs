//! # cast-estimator
//!
//! Analytics job performance prediction for CAST (§4.1–4.2.1 of the paper).
//!
//! CAST profiles applications offline on each storage service and predicts
//! job runtimes with an adapted MRCute model (Eq. 1):
//!
//! ```text
//! EST = ⌈m / (nvm·mc)⌉ · (inputᵢ/m) / bw_map
//!     + ⌈r / (nvm·rc)⌉ · (interᵢ/r) / bw_shuffle
//!     + ⌈r / (nvm·rc)⌉ · (outputᵢ/r) / bw_reduce
//! ```
//!
//! each phase being `#waves × runtime-per-wave`. Because volume bandwidth
//! scales with provisioned capacity, the per-task bandwidths are functions
//! of capacity; CAST fits a *cubic Hermite spline* through profiled points
//! (the REG(·) of Eq. 4, validated in Fig. 2 and Fig. 8).
//!
//! This crate implements:
//!
//! * [`spline`] — a monotone cubic Hermite spline (Fritsch–Carlson
//!   tangents), the paper's "third degree polynomial-based cubic Hermite
//!   spline";
//! * [`model`] — the model matrix `M̂`: per-(application, tier) phase
//!   bandwidths as spline functions of per-VM capacity;
//! * [`profiler`] — offline profiling: runs calibration jobs on the
//!   [`cast_sim`] cluster (as CAST runs them on the real cluster) and
//!   extracts per-task phase bandwidths;
//! * [`mrcute`] — Eq. 1 itself, plus staging-transfer estimates;
//! * [`regression`] — the [`regression::Estimator`] façade: job + tier +
//!   capacity → predicted runtime;
//! * [`calibration`] — prediction-error statistics (the Fig. 8 methodology).
//!
//! The shuffle and reduce terms of Eq. 1 share the same wave count, so the
//! profiler calibrates them jointly as one shuffle+reduce bandwidth over
//! `(interᵢ+outputᵢ)/r` bytes; the folded form is algebraically identical
//! for prediction while being identifiable from phase-level measurements.

pub mod calibration;
pub mod error;
pub mod model;
pub mod mrcute;
pub mod profiler;
pub mod regression;
pub mod spline;

pub use calibration::PredictionError;
pub use error::EstimatorError;
pub use model::{ModelMatrix, PhaseBw};
pub use mrcute::ClusterSpec;
pub use regression::Estimator;
pub use spline::MonotoneSpline;
