//! Prediction-error statistics — the Fig. 8 methodology.
//!
//! The paper validates its regression by predicting a 16-job workload's
//! runtime across a persSSD capacity sweep and reports an average error of
//! 7.9 %. [`PredictionError`] accumulates (predicted, observed) pairs and
//! reports the same statistics.

use serde::{Deserialize, Serialize};

/// Accumulated prediction/observation pairs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PredictionError {
    points: Vec<(f64, f64)>,
}

impl PredictionError {
    /// Empty accumulator.
    pub fn new() -> PredictionError {
        PredictionError::default()
    }

    /// Record one (predicted, observed) pair. Units are the caller's but
    /// must be consistent.
    pub fn record(&mut self, predicted: f64, observed: f64) {
        assert!(
            predicted.is_finite() && observed.is_finite() && observed > 0.0,
            "degenerate prediction pair ({predicted}, {observed})"
        );
        self.points.push((predicted, observed));
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no pairs are recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean absolute percentage error, in percent (the paper's "average
    /// prediction error of 7.9%").
    pub fn mape(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.points.iter().map(|&(p, o)| ((p - o) / o).abs()).sum();
        100.0 * sum / self.points.len() as f64
    }

    /// Largest absolute percentage error, in percent.
    pub fn max_pct(&self) -> f64 {
        self.points
            .iter()
            .map(|&(p, o)| 100.0 * ((p - o) / o).abs())
            .fold(0.0, f64::max)
    }

    /// Mean signed percentage error (bias), in percent. Positive =
    /// over-prediction.
    pub fn bias_pct(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.points.iter().map(|&(p, o)| (p - o) / o).sum();
        100.0 * sum / self.points.len() as f64
    }

    /// The recorded pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let mut e = PredictionError::new();
        e.record(10.0, 10.0);
        e.record(50.0, 50.0);
        assert_eq!(e.mape(), 0.0);
        assert_eq!(e.max_pct(), 0.0);
        assert_eq!(e.bias_pct(), 0.0);
    }

    #[test]
    fn mape_hand_calc() {
        let mut e = PredictionError::new();
        e.record(110.0, 100.0); // +10 %
        e.record(80.0, 100.0); // -20 %
        assert!((e.mape() - 15.0).abs() < 1e-9);
        assert!((e.max_pct() - 20.0).abs() < 1e-9);
        assert!((e.bias_pct() - (-5.0)).abs() < 1e-9);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty_is_zero() {
        let e = PredictionError::new();
        assert!(e.is_empty());
        assert_eq!(e.mape(), 0.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_observation_panics() {
        let mut e = PredictionError::new();
        e.record(1.0, 0.0);
    }
}
