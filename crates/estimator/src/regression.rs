//! The `REG(·)` façade: job + tier + provisioned capacity → runtime.
//!
//! This is the function the tiering solver evaluates in its inner loop
//! (Eq. 4): given a job's assigned storage service and the *total* capacity
//! provisioned on that service for the workload, predict the job's
//! completion time on the cluster, including staging transfers for
//! non-persistent placements.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;
use cast_cloud::units::{DataSize, Duration};
use cast_cloud::Catalog;
use cast_workload::job::Job;
use cast_workload::profile::{AppProfile, ProfileSet};

use crate::error::EstimatorError;
use crate::model::ModelMatrix;
use crate::mrcute::{estimate_phases, estimate_transfer, ClusterSpec, PhaseEstimate};

/// A profiled, cluster-bound performance estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Estimator {
    /// Profiled model matrix `M̂`.
    pub matrix: ModelMatrix,
    /// Provider catalog (prices, request overheads, scaling).
    pub catalog: Catalog,
    /// Target cluster `R̂`.
    pub cluster: ClusterSpec,
    /// Application profiles (selectivities, file counts).
    pub profiles: ProfileSet,
}

impl Estimator {
    /// Predict the phase breakdown of `job` on `tier`, with `tier_total`
    /// provisioned across the cluster for that tier.
    pub fn phases(
        &self,
        job: &Job,
        tier: Tier,
        tier_total: DataSize,
    ) -> Result<PhaseEstimate, EstimatorError> {
        let per_vm_gb = per_vm_capacity(&self.catalog, tier, tier_total, self.cluster.nvm);
        let bw = self.matrix.bandwidths(job.app, tier, per_vm_gb)?;
        Ok(self.phases_with_bw(job, tier, tier_total, bw))
    }

    /// [`Self::phases`] with the model-matrix bandwidth lookup hoisted
    /// out. The solver's incremental scorer memoises `bw` per
    /// `(app, tier, capacity)` — far fewer points than `(job, tier,
    /// capacity)` — and feeds it back through here; the arithmetic is the
    /// same, so results stay bit-identical to [`Self::phases`].
    pub fn phases_with_bw(
        &self,
        job: &Job,
        tier: Tier,
        tier_total: DataSize,
        bw: crate::model::PhaseBw,
    ) -> PhaseEstimate {
        let profile = self.profiles.get(job.app);
        let mut est = estimate_phases(job, profile, bw, &self.cluster, &self.catalog, tier, tier);
        if tier == Tier::EphSsd {
            // Non-persistent placement: input comes down from, and output
            // returns to, the backing object store (Fig. 1 accounting).
            let backing = self.catalog.backing_store();
            est.stage_in = self.transfer(job.input, backing, tier, tier_total);
            est.stage_out = self.transfer(job.output(profile), tier, backing, tier_total);
        }
        est
    }

    /// `REG(sᵢ, capacity[sᵢ], R̂, L̂ᵢ)`: total predicted runtime.
    pub fn reg(
        &self,
        job: &Job,
        tier: Tier,
        tier_total: DataSize,
    ) -> Result<Duration, EstimatorError> {
        Ok(self.phases(job, tier, tier_total)?.total())
    }

    /// [`Self::reg`] with a precomputed bandwidth (see
    /// [`Self::phases_with_bw`]).
    pub fn reg_with_bw(
        &self,
        job: &Job,
        tier: Tier,
        tier_total: DataSize,
        bw: crate::model::PhaseBw,
    ) -> Duration {
        self.phases_with_bw(job, tier, tier_total, bw).total()
    }

    /// Predicted time to move `bytes` between tiers with one stream per VM
    /// (workflow cross-tier hand-off; ephemeral staging).
    ///
    /// `scaled_total` is the provisioned capacity of whichever endpoint is
    /// capacity-scaled (used for its bandwidth lookup); object storage is
    /// capacity-independent.
    pub fn transfer(
        &self,
        bytes: DataSize,
        src: Tier,
        dst: Tier,
        scaled_total: DataSize,
    ) -> Duration {
        let bw_of = |tier: Tier| {
            let per_vm = per_vm_capacity(&self.catalog, tier, scaled_total, self.cluster.nvm);
            let raw = self
                .catalog
                .service(tier)
                .throughput(DataSize::from_gb(per_vm));
            if tier == Tier::ObjStore {
                // Per-VM share of the cluster-wide bucket ceiling.
                raw.min(cast_cloud::units::Bandwidth::from_mbps(
                    cast_cloud::catalog::OBJSTORE_CLUSTER_MBPS / self.cluster.nvm as f64,
                ))
            } else {
                raw
            }
        };
        estimate_transfer(
            bytes,
            src,
            dst,
            bw_of(src),
            bw_of(dst),
            cast_cloud::VmType::n1_standard_16().nic,
            &self.cluster,
            &self.catalog,
        )
    }

    /// Profile of `app` used by this estimator.
    pub fn profile(&self, app: cast_workload::AppKind) -> &AppProfile {
        self.profiles.get(app)
    }
}

/// Per-VM capacity (GB) for a tier given the workload's total provisioned
/// bytes on it, respecting volume granularity (ephemeral volumes round up;
/// a block tier always has at least a minimum useful volume once used).
pub fn per_vm_capacity(catalog: &Catalog, tier: Tier, total: DataSize, nvm: usize) -> f64 {
    match tier {
        Tier::ObjStore => total.gb().max(1.0) / nvm as f64,
        _ => {
            let per_vm = total / nvm as f64;
            catalog.service(tier).provisionable(per_vm).gb()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{CapacityCurve, PhaseBw};
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::JobId;

    fn toy_estimator() -> Estimator {
        let mut matrix = ModelMatrix::new();
        for app in AppKind::ALL {
            for tier in Tier::ALL {
                // Bandwidth grows with capacity on block tiers.
                let samples = match tier {
                    Tier::PersSsd | Tier::PersHdd => vec![
                        (
                            100.0,
                            PhaseBw {
                                map: 3.0,
                                shuffle_reduce: 3.0,
                            },
                        ),
                        (
                            500.0,
                            PhaseBw {
                                map: 15.0,
                                shuffle_reduce: 15.0,
                            },
                        ),
                    ],
                    _ => vec![(
                        375.0,
                        PhaseBw {
                            map: 40.0,
                            shuffle_reduce: 40.0,
                        },
                    )],
                };
                matrix.insert(app, tier, CapacityCurve::fit(&samples).unwrap());
            }
        }
        Estimator {
            matrix,
            catalog: Catalog::google_cloud(),
            cluster: ClusterSpec {
                nvm: 5,
                map_slots: 16,
                reduce_slots: 8,
                task_startup_secs: 1.5,
            },
            profiles: ProfileSet::defaults(),
        }
    }

    fn job(app: AppKind, gb: f64) -> Job {
        Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb))
    }

    #[test]
    fn reg_decreases_with_capacity_on_scaled_tiers() {
        let e = toy_estimator();
        let j = job(AppKind::Sort, 50.0);
        let small = e.reg(&j, Tier::PersSsd, DataSize::from_gb(500.0)).unwrap();
        let large = e.reg(&j, Tier::PersSsd, DataSize::from_gb(2500.0)).unwrap();
        assert!(
            large.secs() < small.secs() / 2.0,
            "5x capacity should speed Sort well over 2x: {small} vs {large}"
        );
    }

    #[test]
    fn ephemeral_includes_staging() {
        let e = toy_estimator();
        let j = job(AppKind::Sort, 50.0);
        let phases = e
            .phases(&j, Tier::EphSsd, DataSize::from_gb(375.0 * 5.0))
            .unwrap();
        assert!(phases.stage_in.secs() > 0.0);
        assert!(phases.stage_out.secs() > 0.0);
        let persistent = e
            .phases(&j, Tier::PersSsd, DataSize::from_gb(500.0))
            .unwrap();
        assert_eq!(persistent.stage_in, Duration::ZERO);
    }

    #[test]
    fn transfer_uses_endpoint_bandwidths() {
        let e = toy_estimator();
        let fast = e.transfer(
            DataSize::from_gb(10.0),
            Tier::ObjStore,
            Tier::EphSsd,
            DataSize::from_gb(375.0 * 5.0),
        );
        let slow = e.transfer(
            DataSize::from_gb(10.0),
            Tier::ObjStore,
            Tier::PersHdd,
            DataSize::from_gb(100.0 * 5.0),
        );
        // HDD endpoint at 100 GB/VM (~19 MB/s) is far slower than eph.
        assert!(slow.secs() > 5.0 * fast.secs(), "{fast} vs {slow}");
    }

    #[test]
    fn per_vm_capacity_rounds_ephemeral_volumes() {
        let catalog = Catalog::google_cloud();
        let c = per_vm_capacity(&catalog, Tier::EphSsd, DataSize::from_gb(100.0), 5);
        assert!((c - 375.0).abs() < 1e-9, "got {c}");
        let s = per_vm_capacity(&catalog, Tier::PersSsd, DataSize::from_gb(1000.0), 5);
        assert!((s - 200.0).abs() < 1e-9);
    }

    /// The solver's incremental scorer keys its memo on the per-VM
    /// capacity clamped into the curve's knot domain (widened to the
    /// volume-count cap on volume-granular tiers), relying on `REG`
    /// being bit-for-bit constant across that saturated plateau. Pin the
    /// invariant: every channel from the tier total into `REG` — the
    /// spline (flat extrapolation), volume rounding, and staging
    /// throughput (`max_volumes` cap) — has saturated there.
    #[test]
    fn reg_is_bitwise_constant_beyond_saturation() {
        let e = toy_estimator();
        let j = job(AppKind::Sort, 50.0);
        // persSSD knots end at 500 GB/VM; nvm = 5.
        let a = e
            .reg(&j, Tier::PersSsd, DataSize::from_gb(500.0 * 5.0))
            .unwrap();
        let b = e
            .reg(&j, Tier::PersSsd, DataSize::from_gb(977.3 * 5.0))
            .unwrap();
        assert_eq!(a.secs().to_bits(), b.secs().to_bits());
        // ephSSD: single-knot curve and 4×375 GB volume cap per VM.
        let a = e
            .reg(&j, Tier::EphSsd, DataSize::from_gb(4.0 * 375.0 * 5.0))
            .unwrap();
        let b = e
            .reg(&j, Tier::EphSsd, DataSize::from_gb(9.0 * 375.0 * 5.0))
            .unwrap();
        assert_eq!(a.secs().to_bits(), b.secs().to_bits());
        // Same volume count (rounding up) ⇒ same runtime, below the cap.
        let a = e
            .reg(&j, Tier::EphSsd, DataSize::from_gb(2.1 * 375.0 * 5.0))
            .unwrap();
        let b = e
            .reg(&j, Tier::EphSsd, DataSize::from_gb(2.9 * 375.0 * 5.0))
            .unwrap();
        assert_eq!(a.secs().to_bits(), b.secs().to_bits());
    }

    #[test]
    fn phases_with_bw_matches_phases() {
        let e = toy_estimator();
        let j = job(AppKind::Join, 80.0);
        for tier in Tier::ALL {
            let total = DataSize::from_gb(700.0);
            let per_vm = per_vm_capacity(&e.catalog, tier, total, e.cluster.nvm);
            let bw = e.matrix.bandwidths(j.app, tier, per_vm).unwrap();
            assert_eq!(
                e.phases_with_bw(&j, tier, total, bw),
                e.phases(&j, tier, total).unwrap()
            );
        }
    }

    #[test]
    fn unprofiled_pair_errors() {
        let mut e = toy_estimator();
        e.matrix = ModelMatrix::new();
        let j = job(AppKind::Sort, 10.0);
        assert!(e.reg(&j, Tier::PersSsd, DataSize::from_gb(500.0)).is_err());
    }
}
