//! Monotone cubic Hermite spline interpolation.
//!
//! The paper fits capacity→runtime curves with a "third degree
//! polynomial-based cubic Hermite spline" (§4.2.1). We use Fritsch–Carlson
//! tangent limiting, which preserves the monotonicity of the data — an
//! essential property here: provisioned capacity never *hurts* bandwidth,
//! so an interpolant that overshoots would let the solver hallucinate
//! performance cliffs that do not exist.

use serde::{Deserialize, Serialize};

use crate::error::EstimatorError;

/// A monotonicity-preserving piecewise-cubic interpolant.
///
/// ```
/// use cast_estimator::MonotoneSpline;
///
/// // Table 1's persSSD throughput points.
/// let reg = MonotoneSpline::fit(&[(100.0, 48.0), (250.0, 118.0), (500.0, 234.0)]).unwrap();
/// let mid = reg.eval(300.0);
/// assert!(mid > 118.0 && mid < 234.0);
/// // Clamped extrapolation: capacity beyond the profiled range saturates.
/// assert_eq!(reg.eval(10_000.0), 234.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotoneSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Tangent (dy/dx) at each knot.
    ms: Vec<f64>,
}

impl MonotoneSpline {
    /// Fit a spline through `(x, y)` points. Points are sorted by `x`;
    /// at least one point is required and `x` values must be distinct.
    pub fn fit(points: &[(f64, f64)]) -> Result<MonotoneSpline, EstimatorError> {
        if points.is_empty() {
            return Err(EstimatorError::EmptyFit);
        }
        let mut pts: Vec<(f64, f64)> = points.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("spline knots must not be NaN"));
        for w in pts.windows(2) {
            if (w[1].0 - w[0].0).abs() < 1e-12 {
                return Err(EstimatorError::DuplicateKnot(w[0].0));
            }
        }
        let n = pts.len();
        let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
        if n == 1 {
            return Ok(MonotoneSpline {
                xs,
                ys,
                ms: vec![0.0],
            });
        }
        // Secant slopes.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();
        // Initial tangents: one-sided at the ends, averaged inside.
        let mut ms = vec![0.0; n];
        ms[0] = d[0];
        ms[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            ms[i] = if d[i - 1] * d[i] <= 0.0 {
                0.0
            } else {
                0.5 * (d[i - 1] + d[i])
            };
        }
        // Fritsch–Carlson limiting.
        for i in 0..n - 1 {
            if d[i] == 0.0 {
                ms[i] = 0.0;
                ms[i + 1] = 0.0;
                continue;
            }
            let a = ms[i] / d[i];
            let b = ms[i + 1] / d[i];
            let s = a * a + b * b;
            if s > 9.0 {
                let t = 3.0 / s.sqrt();
                ms[i] = t * a * d[i];
                ms[i + 1] = t * b * d[i];
            }
        }
        Ok(MonotoneSpline { xs, ys, ms })
    }

    /// Evaluate at `x`. Outside the knot range the spline extrapolates
    /// flat (clamped to the boundary value): capacity beyond the profiled
    /// range is assumed to have saturated.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if n == 1 || x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        // Binary search for the containing interval.
        let mut lo = 0;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.xs[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let (t2, t3) = (t * t, t * t * t);
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[lo] + h10 * h * self.ms[lo] + h01 * self.ys[hi] + h11 * h * self.ms[hi]
    }

    /// The knot x-coordinates.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// The knot y-values.
    pub fn values(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interpolates_knots_exactly() {
        let pts = [
            (100.0, 48.0),
            (250.0, 118.0),
            (500.0, 234.0),
            (1000.0, 400.0),
        ];
        let s = MonotoneSpline::fit(&pts).unwrap();
        for (x, y) in pts {
            assert!((s.eval(x) - y).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn clamps_outside_range() {
        let s = MonotoneSpline::fit(&[(1.0, 10.0), (2.0, 20.0)]).unwrap();
        assert_eq!(s.eval(0.0), 10.0);
        assert_eq!(s.eval(5.0), 20.0);
    }

    #[test]
    fn single_point_is_constant() {
        let s = MonotoneSpline::fit(&[(3.0, 7.0)]).unwrap();
        assert_eq!(s.eval(-10.0), 7.0);
        assert_eq!(s.eval(3.0), 7.0);
        assert_eq!(s.eval(99.0), 7.0);
    }

    #[test]
    fn unsorted_input_accepted() {
        let s = MonotoneSpline::fit(&[(2.0, 20.0), (1.0, 10.0)]).unwrap();
        assert!((s.eval(1.5) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_knot_rejected() {
        assert!(matches!(
            MonotoneSpline::fit(&[(1.0, 1.0), (1.0, 2.0)]),
            Err(EstimatorError::DuplicateKnot(_))
        ));
        assert!(matches!(
            MonotoneSpline::fit(&[]),
            Err(EstimatorError::EmptyFit)
        ));
    }

    #[test]
    fn flat_data_stays_flat() {
        let s = MonotoneSpline::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        for i in 0..=20 {
            let x = i as f64 * 0.1;
            assert!((s.eval(x) - 5.0).abs() < 1e-12);
        }
    }

    proptest! {
        /// Monotone data must produce a monotone interpolant (the whole
        /// point of Fritsch–Carlson).
        #[test]
        fn preserves_monotonicity(mut ys in proptest::collection::vec(0.0f64..1000.0, 3..10)) {
            ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let pts: Vec<(f64, f64)> = ys.iter().enumerate()
                .map(|(i, &y)| (i as f64 * 10.0, y))
                .collect();
            let s = MonotoneSpline::fit(&pts).unwrap();
            let mut prev = s.eval(-1.0);
            for i in 0..=((pts.len()-1) * 100) {
                let x = i as f64 * 0.1;
                let y = s.eval(x);
                prop_assert!(y >= prev - 1e-9, "non-monotone at x={x}: {y} < {prev}");
                prev = y;
            }
        }

        /// Values never overshoot the data range.
        #[test]
        fn bounded_by_data(ys in proptest::collection::vec(0.0f64..100.0, 2..8)) {
            let pts: Vec<(f64, f64)> = ys.iter().enumerate()
                .map(|(i, &y)| (i as f64, y))
                .collect();
            let s = MonotoneSpline::fit(&pts).unwrap();
            let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for i in 0..=((pts.len()-1) * 50) {
                let x = i as f64 / 50.0 * (pts.len()-1) as f64 / (pts.len()-1) as f64 * (pts.len()-1) as f64;
                let y = s.eval(x);
                prop_assert!(y >= lo - 1e-6 && y <= hi + 1e-6, "overshoot at {x}: {y} not in [{lo},{hi}]");
            }
        }

        /// Knot interpolation holds for arbitrary monotone-x data.
        #[test]
        fn hits_knots(pairs in proptest::collection::vec((0u32..1000, -100.0f64..100.0), 1..8)) {
            let mut pts: Vec<(f64, f64)> = pairs.iter()
                .map(|&(x, y)| (x as f64, y))
                .collect();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
            let s = MonotoneSpline::fit(&pts).unwrap();
            for &(x, y) in &pts {
                prop_assert!((s.eval(x) - y).abs() < 1e-9);
            }
        }
    }
}
