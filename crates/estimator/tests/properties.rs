//! Property-based tests for the estimator: REG monotonicity, sanity of the
//! Eq. 1 structure, and profiler↔predictor consistency.

use proptest::prelude::*;

use cast_cloud::tier::Tier;
use cast_cloud::units::DataSize;
use cast_cloud::Catalog;
use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
use cast_estimator::mrcute::ClusterSpec;
use cast_estimator::profiler::{profile_all, ProfilerConfig};
use cast_estimator::Estimator;
use cast_workload::apps::AppKind;
use cast_workload::dataset::DatasetId;
use cast_workload::job::{Job, JobId};
use cast_workload::profile::ProfileSet;

fn arb_app() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn toy_estimator(nvm: usize) -> Estimator {
    let mut matrix = ModelMatrix::new();
    for app in AppKind::ALL {
        for tier in Tier::ALL {
            let samples: Vec<(f64, PhaseBw)> = (1..=5)
                .map(|i| {
                    let cap = 100.0 * i as f64;
                    (
                        cap,
                        PhaseBw {
                            map: cap / 30.0,
                            shuffle_reduce: cap / 40.0,
                        },
                    )
                })
                .collect();
            matrix.insert(app, tier, CapacityCurve::fit(&samples).expect("fit"));
        }
    }
    Estimator {
        matrix,
        catalog: Catalog::google_cloud(),
        cluster: ClusterSpec {
            nvm,
            map_slots: 16,
            reduce_slots: 8,
            task_startup_secs: 1.5,
        },
        profiles: ProfileSet::defaults(),
    }
}

proptest! {
    /// REG never increases with provisioned capacity.
    #[test]
    fn reg_is_monotone_in_capacity(
        app in arb_app(),
        gb in 1.0f64..500.0,
        lo in 100.0f64..2_000.0,
        extra in 1.0f64..8_000.0,
    ) {
        let est = toy_estimator(4);
        let job = Job::with_default_layout(
            JobId(0),
            app,
            DatasetId(0),
            DataSize::from_gb(gb),
        );
        let t_lo = est
            .reg(&job, Tier::PersSsd, DataSize::from_gb(lo))
            .expect("profiled");
        let t_hi = est
            .reg(&job, Tier::PersSsd, DataSize::from_gb(lo + extra))
            .expect("profiled");
        prop_assert!(t_hi.secs() <= t_lo.secs() + 1e-9);
    }

    /// More input bytes never predict faster on the same tier/capacity
    /// (up to the ±5 % wobble that block-size rounding introduces in
    /// per-task split sizes).
    #[test]
    fn reg_is_monotone_in_input(
        app in arb_app(),
        gb in 1.0f64..300.0,
        extra in 1.0f64..300.0,
    ) {
        let est = toy_estimator(4);
        let small = Job::with_default_layout(
            JobId(0),
            app,
            DatasetId(0),
            DataSize::from_gb(gb),
        );
        let big = Job::with_default_layout(
            JobId(1),
            app,
            DatasetId(0),
            DataSize::from_gb(gb + extra),
        );
        let cap = DataSize::from_gb(2_000.0);
        let t_small = est.reg(&small, Tier::PersSsd, cap).expect("profiled");
        let t_big = est.reg(&big, Tier::PersSsd, cap).expect("profiled");
        prop_assert!(
            t_big.secs() + 1e-9 >= 0.95 * t_small.secs(),
            "{} GB: {}s vs {} GB: {}s",
            gb, t_small.secs(), gb + extra, t_big.secs()
        );
    }

    /// Transfer estimates scale linearly-or-worse with bytes.
    #[test]
    fn transfer_superadditive(bytes in 1.0f64..500.0) {
        let est = toy_estimator(4);
        let cap = DataSize::from_gb(1_500.0);
        let one = est.transfer(DataSize::from_gb(bytes), Tier::ObjStore, Tier::EphSsd, cap);
        let two = est.transfer(DataSize::from_gb(2.0 * bytes), Tier::ObjStore, Tier::EphSsd, cap);
        prop_assert!(two.secs() + 1e-9 >= 2.0 * one.secs() - 1.0,
            "doubling bytes should ~double time: {} vs {}", one, two);
    }
}

#[test]
fn profiled_matrix_orders_tiers_correctly() {
    // An honest profiling campaign must find ephSSD faster than persHDD
    // for the I/O-bound application at matched capacities.
    let cfg = ProfilerConfig {
        nvm: 2,
        reference_input: DataSize::from_gb(20.0),
        block_grid: vec![375.0],
        eph_grid: vec![375.0],
        objstore_scratch_gb: 100.0,
    };
    let matrix =
        profile_all(&Catalog::google_cloud(), &ProfileSet::defaults(), &cfg).expect("profiling");
    let eph = matrix
        .bandwidths(AppKind::Grep, Tier::EphSsd, 375.0)
        .expect("profiled");
    let hdd = matrix
        .bandwidths(AppKind::Grep, Tier::PersHdd, 375.0)
        .expect("profiled");
    assert!(
        eph.map > 3.0 * hdd.map,
        "ephSSD {} vs persHDD {} per-task map bandwidth",
        eph.map,
        hdd.map
    );
}

#[test]
fn matrix_serde_roundtrip() {
    let mut matrix = ModelMatrix::new();
    matrix.insert(
        AppKind::Sort,
        Tier::PersSsd,
        CapacityCurve::fit(&[
            (
                100.0,
                PhaseBw {
                    map: 5.0,
                    shuffle_reduce: 4.0,
                },
            ),
            (
                500.0,
                PhaseBw {
                    map: 20.0,
                    shuffle_reduce: 16.0,
                },
            ),
        ])
        .expect("fit"),
    );
    let json = serde_json::to_string(&matrix).expect("serialise");
    let back: ModelMatrix = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back, matrix);
}
