//! Determinism oracle for fleet serving.
//!
//! The fleet's contract extends [`cast_sim::par::run_indexed`]'s: the
//! merged [`cast_fleet::FleetReport`] is a pure function of the
//! registry, the config and the estimator — never of the worker count
//! serving the plan/execute phases. These properties pin the report's
//! *JSON serialisation* byte-identical across 1, 2 and 8 workers and
//! across shard counts, under migration fault plans, safe protocols,
//! ForkLive what-if scoring, and capacity pressure that exercises the
//! partial-grant and deferral paths.

use proptest::prelude::*;

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{DataSize, Duration};
use cast_cloud::Catalog;
use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
use cast_estimator::mrcute::ClusterSpec;
use cast_estimator::Estimator;
use cast_fleet::{DedupMode, Fleet, FleetConfig, FleetReport, TenantRegistry};
use cast_runtime::{CandidateScoring, MigrationProtocol, ReplanPolicy, RuntimeConfig, SkipPolicy};
use cast_solver::AnnealConfig;
use cast_workload::profile::ProfileSet;
use cast_workload::{tenant_fleet, AppKind, FleetWorkloadConfig};

fn estimator(nvm: usize) -> Estimator {
    let mut matrix = ModelMatrix::new();
    for app in AppKind::ALL {
        for tier in Tier::ALL {
            matrix.insert(
                app,
                tier,
                CapacityCurve::fit(&[(
                    375.0,
                    PhaseBw {
                        map: 10.0,
                        shuffle_reduce: 10.0,
                    },
                )])
                .unwrap(),
            );
        }
    }
    Estimator {
        matrix,
        catalog: Catalog::google_cloud(),
        cluster: ClusterSpec {
            nvm,
            map_slots: 16,
            reduce_slots: 8,
            task_startup_secs: 1.5,
        },
        profiles: ProfileSet::defaults(),
    }
}

/// One fleet scenario the strategy draws.
#[derive(Debug, Clone)]
struct Scenario {
    tenants: usize,
    shards: u32,
    seed: u64,
    capacity_gb: f64,
    faulty: bool,
    scoring: CandidateScoring,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        3usize..8,
        1u32..4,
        0u64..u64::MAX,
        // Ample pools keep everyone uncontended; tight ones force
        // partial grants, deferrals and rejections through admission.
        prop::sample::select(vec![100_000.0, 120.0]),
        prop::sample::select(vec![false, true]),
        prop::sample::select(vec![CandidateScoring::Analytic, CandidateScoring::ForkLive]),
    )
        .prop_map(
            |(tenants, shards, seed, capacity_gb, faulty, scoring)| Scenario {
                tenants,
                shards,
                seed,
                capacity_gb,
                faulty,
                scoring,
            },
        )
}

fn fleet_config(sc: &Scenario, workers: usize) -> FleetConfig {
    FleetConfig {
        workers,
        shard_capacity: PerTier::from_fn(|_| DataSize::from_gb(sc.capacity_gb)),
        runtime: RuntimeConfig {
            epoch: Duration::from_mins(30.0),
            policy: ReplanPolicy::Hysteresis { min_gain: 0.02 },
            protocol: if sc.faulty {
                MigrationProtocol::safe()
            } else {
                MigrationProtocol::default()
            },
            migration_fault_prob: if sc.faulty { 0.3 } else { 0.0 },
            scoring: sc.scoring,
            seed: sc.seed,
            ..RuntimeConfig::default()
        },
        anneal: AnnealConfig {
            iterations: 200,
            restarts: 1,
            seed: sc.seed ^ 0xCA57,
            ..AnnealConfig::default()
        },
        ..FleetConfig::default()
    }
}

fn serve(est: &Estimator, sc: &Scenario, workers: usize) -> (String, FleetReport) {
    serve_with(est, sc, workers, DedupMode::Exact, SkipPolicy::default())
}

fn serve_with(
    est: &Estimator,
    sc: &Scenario,
    workers: usize,
    dedup: DedupMode,
    skip: SkipPolicy,
) -> (String, FleetReport) {
    let specs = tenant_fleet(&FleetWorkloadConfig {
        seed: sc.seed,
        tenants: sc.tenants,
        horizon: Duration::from_mins(60.0),
        base_jobs_per_hour: 6.0,
        max_bin: 3,
        ..FleetWorkloadConfig::default()
    })
    .unwrap();
    let registry = TenantRegistry::new(specs, sc.shards).unwrap();
    let mut cfg = fleet_config(sc, workers);
    cfg.dedup = dedup;
    cfg.runtime.skip = skip;
    let outcome = Fleet::new(est, cfg).run(&registry).unwrap();
    let json = serde_json::to_string(&outcome.report).unwrap();
    (json, outcome.report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The fleet contract: for every worker count the merged report's
    /// JSON is byte-identical, fault plans and what-if scoring included.
    #[test]
    fn merged_report_is_byte_identical_across_workers(sc in scenario_strategy()) {
        let est = estimator(4);
        let (baseline, report) = serve(&est, &sc, 1);
        prop_assert_eq!(report.tenants.len(), sc.tenants);
        prop_assert_eq!(report.shard_count, sc.shards);
        for workers in [2usize, 8] {
            let (json, _) = serve(&est, &sc, workers);
            prop_assert!(
                baseline == json,
                "worker count {} changed the merged fleet report",
                workers
            );
        }
    }

    /// The fast planning path is invisible in the results: grouped
    /// exact-dedup solves and the exact replan-skip gate produce a
    /// merged report byte-identical to always-fresh planning (dedup
    /// off, skip gate disabled), at every worker count, fault plans and
    /// what-if scoring included.
    #[test]
    fn dedup_and_exact_skip_match_always_fresh_planning(sc in scenario_strategy()) {
        let est = estimator(4);
        let off = SkipPolicy { enabled: false, ..SkipPolicy::default() };
        let (fresh, _) = serve_with(&est, &sc, 1, DedupMode::Off, off);
        for (workers, dedup) in [
            (1usize, DedupMode::Exact),
            (2, DedupMode::Exact),
            (8, DedupMode::Off),
        ] {
            let (fast, _) = serve_with(&est, &sc, workers, dedup, SkipPolicy::default());
            prop_assert!(
                fresh == fast,
                "dedup={:?} workers={} diverged from always-fresh planning",
                dedup,
                workers
            );
        }
    }
}

/// The equivalence property above is only meaningful if dedup actually
/// groups. A fleet of cloned tenants (identical arrival configs, so
/// identical streams and identical cold solve inputs) must fan most of
/// its plans out from group representatives — and still serve the same
/// bytes as dedup-off planning.
#[test]
fn cloned_tenants_dedup_into_shared_solves() {
    let est = estimator(4);
    let sc = Scenario {
        tenants: 6,
        shards: 2,
        seed: 0xDEDA,
        capacity_gb: 100_000.0,
        faulty: false,
        scoring: CandidateScoring::Analytic,
    };
    let template = tenant_fleet(&FleetWorkloadConfig {
        seed: sc.seed,
        tenants: 1,
        horizon: Duration::from_mins(60.0),
        base_jobs_per_hour: 6.0,
        max_bin: 3,
        ..FleetWorkloadConfig::default()
    })
    .unwrap()
    .remove(0);
    let specs: Vec<_> = (0..sc.tenants as u32)
        .map(|i| {
            let mut s = template.clone();
            s.id = cast_workload::TenantId(i);
            s
        })
        .collect();
    let registry = TenantRegistry::new(specs, sc.shards).unwrap();

    let fast = Fleet::new(&est, fleet_config(&sc, 2))
        .run(&registry)
        .unwrap();
    assert!(
        fast.stats.dedup_fanouts > 0,
        "cloned tenants must share solves (solves={}, groups={})",
        fast.stats.solves,
        fast.stats.cache_groups
    );
    assert_eq!(fast.stats.solves, fast.stats.cache_groups);

    let mut off = fleet_config(&sc, 2);
    off.dedup = DedupMode::Off;
    off.runtime.skip = SkipPolicy {
        enabled: false,
        ..SkipPolicy::default()
    };
    let fresh = Fleet::new(&est, off).run(&registry).unwrap();
    assert_eq!(fresh.stats.dedup_fanouts, 0);
    assert_eq!(
        serde_json::to_string(&fast.report).unwrap(),
        serde_json::to_string(&fresh.report).unwrap()
    );

    // Class-quantized grouping subsumes exact grouping for clones:
    // equal exact inputs imply equal class inputs, so the class mode
    // must fan out at least as widely and still serve the same bytes.
    let mut class = fleet_config(&sc, 2);
    class.dedup = DedupMode::Class;
    let approx = Fleet::new(&est, class).run(&registry).unwrap();
    assert!(approx.stats.dedup_fanouts >= fast.stats.dedup_fanouts);
    assert_eq!(
        serde_json::to_string(&approx.report).unwrap(),
        serde_json::to_string(&fresh.report).unwrap()
    );
}

/// A tight pool must actually exercise the contention paths the
/// property above claims to cover — otherwise the byte-identity proof
/// is vacuous for partial grants and deferrals.
#[test]
fn tight_pools_exercise_contention_paths() {
    let est = estimator(4);
    let sc = Scenario {
        tenants: 8,
        shards: 1,
        seed: 0x7E57,
        capacity_gb: 40.0,
        faulty: false,
        scoring: CandidateScoring::Analytic,
    };
    let (json1, report) = serve(&est, &sc, 1);
    let contended: usize = report
        .tenants
        .iter()
        .map(|t| t.admitted_partial + t.deferrals)
        .sum();
    assert!(contended > 0, "40 GB shared by 8 tenants must contend");
    let (json8, _) = serve(&est, &sc, 8);
    assert_eq!(json1, json8);
}

/// Repetition determinism: the same scenario served twice produces the
/// same bytes (no hidden global state, no wall-clock leakage into the
/// report).
#[test]
fn repeated_runs_are_byte_identical() {
    let est = estimator(4);
    let sc = Scenario {
        tenants: 5,
        shards: 2,
        seed: 0xF1EE7,
        capacity_gb: 100_000.0,
        faulty: true,
        scoring: CandidateScoring::ForkLive,
    };
    let (a, _) = serve(&est, &sc, 2);
    let (b, _) = serve(&est, &sc, 2);
    assert_eq!(a, b);
}
