//! The fleet scheduler: dispatching per-tenant replan epochs across a
//! worker pool with shared-capacity admission between plan and execute.
//!
//! Each region epoch runs four phases:
//!
//! 1. **Plan (parallel with a sequential grouping step)** — every
//!    tenant's [`TenantSession::begin_epoch`] fans out over
//!    [`cast_sim::par::run_indexed_mut`]'s work-stealing pool. Batches
//!    that still need the annealer come back as `PendingPlan`s; the
//!    fleet groups them by solve signature, confirms each member's
//!    canonical [`cast_runtime::SolveInputs`] equal its group
//!    representative's, solves **one representative per group** in
//!    parallel ([`TenantSession::solve_pending`] takes `&self`), and
//!    fans the winning assignment out via
//!    [`TenantSession::finish_epoch`] — bit-identical to a fresh solve
//!    because the solver seed is content-derived.
//! 2. **Admit (parallel across shards)** — each shard's planned demands
//!    meet its own [`CapacityLedger`] under priority admission
//!    ([`crate::admission::admit_epoch`]): guaranteed tenants get full
//!    grants or defer; best-effort tenants split the leftovers by
//!    weighted max-min fair share. Shards are independent pure
//!    functions of `(capacity, config, requests)`, so the fan-out
//!    changes wall time only; verdicts merge in shard order.
//! 3. **Execute (parallel)** — admitted batches run
//!    [`TenantSession::execute_epoch`] under their granted fraction;
//!    deferred batches re-enter the next boundary; rejected batches are
//!    turned away.
//! 4. **Settle (sequential)** — verdicts land in the fleet collector as
//!    `tenant_epoch` trace events (tagged with the plan's provenance:
//!    fresh / deduped / skipped) and in the per-tenant/per-shard
//!    accumulators, always in (shard, tenant-id) order.
//!
//! The parallel stages run under the `run_indexed` determinism contract
//! (outputs depend only on the index, never on worker count or claim
//! order), and every merge is a single-threaded walk in fixed order —
//! so the merged [`FleetReport`] serialises byte-identically across 1,
//! 2 or 8 workers, and across [`DedupMode::Exact`] vs
//! [`DedupMode::Off`] ([`DedupMode::Class`] is a deliberate
//! approximation for template-derived fleets; clones within it stay
//! exact). Wall-clock measurements and plan-cache counters are
//! quarantined in [`FleetStats`].

use std::sync::Mutex;
use std::time::Instant;

use cast_cloud::tier::PerTier;
use cast_cloud::units::DataSize;
use cast_cloud::CapacityLedger;
use cast_estimator::Estimator;
use cast_obs::{Collector, EventBody};
use cast_runtime::{
    PendingPlan, PlanPhase, PlanProvenance, PlannedEpoch, RuntimeConfig, SolveProduct,
    TenantSession,
};
use cast_sim::par::{run_indexed, run_indexed_mut};
use cast_solver::AnnealConfig;

use crate::admission::{admit_epoch, Admission, AdmissionConfig, AdmissionRequest};
use crate::error::FleetError;
use crate::report::{FleetReport, FleetStats, ShardReport, TenantSummary};
use crate::shard::TenantRegistry;

/// Knobs of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads for the parallel plan/execute phases. Any value
    /// produces the same [`FleetReport`]; this only trades wall time.
    pub workers: usize,
    /// Capacity each shard provisions per tier — the pool tenants draw
    /// epoch grants from.
    pub shard_capacity: PerTier<DataSize>,
    /// Priority-admission knobs shared by every shard.
    pub admission: AdmissionConfig,
    /// Per-tenant runtime configuration (epoch cadence, replan policy,
    /// protocol, scoring).
    pub runtime: RuntimeConfig,
    /// Cold-start anneal schedule per tenant (replans use
    /// `runtime.warm`).
    pub anneal: AnnealConfig,
    /// Cross-tenant solve dedup mode (see [`DedupMode`]).
    pub dedup: DedupMode,
}

/// How the fleet groups pending solves for cross-tenant dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// Every pending solve runs its own annealer.
    Off,
    /// Group by the exact solve signature and verify each member's
    /// canonical [`cast_runtime::SolveInputs`] equal the group
    /// representative's. The solver seed is content-derived, so the
    /// merged report is byte-identical to [`DedupMode::Off`] — exact
    /// dedup only trades throughput for simpler accounting.
    #[default]
    Exact,
    /// Group by the quantized class signature and verify each member's
    /// [`cast_runtime::ClassInputs`] — the per-job equivalence classes
    /// (coarse drift bucket × init placement) and warm flag — equal the
    /// representative's. Members whose exact
    /// byte counts differ adopt the representative's positional
    /// assignment anyway; each member's own hysteresis judgement then
    /// re-scores that candidate on its *real* batch, vetoing transfers
    /// that don't genuinely pay. Tenants whose exact inputs also match
    /// (clones) remain byte-identical to fresh solves; for the rest
    /// this is a deliberate approximation — the throughput mode for
    /// large fleets of template-derived tenants.
    Class,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: cast_sim::par::default_workers(),
            shard_capacity: PerTier::from_fn(|_| DataSize::from_tb(2.0)),
            admission: AdmissionConfig::default(),
            runtime: RuntimeConfig::default(),
            anneal: AnnealConfig::default(),
            dedup: DedupMode::Exact,
        }
    }
}

/// What a fleet run returns: the deterministic merged report and the
/// wall-clock side channel.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Deterministic merged result (byte-identical across workers).
    pub report: FleetReport,
    /// Wall-clock measurements (never deterministic, never merged into
    /// the report).
    pub stats: FleetStats,
}

/// The multi-tenant tiering service for one region.
pub struct Fleet<'a> {
    estimator: &'a Estimator,
    cfg: FleetConfig,
    obs: Collector,
}

/// `tenant_epoch` settlement events land in the attached collector, in
/// deterministic (shard, tenant) order per epoch — the fleet's span
/// dimension on top of each tenant's own (unattached) instrumentation.
impl cast_obs::Observe for Fleet<'_> {
    fn collector_slot(&mut self) -> &mut Collector {
        &mut self.obs
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TenantAccum {
    admitted_full: usize,
    admitted_partial: usize,
    deferrals: usize,
    grant_sum: f64,
}

impl<'a> Fleet<'a> {
    /// A fleet over `estimator`'s cloud with the given knobs.
    pub fn new(estimator: &'a Estimator, cfg: FleetConfig) -> Self {
        Fleet {
            estimator,
            cfg,
            obs: Collector::noop(),
        }
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Serve every registered tenant's stream to completion.
    pub fn run(&self, registry: &TenantRegistry) -> Result<FleetOutcome, FleetError> {
        let t_run = Instant::now();
        let cfg = &self.cfg;
        if cfg.workers == 0 {
            return Err(FleetError::Config("workers must be > 0"));
        }
        let n = registry.len();
        let mut sessions: Vec<TenantSession<'a>> = Vec::with_capacity(n);
        for spec in registry.specs() {
            sessions.push(TenantSession::new(
                self.estimator,
                cfg.anneal,
                cfg.runtime,
                spec.stream()?,
            ));
        }
        let epochs = sessions.iter().map(|s| s.epoch_count()).max().unwrap_or(1);

        let mut consec_defer = vec![0usize; n];
        let mut tacc = vec![TenantAccum::default(); n];
        let mut sacc: Vec<ShardReport> = (0..registry.shards())
            .map(|shard| ShardReport {
                shard,
                tenants: registry.shard_tenants(shard).len(),
                admitted: 0,
                deferred: 0,
                rejected_batches: 0,
                peak_utilization: 0.0,
            })
            .collect();
        let mut stats = FleetStats::default();

        for k in 0..epochs {
            // Phase 1a — assemble every tenant's boundary in parallel.
            // Epochs the skip gates or replan policy sealed come back
            // `Planned`; the rest surface their solve inputs.
            let t_plan = Instant::now();
            let outcomes = run_indexed_mut(cfg.workers, &mut sessions, |_, s| {
                let t = Instant::now();
                let r = s.begin_epoch(k);
                (r, t.elapsed().as_secs_f64())
            });
            let mut plans: Vec<Option<PlannedEpoch>> = Vec::with_capacity(n);
            let mut walls: Vec<f64> = Vec::with_capacity(n);
            let mut pendings: Vec<Option<Box<PendingPlan>>> = Vec::with_capacity(n);
            for (r, wall) in outcomes {
                let (plan, pending) = match r? {
                    PlanPhase::Idle => (None, None),
                    PlanPhase::Planned(p) => (Some(p), None),
                    PlanPhase::Solve(pp) => (None, Some(pp)),
                };
                plans.push(plan);
                pendings.push(pending);
                walls.push(wall);
            }

            // Phase 1b — group pending solves (sequential, cheap). The
            // signature — exact or class-quantized per the dedup mode —
            // is a grouping hint only: each member's canonical content
            // must equal the representative's, or it falls out into its
            // own group — a digest collision can cost a solve, never
            // correctness. Grouping walks tenants in id order, so the
            // representative choice is deterministic regardless of
            // worker count.
            let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
            if cfg.dedup == DedupMode::Off {
                for (i, p) in pendings.iter().enumerate() {
                    if p.is_some() {
                        groups.push((i, Vec::new()));
                    }
                }
            } else {
                let sig_of = |p: &PendingPlan| match cfg.dedup {
                    DedupMode::Exact => p.signature(),
                    DedupMode::Class => p.class_set_signature(),
                    DedupMode::Off => unreachable!("handled above"),
                };
                let same = |a: &PendingPlan, b: &PendingPlan| match cfg.dedup {
                    DedupMode::Exact => a.inputs() == b.inputs(),
                    DedupMode::Class => a.class_set_matches(b),
                    DedupMode::Off => unreachable!("handled above"),
                };
                let mut by_sig: std::collections::HashMap<u64, Vec<usize>> =
                    std::collections::HashMap::new();
                for (i, p) in pendings.iter().enumerate() {
                    if let Some(p) = p {
                        by_sig.entry(sig_of(p)).or_default().push(i);
                    }
                }
                let mut sigs: Vec<u64> = by_sig.keys().copied().collect();
                sigs.sort_unstable();
                for sig in sigs {
                    let members = &by_sig[&sig];
                    // Members arrive in tenant order; the first becomes
                    // the representative, and any member whose content
                    // differs (collision) seeds a new sub-group.
                    let mut subs: Vec<(usize, Vec<usize>)> = Vec::new();
                    for &i in members {
                        let p = pendings[i].as_ref().expect("grouped Some");
                        match subs
                            .iter_mut()
                            .find(|(rep, _)| same(pendings[*rep].as_ref().expect("rep Some"), p))
                        {
                            Some((_, v)) => v.push(i),
                            None => subs.push((i, Vec::new())),
                        }
                    }
                    groups.extend(subs);
                }
            }
            let fanouts = groups.iter().map(|(_, v)| v.len() as u64).sum::<u64>();
            stats.cache_groups += groups.len() as u64;
            stats.solves += groups.len() as u64;
            stats.dedup_fanouts += fanouts;
            self.obs
                .counter("fleet.plan.solves")
                .add(groups.len() as u64);
            self.obs.counter("fleet.plan.deduped").add(fanouts);

            // Phase 1c — solve one representative per group in
            // parallel. `solve_pending` holds the sessions immutably.
            let sessions_ref = &sessions;
            let pendings_ref = &pendings;
            let groups_ref = &groups;
            let solve_results: Vec<(Result<SolveProduct, _>, f64)> =
                run_indexed(cfg.workers, groups.len(), |g| {
                    let rep = groups_ref[g].0;
                    let t = Instant::now();
                    let r = sessions_ref[rep]
                        .solve_pending(pendings_ref[rep].as_ref().expect("rep Some"));
                    (r, t.elapsed().as_secs_f64())
                });

            // Phase 1d — seal every pending epoch in parallel: each
            // tenant adopts its group's product (the representative as
            // Fresh, the rest as Deduped) and runs its own hysteresis
            // judgement, migration diff and demand aggregation.
            let finish_slots: Vec<Mutex<Option<(Box<PendingPlan>, SolveProduct, PlanProvenance)>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            for (g, (result, solve_wall)) in solve_results.into_iter().enumerate() {
                let (rep, members) = &groups[g];
                let product = result?;
                walls[*rep] += solve_wall;
                for &i in members {
                    // Class members adopt through the class transfer
                    // (permutation when multisets match, per-class
                    // lookup otherwise); exact members share the
                    // positional layout, so the product moves as-is.
                    let member_product = if cfg.dedup == DedupMode::Class {
                        cast_runtime::transfer_class_product(
                            pendings[*rep].as_ref().expect("rep Some"),
                            &product,
                            pendings[i].as_ref().expect("member Some"),
                        )
                    } else {
                        product.clone()
                    };
                    *finish_slots[i].lock().expect("uncontended") = Some((
                        pendings[i].take().expect("member Some"),
                        member_product,
                        PlanProvenance::Deduped,
                    ));
                }
                *finish_slots[*rep].lock().expect("uncontended") = Some((
                    pendings[*rep].take().expect("rep Some"),
                    product,
                    PlanProvenance::Fresh,
                ));
            }
            let fslots = &finish_slots;
            let finished = run_indexed_mut(cfg.workers, &mut sessions, |i, s| {
                match fslots[i].lock().expect("uncontended").take() {
                    Some((pending, product, prov)) => {
                        let t = Instant::now();
                        let r = s.finish_epoch(*pending, &product, prov).map(Some);
                        (r, t.elapsed().as_secs_f64())
                    }
                    None => (Ok(None), 0.0),
                }
            });
            for (i, (r, wall)) in finished.into_iter().enumerate() {
                if let Some(p) = r? {
                    walls[i] += wall;
                    plans[i] = Some(p);
                }
            }
            for (i, p) in plans.iter().enumerate() {
                if let Some(p) = p {
                    stats.replan_wall_secs.push(walls[i]);
                    if p.provenance() == PlanProvenance::Skipped {
                        stats.replans_skipped += 1;
                        self.obs.counter("fleet.plan.skipped").inc();
                    }
                }
            }
            stats.plan_wall_secs += t_plan.elapsed().as_secs_f64();

            // Phase 2 — shard-local priority admission over per-shard
            // ledgers, fanned out across shards (each shard is a pure
            // function of its own requests; merge order is fixed).
            let t_admit = Instant::now();
            let plans_ref = &plans;
            let defer_ref = &consec_defer;
            let shard_verdicts: Vec<(Vec<(usize, Admission)>, f64)> =
                run_indexed(cfg.workers, registry.shards() as usize, |shard| {
                    let shard = shard as u32;
                    let idxs: Vec<usize> = registry
                        .shard_tenants(shard)
                        .iter()
                        .copied()
                        .filter(|&i| plans_ref[i].is_some())
                        .collect();
                    if idxs.is_empty() {
                        return (Vec::new(), 0.0);
                    }
                    let requests: Vec<AdmissionRequest> = idxs
                        .iter()
                        .map(|&i| {
                            let spec = &registry.specs()[i];
                            AdmissionRequest {
                                tenant: spec.id.0,
                                priority: spec.priority(),
                                weight: spec.weight(),
                                demand: *plans_ref[i].as_ref().expect("filtered Some").demand(),
                                deferrals: defer_ref[i],
                            }
                        })
                        .collect();
                    let mut ledger = CapacityLedger::new(cfg.shard_capacity);
                    let vs = admit_epoch(&mut ledger, &cfg.admission, &requests);
                    (idxs.into_iter().zip(vs).collect(), ledger.utilization())
                });
            let mut verdicts: Vec<Option<Admission>> = vec![None; n];
            for (shard, (vs, utilization)) in shard_verdicts.into_iter().enumerate() {
                let s = &mut sacc[shard];
                s.peak_utilization = s.peak_utilization.max(utilization);
                for (i, v) in vs {
                    verdicts[i] = Some(v);
                }
            }
            stats.admit_wall_secs += t_admit.elapsed().as_secs_f64();

            // Phase 4a — settle verdicts in (shard, tenant) order:
            // trace events, accumulators, defer/reject bookkeeping; the
            // admitted batches queue for parallel execution.
            let exec_slots: Vec<Mutex<Option<(PlannedEpoch, f64)>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let boundary_secs = cfg.runtime.epoch.secs() * (k + 1) as f64;
            for shard in 0..registry.shards() {
                for &i in registry.shard_tenants(shard) {
                    let Some(v) = verdicts[i] else { continue };
                    let p = plans[i].take().expect("verdict implies plan");
                    self.obs.emit(
                        boundary_secs,
                        EventBody::TenantEpoch {
                            tenant: registry.specs()[i].id.0,
                            shard,
                            epoch: k,
                            admission: v.label().to_string(),
                            granted_frac: v.granted_frac(),
                            planned: p.provenance().label().to_string(),
                        },
                    );
                    match v {
                        Admission::Admitted { frac } => {
                            consec_defer[i] = 0;
                            if frac >= 1.0 {
                                tacc[i].admitted_full += 1;
                            } else {
                                tacc[i].admitted_partial += 1;
                            }
                            tacc[i].grant_sum += frac;
                            sacc[shard as usize].admitted += 1;
                            *exec_slots[i].lock().expect("uncontended") = Some((p, frac));
                        }
                        Admission::Deferred => {
                            consec_defer[i] += 1;
                            tacc[i].deferrals += 1;
                            sacc[shard as usize].deferred += 1;
                            sessions[i].defer_epoch(p);
                        }
                        Admission::Rejected => {
                            consec_defer[i] = 0;
                            sacc[shard as usize].rejected_batches += 1;
                            sessions[i].reject_epoch(p);
                        }
                    }
                }
            }

            // Phase 3 — execute admitted batches in parallel under their
            // grants.
            let t_exec = Instant::now();
            let slots = &exec_slots;
            let results = run_indexed_mut(cfg.workers, &mut sessions, |i, s| {
                match slots[i].lock().expect("uncontended").take() {
                    Some((p, frac)) => s.execute_epoch(p, frac).map(|_| true),
                    None => Ok(false),
                }
            });
            for r in results {
                if r? {
                    stats.executed_epochs += 1;
                }
            }
            stats.exec_wall_secs += t_exec.elapsed().as_secs_f64();
        }

        // Final settlement: per-tenant rollups in id order, region totals.
        let mut tenants = Vec::with_capacity(n);
        for (i, (session, spec)) in sessions.into_iter().zip(registry.specs()).enumerate() {
            let report = session.finish();
            let admitted = tacc[i].admitted_full + tacc[i].admitted_partial;
            tenants.push(TenantSummary {
                tenant: spec.id.0,
                shard: registry.shard_of_index(i),
                class: spec.class.label().to_string(),
                epochs_served: report.epochs.len(),
                admitted_full: tacc[i].admitted_full,
                admitted_partial: tacc[i].admitted_partial,
                deferrals: tacc[i].deferrals,
                mean_grant: if admitted > 0 {
                    tacc[i].grant_sum / admitted as f64
                } else {
                    0.0
                },
                jobs_completed: report.jobs_completed,
                deadline_misses: report.deadline_misses,
                rejected: report.rejected,
                total_cost: report.total_cost,
            });
        }
        let report = FleetReport {
            epochs,
            shard_count: registry.shards(),
            jobs_completed: tenants.iter().map(|t| t.jobs_completed).sum(),
            deadline_misses: tenants.iter().map(|t| t.deadline_misses).sum(),
            rejected: tenants.iter().map(|t| t.rejected).sum(),
            deferrals: tenants.iter().map(|t| t.deferrals).sum(),
            total_cost: tenants.iter().map(|t| t.total_cost).sum(),
            tenants,
            shards: sacc,
        };
        stats.total_wall_secs = t_run.elapsed().as_secs_f64();
        Ok(FleetOutcome { report, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::Tier;
    use cast_cloud::units::Duration;
    use cast_cloud::Catalog;
    use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
    use cast_estimator::mrcute::ClusterSpec;
    use cast_obs::Observe;
    use cast_runtime::{OnlineRuntime, ReplanPolicy};
    use cast_workload::profile::ProfileSet;
    use cast_workload::{tenant_fleet, AppKind, FleetWorkloadConfig, TenantClass};

    fn estimator(nvm: usize) -> Estimator {
        let mut matrix = ModelMatrix::new();
        for app in AppKind::ALL {
            for tier in Tier::ALL {
                matrix.insert(
                    app,
                    tier,
                    CapacityCurve::fit(&[(
                        375.0,
                        PhaseBw {
                            map: 10.0,
                            shuffle_reduce: 10.0,
                        },
                    )])
                    .unwrap(),
                );
            }
        }
        Estimator {
            matrix,
            catalog: Catalog::google_cloud(),
            cluster: ClusterSpec {
                nvm,
                map_slots: 16,
                reduce_slots: 8,
                task_startup_secs: 1.5,
            },
            profiles: ProfileSet::defaults(),
        }
    }

    fn small_fleet(tenants: usize, seed: u64) -> TenantRegistry {
        let specs = tenant_fleet(&FleetWorkloadConfig {
            seed,
            tenants,
            horizon: Duration::from_mins(60.0),
            base_jobs_per_hour: 6.0,
            max_bin: 3,
            ..FleetWorkloadConfig::default()
        })
        .unwrap();
        TenantRegistry::new(specs, 2).unwrap()
    }

    fn quick_cfg(capacity_tb: f64) -> FleetConfig {
        FleetConfig {
            workers: 2,
            shard_capacity: PerTier::from_fn(|_| DataSize::from_tb(capacity_tb)),
            runtime: RuntimeConfig {
                epoch: Duration::from_mins(30.0),
                policy: ReplanPolicy::Hysteresis { min_gain: 0.02 },
                ..RuntimeConfig::default()
            },
            anneal: AnnealConfig {
                iterations: 300,
                restarts: 1,
                ..AnnealConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn ample_capacity_serves_everyone_uncontended() {
        let est = estimator(4);
        let reg = small_fleet(10, 0xA11);
        let out = Fleet::new(&est, quick_cfg(100.0)).run(&reg).unwrap();
        assert_eq!(out.report.tenants.len(), 10);
        assert_eq!(out.report.deferrals, 0);
        // With capacity to spare every admitted epoch is a full grant.
        assert_eq!(out.report.uncontended_tenants().count(), 10);
        assert!(out.report.jobs_completed > 0);
        assert!(out.report.total_cost > 0.0);
        assert!(out.stats.executed_epochs > 0);
        assert!(out.stats.total_wall_secs > 0.0);
    }

    #[test]
    fn uncontended_tenant_matches_its_solo_baseline() {
        // The fleet's full-grant path must be bit-identical to serving
        // the tenant alone — same jobs, same misses, same cost.
        let est = estimator(4);
        let reg = small_fleet(6, 0xB22);
        let cfg = quick_cfg(100.0);
        let out = Fleet::new(&est, cfg.clone()).run(&reg).unwrap();
        for (spec, summary) in reg.specs().iter().zip(out.report.tenants.iter()) {
            let solo = OnlineRuntime::new(&est, cfg.anneal, cfg.runtime)
                .run(&spec.stream().unwrap())
                .unwrap();
            assert_eq!(summary.jobs_completed, solo.jobs_completed, "t{}", spec.id);
            assert_eq!(
                summary.deadline_misses, solo.deadline_misses,
                "t{}",
                spec.id
            );
            assert!(
                (summary.total_cost - solo.total_cost).abs() < 1e-12,
                "t{}",
                spec.id
            );
        }
    }

    #[test]
    fn scarce_capacity_throttles_best_effort_first() {
        let est = estimator(4);
        let reg = small_fleet(10, 0xC33);
        // A pool small enough that epochs contend.
        let out = Fleet::new(&est, quick_cfg(0.05)).run(&reg).unwrap();
        let contended: usize = out
            .report
            .tenants
            .iter()
            .map(|t| t.admitted_partial + t.deferrals)
            .sum();
        assert!(contended > 0, "a 50 GB shard pool must contend");
        // Guaranteed (interactive) tenants are never partially granted.
        for (spec, t) in reg.specs().iter().zip(out.report.tenants.iter()) {
            if spec.class == TenantClass::Interactive {
                assert_eq!(t.admitted_partial, 0, "t{} throttled", spec.id);
            }
        }
        // Shard books saw real utilization.
        assert!(out.report.shards.iter().any(|s| s.peak_utilization > 0.5));
    }

    #[test]
    fn settlement_emits_tenant_epoch_spans_in_order() {
        let est = estimator(4);
        let reg = small_fleet(6, 0xD44);
        let col = Collector::recording();
        let fleet = Fleet::new(&est, quick_cfg(100.0)).observe(col.clone());
        fleet.run(&reg).unwrap();
        let events = col.events();
        assert!(!events.is_empty());
        let mut last = (0u32, 0u32, 0u32);
        let mut seen = 0;
        for e in &events {
            if let EventBody::TenantEpoch {
                tenant,
                shard,
                epoch,
                admission,
                granted_frac,
                planned,
            } = &e.body
            {
                seen += 1;
                assert_eq!(admission, "admitted");
                assert_eq!(*granted_frac, 1.0);
                assert!(
                    ["fresh", "deduped", "skipped"].contains(&planned.as_str()),
                    "unexpected provenance {planned}"
                );
                let key = (*epoch, *shard, *tenant);
                assert!(key > last || seen == 1, "{key:?} after {last:?}");
                last = key;
            }
        }
        assert!(seen > 0, "settlement must trace tenant epochs");
    }

    #[test]
    fn plan_cache_counters_land_in_the_metrics_registry() {
        // FleetStats is the wall-clock side channel; the same plan-cache
        // tallies must also flow through the attached collector so fleet
        // dashboards see them without holding a FleetOutcome.
        let est = estimator(4);
        let reg = small_fleet(6, 0xE55);
        let col = Collector::recording();
        let fleet = Fleet::new(&est, quick_cfg(100.0)).observe(col.clone());
        let out = fleet.run(&reg).unwrap();
        let snap = col.snapshot();
        assert!(out.stats.solves > 0);
        assert_eq!(snap.counter("fleet.plan.solves"), Some(out.stats.solves));
        assert_eq!(
            snap.counter("fleet.plan.deduped").unwrap_or(0),
            out.stats.dedup_fanouts
        );
        assert_eq!(
            snap.counter("fleet.plan.skipped").unwrap_or(0),
            out.stats.replans_skipped
        );
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let est = estimator(4);
        let reg = small_fleet(2, 1);
        let cfg = FleetConfig {
            workers: 0,
            ..quick_cfg(1.0)
        };
        assert!(matches!(
            Fleet::new(&est, cfg).run(&reg),
            Err(FleetError::Config(_))
        ));
    }
}
