//! # cast-fleet — sharded multi-tenant tiering service
//!
//! One simulated region serving thousands of tenants, each with its own
//! tiering goal (`cast_core::TenantGoal`), deadlines, drift profile and
//! arrival stream from [`cast_workload::tenant_fleet`]. The pieces:
//!
//! * [`TenantRegistry`] + [`shard_of`] — the shard map: tenants hash
//!   onto `N` independent capacity pools via splitmix64, stably and
//!   machine-independently.
//! * [`Fleet`] — the epoch scheduler: per-tenant replan epochs
//!   ([`cast_runtime::TenantSession`], warm starts and what-if scoring
//!   included) dispatched across [`cast_sim::par`]'s worker pool.
//! * [`admit_epoch`] — shared-capacity accounting: per-epoch priority
//!   admission over each shard's [`cast_cloud::CapacityLedger`], with
//!   weighted max-min fair share for best-effort classes and
//!   all-or-nothing full grants for guaranteed ones.
//! * [`FleetReport`] / [`FleetStats`] — deterministic cross-shard
//!   settlement (byte-identical across 1/2/8 workers) with wall-clock
//!   latencies quarantined in a side channel.
//!
//! ```
//! use cast_cloud::tier::PerTier;
//! use cast_cloud::units::DataSize;
//! use cast_fleet::{Fleet, FleetConfig, TenantRegistry};
//! # use cast_cloud::tier::Tier;
//! # use cast_cloud::Catalog;
//! # use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
//! # use cast_estimator::mrcute::ClusterSpec;
//! # use cast_estimator::Estimator;
//! # use cast_workload::profile::ProfileSet;
//! # use cast_workload::{tenant_fleet, AppKind, FleetWorkloadConfig};
//! # let mut matrix = ModelMatrix::new();
//! # for app in AppKind::ALL {
//! #     for tier in Tier::ALL {
//! #         let bw = PhaseBw { map: 10.0, shuffle_reduce: 10.0 };
//! #         matrix.insert(app, tier, CapacityCurve::fit(&[(375.0, bw)]).unwrap());
//! #     }
//! # }
//! # let estimator = Estimator {
//! #     matrix,
//! #     catalog: Catalog::google_cloud(),
//! #     cluster: ClusterSpec { nvm: 4, map_slots: 16, reduce_slots: 8, task_startup_secs: 1.5 },
//! #     profiles: ProfileSet::defaults(),
//! # };
//!
//! let specs = tenant_fleet(&FleetWorkloadConfig {
//!     tenants: 4,
//!     ..FleetWorkloadConfig::default()
//! })?;
//! let registry = TenantRegistry::new(specs, 2)?;
//! # let mut cfg = FleetConfig::default();
//! # cfg.anneal.iterations = 300; // keep the doc test quick
//! # let fleet = Fleet::new(&estimator, cfg);
//! # #[cfg(any())]
//! let fleet = Fleet::new(&estimator, FleetConfig::default());
//! let outcome = fleet.run(&registry)?;
//! assert_eq!(outcome.report.tenants.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod admission;
pub mod error;
pub mod fleet;
pub mod report;
pub mod shard;

pub use admission::{admit_epoch, Admission, AdmissionConfig, AdmissionRequest};
pub use error::FleetError;
pub use fleet::{DedupMode, Fleet, FleetConfig, FleetOutcome};
pub use report::{FleetReport, FleetStats, ShardReport, TenantSummary};
pub use shard::{shard_of, TenantRegistry};
