//! Fleet results: the deterministic merged report and the quarantined
//! wall-clock side channel.
//!
//! [`FleetReport`] is assembled at settlement in (shard, tenant-id)
//! order from values that are pure functions of the fleet's inputs, so
//! its JSON serialisation is byte-identical across worker counts and
//! repetitions — the property `tests/fleet_determinism.rs` pins.
//! Wall-clock measurements (replan latency, total serving time) never
//! belong in it; they live in [`FleetStats`], the side channel the
//! `tenant_scale` bench reads.

use serde::{Deserialize, Serialize};

/// One tenant's whole-run rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// Fleet-unique tenant id.
    pub tenant: u32,
    /// Shard the tenant hashes onto.
    pub shard: u32,
    /// Service-class label (`interactive` / `batch` / `bursty`).
    pub class: String,
    /// Epochs that produced a report row (admitted or turned away).
    pub epochs_served: usize,
    /// Epochs granted the full demanded capacity (`frac == 1.0`).
    pub admitted_full: usize,
    /// Epochs granted a partial fair share (`frac < 1.0`).
    pub admitted_partial: usize,
    /// Batches pushed to a later boundary by admission.
    pub deferrals: usize,
    /// Mean granted fraction over admitted epochs (1.0 when never
    /// contended; 0.0 when never admitted).
    pub mean_grant: f64,
    /// Jobs the tenant completed.
    pub jobs_completed: usize,
    /// Workflows that finished past their deadline.
    pub deadline_misses: usize,
    /// Workflows rejected (tenant admission policy + fleet capacity).
    pub rejected: usize,
    /// The tenant's total tenancy cost, dollars.
    pub total_cost: f64,
}

/// One shard's whole-run rollup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Tenants hashed onto this shard.
    pub tenants: usize,
    /// Tenant-epochs admitted (full or partial).
    pub admitted: usize,
    /// Tenant-epochs deferred.
    pub deferred: usize,
    /// Tenant-epochs rejected by capacity admission.
    pub rejected_batches: usize,
    /// Peak committed/provisioned ratio over the run, in `[0, 1]`.
    pub peak_utilization: f64,
}

/// The merged fleet result: per-tenant and per-shard rollups plus
/// region totals, assembled in deterministic (shard, tenant) order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Epochs on the region grid.
    pub epochs: u32,
    /// Shards in the region.
    pub shard_count: u32,
    /// Per-tenant rollups, in tenant-id order.
    pub tenants: Vec<TenantSummary>,
    /// Per-shard rollups, in shard order.
    pub shards: Vec<ShardReport>,
    /// Jobs completed across the fleet.
    pub jobs_completed: usize,
    /// Deadline misses across the fleet.
    pub deadline_misses: usize,
    /// Workflows rejected across the fleet.
    pub rejected: usize,
    /// Batches deferred across the fleet.
    pub deferrals: usize,
    /// Total tenancy cost across the fleet, dollars.
    pub total_cost: f64,
}

impl FleetReport {
    /// Tenants whose every admitted epoch ran at the full grant and that
    /// were never deferred or capacity-rejected — the tenants whose runs
    /// are bit-identical to serving them alone.
    pub fn uncontended_tenants(&self) -> impl Iterator<Item = &TenantSummary> {
        self.tenants
            .iter()
            .filter(|t| t.admitted_partial == 0 && t.deferrals == 0 && t.mean_grant >= 1.0)
    }
}

/// Wall-clock measurements from one fleet run. **Not deterministic** —
/// values change run to run — which is why they are quarantined out of
/// [`FleetReport`]. Sample *counts* and ordering are deterministic.
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Wall seconds of each per-tenant plan call that produced a batch,
    /// in (epoch, tenant) order. A tenant's sample covers the work done
    /// *for it*: batch assembly + epoch sealing, plus the annealer solve
    /// when the tenant was its signature group's representative —
    /// deduped and skip-gated tenants book only their share.
    pub replan_wall_secs: Vec<f64>,
    /// Wall seconds for the whole run.
    pub total_wall_secs: f64,
    /// Tenant-epochs executed (admitted batches).
    pub executed_epochs: usize,
    /// Annealer solves actually run (one per signature group).
    pub solves: u64,
    /// Plans fanned out from a group representative's solve instead of
    /// solving (cross-tenant dedup hits).
    pub dedup_fanouts: u64,
    /// Epochs whose annealer was skipped by the replan-skip gates
    /// (exact cache hits + drift-gated skips + policy no-replans).
    pub replans_skipped: u64,
    /// Signature groups formed across all epochs (`solves` ≤ pending
    /// plans; `cache_groups == solves` since each group solves once).
    pub cache_groups: u64,
    /// Wall seconds in the plan phase (begin + solve + finish), summed
    /// over epochs.
    pub plan_wall_secs: f64,
    /// Wall seconds in shard admission, summed over epochs.
    pub admit_wall_secs: f64,
    /// Wall seconds in the execute phase, summed over epochs.
    pub exec_wall_secs: f64,
}

impl FleetStats {
    /// Percentile (0–100, nearest-rank) over the replan latencies, in
    /// seconds. Returns 0.0 with no samples.
    pub fn replan_percentile(&self, pct: f64) -> f64 {
        if self.replan_wall_secs.is_empty() {
            return 0.0;
        }
        let mut sorted = self.replan_wall_secs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((pct / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let stats = FleetStats {
            replan_wall_secs: (1..=100).map(|i| i as f64).collect(),
            total_wall_secs: 1.0,
            executed_epochs: 100,
            ..FleetStats::default()
        };
        assert_eq!(stats.replan_percentile(0.0), 1.0);
        assert_eq!(stats.replan_percentile(50.0), 51.0);
        assert_eq!(stats.replan_percentile(100.0), 100.0);
        assert_eq!(FleetStats::default().replan_percentile(99.0), 0.0);
    }

    #[test]
    fn uncontended_filter_requires_full_grants_everywhere() {
        let t = |partial: usize, deferrals: usize, grant: f64| TenantSummary {
            tenant: 0,
            shard: 0,
            class: "interactive".into(),
            epochs_served: 3,
            admitted_full: 3 - partial,
            admitted_partial: partial,
            deferrals,
            mean_grant: grant,
            jobs_completed: 5,
            deadline_misses: 0,
            rejected: 0,
            total_cost: 1.0,
        };
        let report = FleetReport {
            epochs: 3,
            shard_count: 1,
            tenants: vec![t(0, 0, 1.0), t(1, 0, 0.9), t(0, 1, 1.0)],
            shards: Vec::new(),
            jobs_completed: 15,
            deadline_misses: 0,
            rejected: 0,
            deferrals: 1,
            total_cost: 3.0,
        };
        assert_eq!(report.uncontended_tenants().count(), 1);
    }
}
