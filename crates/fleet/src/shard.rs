//! The tenant registry and its shard map.
//!
//! A region is split into `shards` independent capacity pools; every
//! tenant hashes onto exactly one shard for its whole lifetime. The hash
//! is [`cast_workload::splitmix64`] over the tenant id — stateless,
//! machine-independent, and well-mixed enough that shard populations
//! stay balanced without any rebalancing machinery. Two fleets with the
//! same tenants and shard count therefore always agree on placement,
//! which is what keeps merged fleet reports byte-identical regardless of
//! how many workers served them.

use cast_workload::{splitmix64, TenantId, TenantSpec};

use crate::error::FleetError;

/// Shard a tenant id hashes onto under `shards` shards.
pub fn shard_of(id: TenantId, shards: u32) -> u32 {
    (splitmix64(id.0 as u64) % shards as u64) as u32
}

/// The fleet's tenant directory: specs in dense index order plus the
/// shard each hashes onto.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRegistry {
    specs: Vec<TenantSpec>,
    shards: u32,
    assignment: Vec<u32>,
    by_shard: Vec<Vec<usize>>,
}

impl TenantRegistry {
    /// Register `specs` across `shards` shards. Tenant ids must be
    /// unique (the shard map and the reports key on them).
    pub fn new(specs: Vec<TenantSpec>, shards: u32) -> Result<TenantRegistry, FleetError> {
        if shards == 0 {
            return Err(FleetError::Config("shards must be > 0"));
        }
        if specs.is_empty() {
            return Err(FleetError::Config("a fleet needs at least one tenant"));
        }
        let mut seen = std::collections::HashSet::with_capacity(specs.len());
        for s in &specs {
            if !seen.insert(s.id) {
                return Err(FleetError::Config("duplicate tenant id"));
            }
        }
        let assignment: Vec<u32> = specs.iter().map(|s| shard_of(s.id, shards)).collect();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards as usize];
        for (i, &sh) in assignment.iter().enumerate() {
            by_shard[sh as usize].push(i);
        }
        Ok(TenantRegistry {
            specs,
            shards,
            assignment,
            by_shard,
        })
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// All tenant specs, in dense index order.
    pub fn specs(&self) -> &[TenantSpec] {
        &self.specs
    }

    /// The shard tenant index `i` lives on.
    pub fn shard_of_index(&self, i: usize) -> u32 {
        self.assignment[i]
    }

    /// Tenant indices on `shard`, ascending.
    pub fn shard_tenants(&self, shard: u32) -> &[usize] {
        &self.by_shard[shard as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_workload::{tenant_fleet, FleetWorkloadConfig};

    fn fleet(n: usize) -> Vec<TenantSpec> {
        tenant_fleet(&FleetWorkloadConfig {
            tenants: n,
            ..FleetWorkloadConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn assignment_is_stable_and_partitioned() {
        let reg = TenantRegistry::new(fleet(128), 8).unwrap();
        // Every tenant appears on exactly one shard.
        let total: usize = (0..8).map(|s| reg.shard_tenants(s).len()).sum();
        assert_eq!(total, 128);
        for s in 0..8 {
            for &i in reg.shard_tenants(s) {
                assert_eq!(reg.shard_of_index(i), s);
                assert_eq!(shard_of(reg.specs()[i].id, 8), s);
            }
        }
        // Same inputs, same map.
        let again = TenantRegistry::new(fleet(128), 8).unwrap();
        assert_eq!(reg, again);
    }

    #[test]
    fn shards_stay_balanced() {
        let reg = TenantRegistry::new(fleet(1024), 8).unwrap();
        for s in 0..8 {
            let n = reg.shard_tenants(s).len();
            // 1024/8 = 128 expected; splitmix64 keeps every shard within
            // a loose factor-of-two band.
            assert!((64..=256).contains(&n), "shard {s} holds {n} tenants");
        }
    }

    #[test]
    fn bad_registries_are_rejected() {
        assert!(TenantRegistry::new(fleet(4), 0).is_err());
        assert!(TenantRegistry::new(Vec::new(), 4).is_err());
        let mut dup = fleet(4);
        let clone = dup[0].clone();
        dup.push(clone);
        assert!(TenantRegistry::new(dup, 4).is_err());
    }
}
