//! Per-shard, per-epoch priority admission over shared capacity.
//!
//! Each epoch a shard's tenants present their planned batches' raw
//! per-tier capacity demands. Admission walks priority classes from
//! highest to lowest against one [`CapacityLedger`]:
//!
//! * **Guaranteed classes** (priority ≥ `guaranteed_priority`) are
//!   admitted all-or-nothing, in tenant-id order: a tenant whose full
//!   demand fits is granted exactly `1.0` — making its epoch bit-identical
//!   to running alone — otherwise it is deferred (or rejected once its
//!   deferral budget is spent). Guaranteed tenants are never throttled.
//! * **Best-effort classes** split whatever remains by
//!   [`weighted_max_min`] fair share. A tenant's scalar grant fraction is
//!   the tightest ratio of allocation to demand across the tiers it asked
//!   for; fractions below `min_grant` defer rather than thrash.
//!
//! The walk is a pure function of `(ledger capacity, config, requests)`
//! presented in deterministic order, so fleet settlement inherits the
//! workspace determinism contract.

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::DataSize;
use cast_cloud::{weighted_max_min, CapacityLedger, ShareRequest};
use serde::{Deserialize, Serialize};

/// One admission verdict for one tenant's planned epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Admission {
    /// Execute now with `frac` of the demanded capacity (`1.0` =
    /// uncontended, bit-identical to a solo run).
    Admitted {
        /// Granted fraction of demand, in `(0, 1]`.
        frac: f64,
    },
    /// Capacity denied this epoch; the batch re-enters the next boundary.
    Deferred,
    /// Capacity denied for good; the batch is turned away.
    Rejected,
}

impl Admission {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Admission::Admitted { .. } => "admitted",
            Admission::Deferred => "deferred",
            Admission::Rejected => "rejected",
        }
    }

    /// The granted fraction (0.0 unless admitted).
    pub fn granted_frac(&self) -> f64 {
        match self {
            Admission::Admitted { frac } => *frac,
            Admission::Deferred | Admission::Rejected => 0.0,
        }
    }
}

/// Admission-control knobs shared by every shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Smallest fair-share fraction worth executing; anything lower is
    /// deferred instead of running an epoch on starvation rations.
    pub min_grant: f64,
    /// Consecutive deferrals a tenant absorbs before its batch is
    /// rejected outright (backlog cap).
    pub max_deferrals: usize,
    /// Priority at or above which a class is *guaranteed*: full grant or
    /// nothing, never throttled. Defaults to the Interactive class.
    pub guaranteed_priority: u8,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            min_grant: 0.25,
            max_deferrals: 2,
            guaranteed_priority: 2,
        }
    }
}

/// One tenant's seat at the admission table.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionRequest {
    /// Dense fleet tenant index (for reporting only).
    pub tenant: u32,
    /// Service-class priority (higher admits first).
    pub priority: u8,
    /// Fair-share weight within the class.
    pub weight: f64,
    /// Raw per-tier capacity the planned batch wants.
    pub demand: PerTier<DataSize>,
    /// Consecutive deferrals already absorbed.
    pub deferrals: usize,
}

/// Decide one shard-epoch: walk priority classes high→low against the
/// ledger and return one verdict per request, in request order.
/// `requests` must arrive in deterministic (tenant-id) order — ties
/// within a class are broken by position.
pub fn admit_epoch(
    ledger: &mut CapacityLedger,
    cfg: &AdmissionConfig,
    requests: &[AdmissionRequest],
) -> Vec<Admission> {
    let mut verdicts = vec![Admission::Deferred; requests.len()];
    let deny = |r: &AdmissionRequest| {
        if r.deferrals < cfg.max_deferrals {
            Admission::Deferred
        } else {
            Admission::Rejected
        }
    };

    // Distinct priority levels, descending.
    let mut levels: Vec<u8> = requests.iter().map(|r| r.priority).collect();
    levels.sort_unstable_by(|a, b| b.cmp(a));
    levels.dedup();

    for level in levels {
        let class: Vec<usize> = (0..requests.len())
            .filter(|&i| requests[i].priority == level)
            .collect();
        if level >= cfg.guaranteed_priority {
            // Guaranteed: full grant or nothing, first-come by id order.
            for &i in &class {
                let r = &requests[i];
                verdicts[i] = if ledger.commit(&r.demand) {
                    Admission::Admitted { frac: 1.0 }
                } else {
                    deny(r)
                };
            }
        } else {
            // Best effort: weighted max-min over whatever remains.
            let share_reqs: Vec<ShareRequest> = class
                .iter()
                .map(|&i| ShareRequest {
                    weight: requests[i].weight,
                    demand: requests[i].demand,
                })
                .collect();
            let allocs = weighted_max_min(&ledger.available(), &share_reqs);
            for (&i, alloc) in class.iter().zip(allocs.iter()) {
                let r = &requests[i];
                let frac = grant_fraction(&r.demand, alloc);
                if frac >= cfg.min_grant {
                    // Book what the allocator set aside, capped by the
                    // allocation so float noise in a snapped full grant
                    // cannot over-commit the pool.
                    let grant = PerTier::from_fn(|t| {
                        DataSize::from_gb((r.demand.get(t).gb() * frac).min(alloc.get(t).gb()))
                    });
                    let committed = ledger.commit(&grant);
                    debug_assert!(committed, "fair-share grant must fit");
                    verdicts[i] = Admission::Admitted { frac };
                } else {
                    verdicts[i] = deny(r);
                }
            }
        }
    }
    verdicts
}

/// The scalar grant fraction: the tightest allocation/demand ratio over
/// the tiers actually demanded (1.0 for an empty demand). Fractions
/// within float noise of 1.0 snap to exactly 1.0 — a demand the
/// water-filling allocator met in full must take the full-grant path,
/// which is bit-identical to running alone.
fn grant_fraction(demand: &PerTier<DataSize>, alloc: &PerTier<DataSize>) -> f64 {
    let mut frac = 1.0f64;
    for t in Tier::ALL {
        let d = demand.get(t).gb();
        if d > 0.0 {
            frac = frac.min(alloc.get(t).gb() / d);
        }
    }
    if frac >= 1.0 - 1e-9 {
        1.0
    } else {
        frac.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(v: f64) -> PerTier<DataSize> {
        PerTier::from_fn(|_| DataSize::from_gb(v))
    }

    fn req(tenant: u32, priority: u8, weight: f64, gb: f64, deferrals: usize) -> AdmissionRequest {
        AdmissionRequest {
            tenant,
            priority,
            weight,
            demand: uniform(gb),
            deferrals,
        }
    }

    #[test]
    fn guaranteed_class_gets_full_grants_until_the_pool_runs_dry() {
        let mut ledger = CapacityLedger::new(uniform(100.0));
        let cfg = AdmissionConfig::default();
        let verdicts = admit_epoch(
            &mut ledger,
            &cfg,
            &[
                req(0, 2, 4.0, 60.0, 0),
                req(1, 2, 4.0, 60.0, 0),
                req(2, 2, 4.0, 30.0, 0),
            ],
        );
        assert_eq!(verdicts[0], Admission::Admitted { frac: 1.0 });
        // Tenant 1 does not fit (60 > 40 left) — deferred, never
        // throttled.
        assert_eq!(verdicts[1], Admission::Deferred);
        // Tenant 2 fits in the gap tenant 1 left.
        assert_eq!(verdicts[2], Admission::Admitted { frac: 1.0 });
    }

    #[test]
    fn best_effort_splits_the_leftovers_fairly() {
        let mut ledger = CapacityLedger::new(uniform(100.0));
        let cfg = AdmissionConfig::default();
        let verdicts = admit_epoch(
            &mut ledger,
            &cfg,
            &[
                req(0, 2, 4.0, 60.0, 0),
                // Both want the remaining 40; weights 2:1 ⇒ fracs
                // (26.67/40, 13.33/40) = (0.667, 0.333).
                req(1, 1, 2.0, 40.0, 0),
                req(2, 0, 1.0, 40.0, 0),
            ],
        );
        assert_eq!(verdicts[0], Admission::Admitted { frac: 1.0 });
        // Batch (priority 1) admits before Bursty (priority 0) and takes
        // the whole remainder its demand allows.
        let f1 = verdicts[1].granted_frac();
        assert!(f1 > 0.99, "batch class should get the full remainder: {f1}");
        // Bursty sees nothing left → deferred.
        assert_eq!(verdicts[2], Admission::Deferred);
    }

    #[test]
    fn same_class_contention_splits_by_weight() {
        let mut ledger = CapacityLedger::new(uniform(90.0));
        let cfg = AdmissionConfig::default();
        let verdicts = admit_epoch(
            &mut ledger,
            &cfg,
            &[req(0, 1, 2.0, 90.0, 0), req(1, 1, 1.0, 90.0, 0)],
        );
        let (f0, f1) = (verdicts[0].granted_frac(), verdicts[1].granted_frac());
        assert!((f0 - 2.0 / 3.0).abs() < 1e-6, "{f0}");
        assert!((f1 - 1.0 / 3.0).abs() < 1e-6, "{f1}");
    }

    #[test]
    fn starvation_rations_defer_then_reject() {
        let mut ledger = CapacityLedger::new(uniform(10.0));
        let cfg = AdmissionConfig::default();
        // 10 GB pool, 100 GB ask → frac 0.1 < min_grant 0.25.
        let fresh = admit_epoch(&mut ledger, &cfg, &[req(0, 0, 1.0, 100.0, 0)]);
        assert_eq!(fresh[0], Admission::Deferred);
        ledger.release_all();
        let exhausted = admit_epoch(&mut ledger, &cfg, &[req(0, 0, 1.0, 100.0, 2)]);
        assert_eq!(exhausted[0], Admission::Rejected);
    }

    #[test]
    fn empty_demand_is_admitted_in_full() {
        let mut ledger = CapacityLedger::new(uniform(10.0));
        let cfg = AdmissionConfig::default();
        let verdicts = admit_epoch(&mut ledger, &cfg, &[req(0, 0, 1.0, 0.0, 0)]);
        assert_eq!(verdicts[0], Admission::Admitted { frac: 1.0 });
    }

    #[test]
    fn labels_round_trip() {
        assert_eq!(Admission::Admitted { frac: 0.5 }.label(), "admitted");
        assert_eq!(Admission::Deferred.label(), "deferred");
        assert_eq!(Admission::Rejected.label(), "rejected");
        assert_eq!(Admission::Rejected.granted_frac(), 0.0);
    }
}
