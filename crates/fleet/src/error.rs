//! Unified error type for fleet serving.

use cast_runtime::RuntimeError;
use cast_workload::WorkloadError;

/// Anything that can go wrong while serving a tenant fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A tenant's epoch loop failed (solver, simulator or provisioning).
    Runtime(RuntimeError),
    /// A tenant's arrival stream could not be generated.
    Workload(WorkloadError),
    /// The fleet configuration is unusable.
    Config(&'static str),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Runtime(e) => write!(f, "fleet tenant runtime error: {e}"),
            FleetError::Workload(e) => write!(f, "fleet workload error: {e}"),
            FleetError::Config(what) => write!(f, "fleet configuration error: {what}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Runtime(e) => Some(e),
            FleetError::Workload(e) => Some(e),
            FleetError::Config(_) => None,
        }
    }
}

impl From<RuntimeError> for FleetError {
    fn from(e: RuntimeError) -> Self {
        FleetError::Runtime(e)
    }
}

impl From<WorkloadError> for FleetError {
    fn from(e: WorkloadError) -> Self {
        FleetError::Workload(e)
    }
}
