//! Incremental plan evaluation — the annealer's hot path.
//!
//! [`evaluate`](crate::objective::evaluate) re-derives everything from
//! scratch: it walks the plan's `BTreeMap`, re-aggregates per-tier raw
//! demand (with the Eq. 7 reuse discount), re-rounds provisioned volumes
//! and re-runs the spline-backed `REG(·)` estimator for *every* job — on
//! every one of the ~12k neighbours a solve visits. [`IncrementalEval`]
//! keeps that state alive between neighbours instead:
//!
//! * per-job inputs to the Eq. 3/Eq. 6 aggregation (footprint,
//!   intermediate bytes, backing-store bytes) are precomputed once, so raw
//!   per-tier demand is re-derived from flat arrays with no map lookups or
//!   profile dereferences — and in *exactly* the floating-point operation
//!   order of [`TieringPlan::capacities`], keeping scores bit-identical;
//! * a per-job **time ledger** remembers the last scoring key each job
//!   was scored at; a one-job move changes at most a handful of tiers'
//!   rounded capacities, so jobs whose key is unchanged reuse their
//!   ledger entry without touching the estimator;
//! * a **memo cache** keyed by `(job class, tier, effective per-VM
//!   capacity)` absorbs job duplication — jobs with identical
//!   `(app, input, maps, reduces)`, the whole of what `REG` reads from a
//!   job, share one cache row — and the estimator's capacity
//!   saturation: a tier's total only reaches `REG` through
//!   [`per_vm_capacity`], which rounds volume-granular tiers to whole
//!   volumes, and through the profiled [`CapacityCurve`], which
//!   extrapolates flat outside its knot domain (and staging throughput,
//!   which caps at `max_volumes`). Clamping the per-VM capacity into
//!   that effective domain per `(class, tier)` makes every total on the
//!   saturated plateau hit the same cache row, so the continuous stream
//!   of fresh tier totals an annealing trajectory produces costs almost
//!   no estimator calls.
//!
//! [`CapacityCurve`]: cast_estimator::model::CapacityCurve
//!
//! The full `evaluate()` stays the oracle: `REG` is a pure function of
//! `(job, tier, capacity)` and the aggregation replays the oracle's
//! operation order, so [`IncrementalEval::score`] is bit-for-bit equal to
//! `evaluate(&self.to_plan(), ctx)?.utility` (property-tested in
//! `tests/properties.rs`).

use std::collections::HashMap;

use cast_cloud::scaling::ScalingModel;
use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{DataSize, Duration};
use cast_estimator::regression::per_vm_capacity;
use cast_estimator::PhaseBw;
use cast_workload::job::{Job, JobId};
use cast_workload::{splitmix64, WorkloadSpec};

use crate::error::SolverError;
use crate::objective::{provision_round, EvalContext};
use crate::plan::{Assignment, TieringPlan};

/// The solver's job equivalence class: the whole of what `REG(·)` — and
/// therefore the objective — reads from a job. Jobs with equal keys are
/// interchangeable to the estimator; [`IncrementalEval`] memoises on this
/// key, and fleet-level solve dedup reuses the same notion of sameness.
pub fn job_class_key(job: &Job) -> (cast_workload::AppKind, u64, usize, usize) {
    (job.app, job.input.bytes().to_bits(), job.maps, job.reduces)
}

/// Position-sensitive 64-bit digest of everything a solve reads from a
/// spec: each job's [`job_class_key`] and the *rank* of its dataset among
/// the spec's sorted distinct dataset ids (raw `DatasetId` values are
/// renumbering noise — only the grouping structure matters), the dataset
/// sizes in rank order, the app profiles in first-use order, and the
/// reuse-awareness flag. Two specs with equal signatures present the
/// annealer with isomorphic search landscapes: same job count, same
/// per-position estimator behaviour, same reuse-group discounts — so a
/// seed-matched solve of one is positionally valid for the other.
/// Callers that fan a solve out across specs must still compare the
/// underlying inputs (this is a digest, not a proof).
pub fn class_signature(spec: &WorkloadSpec, reuse_aware: bool) -> u64 {
    let mut ds: Vec<cast_workload::DatasetId> = spec.datasets.iter().map(|d| d.id).collect();
    ds.sort_unstable();
    ds.dedup();
    let mut h = splitmix64(0x5016_C1A5 ^ reuse_aware as u64);
    let mut apps: Vec<cast_workload::AppKind> = Vec::new();
    for job in &spec.jobs {
        h = splitmix64(h ^ job.class_bits());
        let rank = ds.binary_search(&job.dataset).unwrap_or(usize::MAX) as u64;
        h = splitmix64(h ^ rank);
        if !apps.contains(&job.app) {
            apps.push(job.app);
        }
    }
    for id in &ds {
        let size = spec.dataset(*id).map(|d| d.size.bytes()).unwrap_or(0.0);
        h = splitmix64(h ^ size.to_bits());
    }
    for app in apps {
        let p = spec.profiles.get(app);
        h = splitmix64(h ^ p.map_selectivity.to_bits());
        h = splitmix64(h ^ p.output_selectivity.to_bits());
        h = splitmix64(h ^ p.map_rate.mb_per_sec().to_bits());
        h = splitmix64(h ^ p.reduce_rate.mb_per_sec().to_bits());
    }
    h
}

/// Cache-effectiveness counters for one [`IncrementalEval`] lifetime.
///
/// Kept as plain integers (no atomics, no collector indirection) because a
/// rescore touches one of them per job; the annealer rolls them up into
/// its observability counters once per chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Job rescored at an unchanged `(tier, capacity)` key — no cache
    /// scan, no estimator work.
    pub ledger_hits: u64,
    /// Runtime found in the `(job class, tier)` memo row.
    pub memo_hits: u64,
    /// Memo miss whose spline bandwidths were still shared via the
    /// per-application bandwidth memo (only phase arithmetic re-ran).
    pub bw_hits: u64,
    /// Full miss: spline evaluation plus phase arithmetic.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.ledger_hits + self.memo_hits + self.bw_hits + self.misses
    }
}

/// Ledger key: the inputs that determine one job's `REG` runtime.
type TimeKey = (u8, u64);

/// Sentinel that never matches a real `(tier-index, capacity-bits)` key.
const NO_KEY: TimeKey = (u8::MAX, u64::MAX);

/// Mutable evaluation state for one plan under one [`EvalContext`].
#[derive(Debug, Clone)]
pub struct IncrementalEval<'a> {
    ctx: &'a EvalContext<'a>,
    /// Position of each job in `ctx.spec.jobs` (the aggregation order).
    index: HashMap<JobId, usize>,
    /// Current assignment per job, in spec order.
    assignments: Vec<Assignment>,
    /// `inputᵢ + interᵢ + outputᵢ` per job (the Eq. 3 floor).
    footprint: Vec<DataSize>,
    /// `interᵢ` per job (moved to the persSSD scratch for objStore jobs).
    inter: Vec<DataSize>,
    /// `inputᵢ + outputᵢ` per job (backing objStore bytes for ephSSD jobs).
    in_out: Vec<DataSize>,
    /// Reuse groups as `(dataset size, member indices)`, in
    /// [`WorkloadSpec::reuse_groups`] order (empty when reuse is off).
    groups: Vec<(DataSize, Vec<usize>)>,
    /// Last-scored `(tier, capacity)` key per job.
    ledger_key: Vec<TimeKey>,
    /// Runtime at `ledger_key` per job.
    ledger: Vec<Duration>,
    /// Equivalence class of each job: jobs with identical
    /// `(app, input, maps, reduces)` are indistinguishable to `REG`.
    class: Vec<usize>,
    /// Application index (into the distinct-app tables below) per class.
    class_app: Vec<usize>,
    /// Per-(app, tier) clamp bounds for the scoring key: the profiled
    /// curve's knot domain (flat extrapolation outside it), widened for
    /// volume-granular tiers to the staging-throughput saturation point
    /// (`volume × max_volumes`). Two totals whose clamped per-VM
    /// capacities coincide are bit-identical to `REG`.
    clamp: Vec<[(f64, f64); 4]>,
    /// `REG` results per `(job class, tier)` as `(clamped per-VM
    /// capacity bits, runtime)` rows, most-recently-used first and
    /// bounded at [`MEMO_ROW_CAP`]. An indexed scan of a short
    /// self-organising row beats a hashed map by an order of magnitude
    /// on the one-lookup-per-job cost a neighbour rescore pays.
    memo: Vec<[Vec<(u64, Duration)>; 4]>,
    /// Model-matrix bandwidths per `(app, tier)` at the same clamped
    /// per-VM capacity keys: when a class row misses on a genuinely new
    /// capacity point, classes sharing an application still share the
    /// spline evaluation and only re-run the phase arithmetic.
    bw_memo: Vec<[Vec<(u64, PhaseBw)>; 4]>,
    /// Hit/miss tallies across the three cache levels.
    stats: CacheStats,
}

/// Entries kept per `(job class, tier)` memo row. Eviction only costs a
/// recomputation, so the cap trades a bounded footprint (and bounded scan
/// time on the misses an annealing trajectory's continuous fresh
/// capacity points produce) for occasional extra `REG` calls; saturated
/// plateaus need one entry and reject/restore toggles only a few, so a
/// short row keeps the hits.
const MEMO_ROW_CAP: usize = 8;

impl<'a> IncrementalEval<'a> {
    /// Build evaluation state for `plan`, which must assign every job of
    /// `ctx.spec`.
    pub fn new(ctx: &'a EvalContext<'a>, plan: &TieringPlan) -> Result<Self, SolverError> {
        let spec = ctx.spec;
        let n = spec.jobs.len();
        let mut index = HashMap::with_capacity(n);
        let mut assignments = Vec::with_capacity(n);
        let mut footprint = Vec::with_capacity(n);
        let mut inter = Vec::with_capacity(n);
        let mut in_out = Vec::with_capacity(n);
        let mut class_of: HashMap<(cast_workload::AppKind, u64, usize, usize), usize> =
            HashMap::new();
        let mut app_of: HashMap<cast_workload::AppKind, usize> = HashMap::new();
        let mut apps = Vec::new();
        let mut class = Vec::with_capacity(n);
        let mut class_app = Vec::new();
        for (i, job) in spec.jobs.iter().enumerate() {
            index.insert(job.id, i);
            assignments.push(plan.require(job.id)?);
            let profile = spec.profiles.get(job.app);
            footprint.push(job.footprint(profile));
            inter.push(job.inter(profile));
            in_out.push(job.input + job.output(profile));
            let key = job_class_key(job);
            let next = class_of.len();
            let c = *class_of.entry(key).or_insert(next);
            if c == class_app.len() {
                let next_app = apps.len();
                let a = *app_of.entry(job.app).or_insert(next_app);
                if a == apps.len() {
                    apps.push(job.app);
                }
                class_app.push(a);
            }
            class.push(c);
        }
        let clamp = apps
            .iter()
            .map(|&app| {
                let mut per_tier = [(f64::NEG_INFINITY, f64::INFINITY); 4];
                for tier in Tier::ALL {
                    let Some(curve) = ctx.estimator.matrix.curve(app, tier) else {
                        // Unprofiled pair: no collapse; `REG` errors on
                        // use, exactly as the oracle would.
                        continue;
                    };
                    let knots = curve.capacities();
                    let (lo, hi) = (knots[0], knots[knots.len() - 1]);
                    per_tier[tier.index()] = match ctx.estimator.catalog.service(tier).scaling {
                        // Below the knot domain the curve is flat, but
                        // staging throughput still grows per volume —
                        // and per-VM capacity is already quantized to
                        // whole volumes, so no low clamp is needed.
                        ScalingModel::PerVolume {
                            volume,
                            max_volumes,
                            ..
                        } => (f64::NEG_INFINITY, hi.max(volume.gb() * max_volumes as f64)),
                        _ => (lo, hi),
                    };
                }
                per_tier
            })
            .collect();
        let groups = if ctx.reuse_aware {
            spec.reuse_groups()
                .into_iter()
                .map(|(ds, jobs)| {
                    let size = spec.dataset(ds).expect("validated spec").size;
                    let members = jobs.iter().map(|j| index[j]).collect();
                    (size, members)
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(IncrementalEval {
            ctx,
            index,
            assignments,
            footprint,
            inter,
            in_out,
            groups,
            ledger_key: vec![NO_KEY; n],
            ledger: vec![Duration::ZERO; n],
            memo: vec![Default::default(); class_of.len()],
            bw_memo: vec![Default::default(); apps.len()],
            stats: CacheStats::default(),
            class,
            class_app,
            clamp,
        })
    }

    /// The current assignment of `job`, if it exists in the spec.
    pub fn assignment(&self, job: JobId) -> Option<Assignment> {
        self.index.get(&job).map(|&i| self.assignments[i])
    }

    /// Current assignments in spec order.
    pub fn assignments(&self) -> &[Assignment] {
        &self.assignments
    }

    /// Overwrite every assignment from a spec-ordered snapshot (the
    /// restart loop's "jump back to best" operation).
    pub fn set_all(&mut self, assignments: &[Assignment]) {
        self.assignments.copy_from_slice(assignments);
    }

    /// Apply a batch of assignment changes, pushing the displaced
    /// assignments onto `undo` (in change order) so [`Self::restore`] can
    /// roll the move back.
    pub fn apply(&mut self, changes: &[(JobId, Assignment)], undo: &mut Vec<(JobId, Assignment)>) {
        undo.clear();
        for &(job, a) in changes {
            let i = self.index[&job];
            undo.push((job, self.assignments[i]));
            self.assignments[i] = a;
        }
    }

    /// Roll back a move recorded by [`Self::apply`].
    pub fn restore(&mut self, undo: &[(JobId, Assignment)]) {
        for &(job, a) in undo.iter().rev() {
            self.assignments[self.index[&job]] = a;
        }
    }

    /// Raw per-tier demand, replaying [`TieringPlan::capacities`]'s exact
    /// operation order over the precomputed per-job quantities.
    fn raw_capacities(&self) -> Result<PerTier<DataSize>, SolverError> {
        let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
        for (size, members) in &self.groups {
            // Distinct tiers in first-seen member order (≤ 4 of them).
            let mut tiers = [Tier::EphSsd; 4];
            let mut ntiers = 0;
            for &m in members {
                let t = self.assignments[m].tier;
                if !tiers[..ntiers].contains(&t) {
                    tiers[ntiers] = t;
                    ntiers += 1;
                }
            }
            for &t in &tiers[..ntiers] {
                let members_on_t = members
                    .iter()
                    .filter(|&&m| self.assignments[m].tier == t)
                    .count();
                if members_on_t > 1 {
                    *caps.get_mut(t) -= *size * (members_on_t - 1) as f64;
                }
            }
        }
        for (i, job) in self.ctx.spec.jobs.iter().enumerate() {
            let a = self.assignments[i];
            a.validate(job.id)?;
            let c = self.footprint[i] * a.overprov;
            *caps.get_mut(a.tier) += c;
            match a.tier {
                Tier::ObjStore => {
                    *caps.get_mut(Tier::ObjStore) -= self.inter[i];
                    *caps.get_mut(Tier::PersSsd) += self.inter[i];
                }
                Tier::EphSsd => {
                    *caps.get_mut(Tier::ObjStore) += self.in_out[i];
                }
                _ => {}
            }
        }
        Ok(caps)
    }

    /// Score the current assignments: the Eq. 2 tenant utility,
    /// bit-identical to `evaluate(&self.to_plan(), ctx)?.utility`.
    pub fn score(&mut self) -> Result<f64, SolverError> {
        let raw = self.raw_capacities()?;
        let capacities = provision_round(self.ctx.estimator, &raw);
        // A tier's total reaches `REG` only through its per-VM capacity
        // (volume-rounded on volume-granular tiers), so that — clamped
        // into each class's saturation domain — is the scoring key.
        let est = self.ctx.estimator;
        let mut per_vm = [0.0f64; 4];
        for tier in Tier::ALL {
            per_vm[tier.index()] =
                per_vm_capacity(&est.catalog, tier, *capacities.get(tier), est.cluster.nvm);
        }
        let mut time = Duration::ZERO;
        for (i, job) in self.ctx.spec.jobs.iter().enumerate() {
            let a = self.assignments[i];
            let tier_total = *capacities.get(a.tier);
            let cls = self.class[i];
            let ti = a.tier.index();
            let (lo, hi) = self.clamp[self.class_app[cls]][ti];
            let bits = per_vm[ti].clamp(lo, hi).to_bits();
            let key: TimeKey = (ti as u8, bits);
            let t = if self.ledger_key[i] == key {
                self.stats.ledger_hits += 1;
                self.ledger[i]
            } else {
                let row = &mut self.memo[cls][ti];
                let t = match row.iter().position(|&(c, _)| c == bits) {
                    Some(pos) => {
                        self.stats.memo_hits += 1;
                        // Transpose-to-front: hot capacity points stay at
                        // the head of the scan.
                        row.swap(0, pos);
                        row[0].1
                    }
                    None => {
                        let bw_row = &mut self.bw_memo[self.class_app[cls]][ti];
                        let bw = match bw_row.iter().position(|&(c, _)| c == bits) {
                            Some(pos) => {
                                self.stats.bw_hits += 1;
                                bw_row.swap(0, pos);
                                bw_row[0].1
                            }
                            None => {
                                self.stats.misses += 1;
                                let bw = est.matrix.bandwidths(job.app, a.tier, per_vm[ti])?;
                                if bw_row.len() >= MEMO_ROW_CAP {
                                    bw_row.pop();
                                }
                                bw_row.push((bits, bw));
                                let last = bw_row.len() - 1;
                                bw_row.swap(0, last);
                                bw
                            }
                        };
                        let t = est.reg_with_bw(job, a.tier, tier_total, bw);
                        if row.len() >= MEMO_ROW_CAP {
                            row.pop();
                        }
                        // O(1) front insertion: push, then swap the old
                        // head to the vacated back slot.
                        row.push((bits, t));
                        let last = row.len() - 1;
                        row.swap(0, last);
                        t
                    }
                };
                self.ledger_key[i] = key;
                self.ledger[i] = t;
                t
            };
            time += t;
        }
        Ok(self.ctx.cost.tenant_utility(&capacities, time))
    }

    /// Materialise the current assignments as a [`TieringPlan`].
    pub fn to_plan(&self) -> TieringPlan {
        plan_from_assignments(self.ctx, &self.assignments)
    }

    /// Hit/miss tallies accumulated across every [`Self::score`] call.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct `(job, tier, capacity)` points evaluated so far
    /// (cache diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo
            .iter()
            .map(|rows| rows.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// Build a [`TieringPlan`] from a spec-ordered assignment snapshot.
pub fn plan_from_assignments(ctx: &EvalContext<'_>, assignments: &[Assignment]) -> TieringPlan {
    let mut plan = TieringPlan::new();
    for (job, &a) in ctx.spec.jobs.iter().zip(assignments) {
        plan.assign(job.id, a);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{evaluate, tests::toy_estimator};
    use cast_workload::synth;

    #[test]
    fn matches_oracle_on_fresh_state() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let mut inc = IncrementalEval::new(&ctx, &plan).unwrap();
        let oracle = evaluate(&plan, &ctx).unwrap().utility;
        assert_eq!(inc.score().unwrap().to_bits(), oracle.to_bits());
    }

    #[test]
    fn apply_restore_roundtrips() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = TieringPlan::uniform(&spec, Tier::PersHdd);
        let mut inc = IncrementalEval::new(&ctx, &plan).unwrap();
        let before = inc.score().unwrap();
        let job = spec.jobs[0].id;
        let mut undo = Vec::new();
        inc.apply(
            &[(
                job,
                Assignment {
                    tier: Tier::EphSsd,
                    overprov: 4.0,
                },
            )],
            &mut undo,
        );
        let moved = inc.score().unwrap();
        let moved_oracle = evaluate(&inc.to_plan(), &ctx).unwrap().utility;
        assert_eq!(moved.to_bits(), moved_oracle.to_bits());
        inc.restore(&undo);
        assert_eq!(inc.score().unwrap().to_bits(), before.to_bits());
        assert_eq!(inc.to_plan(), plan);
    }

    #[test]
    fn memo_absorbs_quantized_capacity_space() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let mut inc = IncrementalEval::new(&ctx, &plan).unwrap();
        inc.score().unwrap();
        let after_first = inc.memo_len();
        // Toggle one job back and forth: the revisited states must not
        // grow the memo.
        let job = spec.jobs[0].id;
        let original = inc.assignment(job).unwrap();
        let mut undo = Vec::new();
        for _ in 0..8 {
            inc.apply(
                &[(
                    job,
                    Assignment {
                        tier: Tier::PersHdd,
                        overprov: 2.0,
                    },
                )],
                &mut undo,
            );
            inc.score().unwrap();
            inc.restore(&undo);
            inc.score().unwrap();
        }
        assert_eq!(inc.assignment(job), Some(original));
        let grown = inc.memo_len() - after_first;
        // One new (tier, capacity) point per affected tier on the first
        // toggle; every later toggle hits the cache.
        assert!(grown <= spec.jobs.len() * 2, "memo grew by {grown}");
    }
}
