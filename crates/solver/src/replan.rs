//! Simulation-backed candidate scoring for live replanning.
//!
//! The annealer scores plans through the estimator (Eq. 4); this module
//! scores them by *simulating* them against the batch — either from a
//! cold restart per candidate or by forking a live mid-stream engine
//! ([`cast_sim::whatif`]). The two backends are byte-identical by fork
//! equivalence, so [`CandidateScoring::SimCold`] and
//! [`CandidateScoring::ForkLive`] commit the same winner; fork-live just
//! pays for the shared prefix once instead of once per candidate.
//!
//! The candidate slate here is deliberately simple — the committed plan
//! plus one uniform redirect per tier — because the what-if question at
//! a replan point is coarse: "is there a tier the still-waiting jobs
//! would rather be on, given what is actually in flight?".

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;
use cast_sim::config::SimConfig;
use cast_sim::engine::Engine;
use cast_sim::error::SimError;
use cast_sim::jobrun::JobRun;
use cast_sim::metrics::SimReport;
use cast_sim::placement::JobPlacement;
use cast_sim::whatif::{pick_winner, score_cold, score_forked, CandidateOverride};
use cast_workload::spec::WorkloadSpec;

/// How an epoch's candidate plans are scored at the replan point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateScoring {
    /// Estimator-only (Eq. 4) scoring — the original behaviour; the
    /// simulator runs once, on the committed plan.
    #[default]
    Analytic,
    /// Simulate every candidate from the epoch boundary: one fresh
    /// engine per candidate re-runs the shared prefix up to the replan
    /// horizon before redirecting still-waiting jobs.
    SimCold,
    /// Simulate the shared prefix once, snapshot the live engine at the
    /// replan horizon, and fork one engine per candidate
    /// ([`cast_sim::EngineSnapshot::fork`]). Byte-identical decisions to
    /// [`CandidateScoring::SimCold`] at a fraction of the work.
    ForkLive,
}

impl CandidateScoring {
    /// Short label for tables and result files.
    pub fn label(&self) -> &'static str {
        match self {
            CandidateScoring::Analytic => "analytic",
            CandidateScoring::SimCold => "sim-cold",
            CandidateScoring::ForkLive => "fork-live",
        }
    }

    /// Whether this mode scores candidates by simulation at all.
    pub fn simulated(&self) -> bool {
        *self != CandidateScoring::Analytic
    }
}

/// The committed plan's slate of what-if alternatives: index 0 is the
/// committed plan itself (no overrides), followed by one uniform
/// redirect of every job to each tier of `tiers`, in order. Callers
/// restrict `tiers` to services the epoch actually provisioned — a
/// redirect onto an unprovisioned tier has zero bandwidth and can only
/// stall. Overrides only take effect on jobs still waiting at the
/// replan horizon, so the redirects answer "move everything not yet
/// started to tier t".
pub fn candidate_slate(spec: &WorkloadSpec, tiers: &[Tier]) -> Vec<Vec<CandidateOverride>> {
    let mut slate = vec![Vec::new()];
    for &tier in tiers {
        slate.push(
            spec.jobs
                .iter()
                .map(|j| CandidateOverride {
                    job: j.id,
                    placement: JobPlacement::all_on(tier),
                })
                .collect(),
        );
    }
    slate
}

/// Outcome of a simulation-backed replan: which candidate won and its
/// full-run report (the epoch's committed result — no re-simulation
/// needed after the decision).
#[derive(Debug, Clone)]
pub struct ReplanDecision {
    /// Winning candidate index into the slate (0 = the committed plan).
    pub winner: usize,
    /// The winner's complete simulation report.
    pub report: SimReport,
}

/// Score `candidates` over the prepared `runs` and commit the winner
/// (smallest makespan, ties to the lowest index). `horizon` is the
/// replan point in simulated seconds from the epoch boundary; `workers`
/// fans candidates out through [`cast_sim::par::run_indexed`], so the
/// result is identical for any worker count.
///
/// # Panics
///
/// If `mode` is [`CandidateScoring::Analytic`] (nothing to simulate) or
/// `candidates` is empty.
pub fn score_candidates(
    mode: CandidateScoring,
    cfg: &SimConfig,
    runs: Vec<JobRun>,
    candidates: &[Vec<CandidateOverride>],
    horizon: f64,
    workers: usize,
) -> Result<ReplanDecision, SimError> {
    let reports = match mode {
        CandidateScoring::Analytic => {
            panic!("score_candidates needs a simulated scoring mode")
        }
        CandidateScoring::SimCold => score_cold(cfg, &runs, candidates, horizon, workers)?,
        CandidateScoring::ForkLive => {
            let mut live = Engine::new(cfg, runs);
            live.run_until(horizon)?;
            let snapshot = live.snapshot();
            score_forked(&snapshot, candidates, workers)?
        }
    };
    let winner = pick_winner(&reports).expect("non-empty candidate slate");
    let report = reports
        .into_iter()
        .nth(winner)
        .expect("winner indexes reports");
    Ok(ReplanDecision { winner, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::PerTier;
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_sim::placement::PlacementMap;
    use cast_sim::prepare_runs;
    use cast_workload::synth;

    fn setup() -> (WorkloadSpec, SimConfig, Vec<JobRun>) {
        let spec = synth::workflow_suite(0xD1CE);
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), Tier::PersHdd);
        let agg = PerTier::from_fn(|_| DataSize::from_gb(4000.0));
        let mut cfg = SimConfig::with_aggregate_capacity(Catalog::aws_like(), 8, &agg).unwrap();
        cfg.jitter = 0.0;
        let runs = prepare_runs(&spec, &placements, &[], &cfg).unwrap();
        (spec, cfg, runs)
    }

    #[test]
    fn slate_leads_with_the_committed_plan() {
        let (spec, _, _) = setup();
        let slate = candidate_slate(&spec, &Tier::ALL);
        assert_eq!(slate.len(), 1 + Tier::ALL.len());
        assert!(slate[0].is_empty(), "index 0 is the no-redirect candidate");
        assert!(slate[1..].iter().all(|c| c.len() == spec.jobs.len()));
    }

    #[test]
    fn cold_and_fork_live_commit_the_same_winner() {
        let (spec, cfg, runs) = setup();
        let slate = candidate_slate(&spec, &[Tier::PersHdd, Tier::PersSsd, Tier::EphSsd]);
        let cold = score_candidates(
            CandidateScoring::SimCold,
            &cfg,
            runs.clone(),
            &slate,
            40.0,
            2,
        )
        .unwrap();
        let fork =
            score_candidates(CandidateScoring::ForkLive, &cfg, runs, &slate, 40.0, 2).unwrap();
        assert_eq!(cold.winner, fork.winner);
        assert_eq!(
            serde_json::to_string(&cold.report).unwrap(),
            serde_json::to_string(&fork.report).unwrap()
        );
    }

    #[test]
    fn labels_and_default() {
        assert_eq!(CandidateScoring::default(), CandidateScoring::Analytic);
        assert!(!CandidateScoring::Analytic.simulated());
        assert!(CandidateScoring::ForkLive.simulated());
        assert_eq!(CandidateScoring::SimCold.label(), "sim-cold");
        assert_eq!(CandidateScoring::ForkLive.label(), "fork-live");
    }
}
