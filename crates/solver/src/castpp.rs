//! CAST++: reuse- and workflow-aware tiering (§4.3).
//!
//! CAST++ extends the basic solver with two enhancements:
//!
//! 1. **Data-reuse awareness** — jobs sharing an input dataset are pinned
//!    to one tier (Eq. 7) and the shared bytes are charged once. This is
//!    handled by running the annealer with
//!    [`EvalContext::with_reuse_awareness`].
//! 2. **Workflow awareness** — each workflow is optimised separately to
//!    *minimise monetary cost subject to its deadline* (Eq. 8–9), with the
//!    Eq. 10 capacity discount for same-tier hand-offs, cross-tier
//!    transfer times charged on DAG edges, and neighbour exploration
//!    following a depth-first traversal of the DAG.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{DataSize, Duration, Money};
use cast_obs::Observe;
use cast_workload::job::JobId;
use cast_workload::workflow::Workflow;

use crate::anneal::{AnnealConfig, Annealer};
use crate::diagnostics::SolveDiagnostics;
use crate::error::SolverError;
use crate::greedy::{greedy_plan, GreedyMode};
use crate::neighbor::NeighborGen;
use crate::objective::{evaluate, provision_round, EvalContext, PlanEval};
use crate::plan::TieringPlan;

/// CAST++ parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CastPlusPlusConfig {
    /// Annealer settings for the independent-jobs utility solve.
    pub utility_anneal: AnnealConfig,
    /// Annealer settings for each per-workflow cost solve.
    pub workflow_anneal: AnnealConfig,
    /// Fraction of each deadline the solver actually plans to (planning
    /// slack absorbing the estimator's single-digit-percent error; a plan
    /// that is predicted to finish exactly at the deadline would miss it
    /// half the time).
    pub deadline_margin: f64,
}

impl Default for CastPlusPlusConfig {
    fn default() -> Self {
        CastPlusPlusConfig {
            utility_anneal: AnnealConfig::default(),
            workflow_anneal: AnnealConfig {
                iterations: 2500,
                ..AnnealConfig::default()
            },
            deadline_margin: 0.94,
        }
    }
}

/// Evaluation of one workflow under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkflowEval {
    /// Estimated completion time: Σ job runtimes + Σ cross-tier transfer
    /// times (Eq. 9, with workflows executing their jobs back-to-back).
    pub time: Duration,
    /// Total monetary cost (Eq. 8).
    pub cost: Money,
    /// Whether the deadline is met.
    pub feasible: bool,
}

/// Outcome of a CAST++ solve.
#[derive(Debug, Clone)]
pub struct CastPlusPlusOutcome {
    /// Combined plan for all jobs (independent + workflow members).
    pub plan: TieringPlan,
    /// Utility evaluation over the whole workload.
    pub eval: PlanEval,
    /// Per-workflow evaluations in spec order.
    pub workflows: Vec<(cast_workload::WorkflowId, WorkflowEval)>,
    /// Diagnostics of the utility solve.
    pub diagnostics: SolveDiagnostics,
}

/// The CAST++ solver.
#[derive(Debug, Clone)]
pub struct CastPlusPlus {
    cfg: CastPlusPlusConfig,
    obs: cast_obs::Collector,
}

/// The attached collector is forwarded to the utility and per-workflow
/// annealers. Results stay bit-identical.
impl cast_obs::Observe for CastPlusPlus {
    fn collector_slot(&mut self) -> &mut cast_obs::Collector {
        &mut self.obs
    }
}

impl CastPlusPlus {
    /// Create with the given parameters.
    pub fn new(cfg: CastPlusPlusConfig) -> CastPlusPlus {
        CastPlusPlus {
            cfg,
            obs: cast_obs::Collector::noop(),
        }
    }

    /// Run the full CAST++ pipeline over `ctx.spec`.
    pub fn solve(&self, ctx: &EvalContext<'_>) -> Result<CastPlusPlusOutcome, SolverError> {
        let ctx = ctx.clone().with_reuse_awareness();
        // Phase 1: utility-optimise everything with reuse awareness,
        // starting from the best of the greedy and uniform seeds.
        let mut candidates = vec![greedy_plan(&ctx, GreedyMode::OverProvisioned)?];
        for tier in cast_cloud::tier::Tier::ALL {
            candidates.push(TieringPlan::uniform(ctx.spec, tier));
        }
        let mut init: Option<(f64, TieringPlan)> = None;
        for plan in candidates {
            let u = evaluate(&plan, &ctx)?.utility;
            if init.as_ref().is_none_or(|(bu, _)| u > *bu) {
                init = Some((u, plan));
            }
        }
        let init = init.expect("non-empty candidate set").1;
        let utility_out = Annealer::new(self.cfg.utility_anneal)
            .observe(self.obs.clone())
            .solve(&ctx, init)?;
        let mut plan = utility_out.plan;

        // Phase 2: re-optimise each workflow for cost-under-deadline,
        // overriding the utility solution for its member jobs.
        let mut workflows = Vec::new();
        for wf in &ctx.spec.workflows {
            let wf_plan = self.solve_workflow(&ctx, wf, &plan)?;
            for &j in &wf.jobs {
                plan.assign(j, wf_plan.require(j)?);
            }
            let eval = evaluate_workflow_global(&ctx, wf, &plan)?;
            workflows.push((wf.id, eval));
        }

        let eval = evaluate(&plan, &ctx)?;
        Ok(CastPlusPlusOutcome {
            plan,
            eval,
            workflows,
            diagnostics: utility_out.diagnostics,
        })
    }

    /// Optimise one workflow: minimise cost subject to the deadline,
    /// exploring neighbours in DFS order over the DAG.
    pub fn solve_workflow(
        &self,
        ctx: &EvalContext<'_>,
        wf: &Workflow,
        seed_plan: &TieringPlan,
    ) -> Result<TieringPlan, SolverError> {
        // Mutate only this workflow's jobs, but evaluate against the
        // whole plan so bandwidth and cost reflect the pooled deployment.
        let init = seed_plan.clone();
        let dfs = wf.dfs_order();
        let cursor: Vec<usize> = (0..dfs.len()).collect();
        let jobs: Vec<JobId> = dfs;
        let gen = NeighborGen::new(jobs, Vec::new());
        let annealer = Annealer::new(self.cfg.workflow_anneal).observe(self.obs.clone());
        let planning_deadline = wf.deadline * self.cfg.deadline_margin;
        // Score-only closure: the annealer materialises nothing per
        // neighbour; callers needing a full evaluation run it once on the
        // winning plan.
        let out = annealer.solve_with(
            init,
            &gen,
            |plan| {
                let mut weval = evaluate_workflow_global(ctx, wf, plan)?;
                weval.feasible = weval.time <= planning_deadline;
                Ok(workflow_score(&weval, planning_deadline))
            },
            Some(&cursor),
        )?;
        Ok(out.plan)
    }
}

/// Deadline-aware score: feasible plans are ranked by cheapness, infeasible
/// ones by (negated) lateness so the search is pulled toward feasibility.
pub fn workflow_score(eval: &WorkflowEval, deadline: Duration) -> f64 {
    if eval.feasible {
        1.0 / eval.cost.dollars().max(1e-9)
    } else {
        // Rank infeasible plans by lateness, with a light cost tie-break so
        // the search does not burn money on over-provisioning that buys no
        // speed when no feasible plan exists.
        -(eval.time.secs() / deadline.secs().max(1e-9)) - 0.02 * eval.cost.dollars()
    }
}

/// Eq. 10: capacity for workflow members, discounting same-tier hand-offs.
///
/// A job charges its input only when it is a root or no parent shares its
/// tier (otherwise the bytes are already there as the parent's output);
/// it charges its output when it is a sink or some child shares its tier.
pub fn workflow_capacities(
    ctx: &EvalContext<'_>,
    wf: &Workflow,
    plan: &TieringPlan,
) -> Result<PerTier<DataSize>, SolverError> {
    let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
    for &jid in &wf.jobs {
        let a = plan.require(jid)?;
        a.validate(jid)?;
        let job = ctx.spec.job(jid).ok_or(SolverError::Unassigned(jid.0))?;
        let profile = ctx.spec.profiles.get(job.app);
        let parents = wf.parents(jid);
        let children = wf.children(jid);
        let parent_same_tier = parents
            .iter()
            .any(|&p| plan.get(p).map(|x| x.tier) == Some(a.tier));
        let child_same_tier = children
            .iter()
            .any(|&c| plan.get(c).map(|x| x.tier) == Some(a.tier));
        let mut c = job.inter(profile);
        if parents.is_empty() || !parent_same_tier {
            c += job.input;
        }
        if children.is_empty() || child_same_tier {
            c += job.output(profile);
        }
        c = c * a.overprov;
        *caps.get_mut(a.tier) += c;
        match a.tier {
            Tier::ObjStore => {
                let inter = job.inter(profile);
                *caps.get_mut(Tier::ObjStore) -= inter;
                *caps.get_mut(Tier::PersSsd) += inter;
            }
            Tier::EphSsd => {
                if parents.is_empty() {
                    *caps.get_mut(Tier::ObjStore) += job.input;
                }
                if children.is_empty() {
                    *caps.get_mut(Tier::ObjStore) += job.output(profile);
                }
            }
            _ => {}
        }
    }
    Ok(provision_round(ctx.estimator, &caps))
}

/// Eq. 9: a workflow's estimated completion time and cost under `plan`,
/// with the Eq. 10 per-workflow capacity accounting (used for analysing a
/// workflow in isolation; the solver itself uses
/// [`evaluate_workflow_global`], which matches deployment-level pooling).
pub fn evaluate_workflow(
    ctx: &EvalContext<'_>,
    wf: &Workflow,
    plan: &TieringPlan,
) -> Result<WorkflowEval, SolverError> {
    let caps = workflow_capacities(ctx, wf, plan)?;
    let time = workflow_time(ctx, wf, plan, &caps)?;
    let cost = ctx.cost.breakdown(&caps, time).total();
    Ok(WorkflowEval {
        time,
        cost,
        feasible: time <= wf.deadline,
    })
}

/// Like [`evaluate_workflow`] but with bandwidth and cost accounted against
/// the *whole plan's* provisioned capacities — matching deployment, where a
/// tier's volumes are pooled across the workload for its full duration.
/// `plan` must cover every job in the spec.
pub fn evaluate_workflow_global(
    ctx: &EvalContext<'_>,
    wf: &Workflow,
    plan: &TieringPlan,
) -> Result<WorkflowEval, SolverError> {
    let caps = provision_round(ctx.estimator, &plan.capacities(ctx.spec, ctx.reuse_aware)?);
    let time = workflow_time(ctx, wf, plan, &caps)?;
    let cost = ctx.cost.breakdown(&caps, time).total();
    Ok(WorkflowEval {
        time,
        cost,
        feasible: time <= wf.deadline,
    })
}

/// Σ member runtimes + Σ cross-tier transfer times under the given
/// per-tier capacities (the Eq. 9 serialized execution model, with the
/// deployment's pipelined hand-off semantics).
fn workflow_time(
    ctx: &EvalContext<'_>,
    wf: &Workflow,
    plan: &TieringPlan,
    caps: &PerTier<DataSize>,
) -> Result<Duration, SolverError> {
    let est = ctx.estimator;
    let mut time = Duration::ZERO;
    for &jid in &wf.jobs {
        let a = plan.require(jid)?;
        let job = ctx.spec.job(jid).ok_or(SolverError::Unassigned(jid.0))?;
        let mut phases = est.phases(job, a.tier, *caps.get(a.tier))?;
        // Mirror the deployment's hand-off semantics: an interior
        // ephemeral job receives its dominant parent's output by
        // pipelining but must still download the *fresh* remainder of its
        // input from the backing store; interior outputs are pipelined to
        // the consumer (charged as edge transfers below), so only sinks
        // upload.
        if a.tier == Tier::EphSsd {
            let parents = wf.parents(jid);
            if !parents.is_empty() {
                let dom_out = parents
                    .iter()
                    .map(|&p| {
                        let pj = ctx.spec.job(p).expect("validated member");
                        pj.output(ctx.spec.profiles.get(pj.app)).bytes()
                    })
                    .fold(0.0_f64, f64::max);
                let fresh = DataSize::from_bytes((job.input.bytes() - dom_out).max(0.0));
                phases.stage_in = est.transfer(
                    fresh,
                    ctx.estimator.catalog.backing_store(),
                    Tier::EphSsd,
                    *caps.get(Tier::EphSsd),
                );
            }
            if !wf.children(jid).is_empty() {
                phases.stage_out = Duration::ZERO;
            }
        }
        time += phases.total();
    }
    for &(parent, child) in &wf.edges {
        let pa = plan.require(parent)?;
        let ca = plan.require(child)?;
        if pa.tier != ca.tier {
            let pjob = ctx
                .spec
                .job(parent)
                .ok_or(SolverError::Unassigned(parent.0))?;
            let bytes = pjob.output(ctx.spec.profiles.get(pjob.app));
            let scaled = *caps.get(if ca.tier.scales_with_capacity() {
                ca.tier
            } else {
                pa.tier
            });
            time += est.transfer(bytes, pa.tier, ca.tier, scaled);
        }
    }
    Ok(time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::tests::toy_estimator;
    use cast_workload::synth;

    fn quick_cfg() -> CastPlusPlusConfig {
        CastPlusPlusConfig {
            utility_anneal: AnnealConfig {
                iterations: 400,
                ..AnnealConfig::default()
            },
            workflow_anneal: AnnealConfig {
                iterations: 600,
                ..AnnealConfig::default()
            },
            deadline_margin: 0.94,
        }
    }

    #[test]
    fn fig4_workflow_solved_within_deadline() {
        let spec = synth::fig4_workflow();
        let est = toy_estimator(10);
        let ctx = EvalContext::new(&est, &spec);
        let out = CastPlusPlus::new(quick_cfg()).solve(&ctx).unwrap();
        assert_eq!(out.workflows.len(), 1);
        let (_, weval) = out.workflows[0];
        assert!(
            weval.feasible,
            "8000 s deadline should be satisfiable: took {}",
            weval.time
        );
        assert_eq!(out.plan.len(), 4);
    }

    #[test]
    fn workflow_solver_prefers_cheaper_feasible_plans() {
        let spec = synth::fig4_workflow();
        let est = toy_estimator(10);
        let ctx = EvalContext::new(&est, &spec);
        let wf = &spec.workflows[0];
        let pp = CastPlusPlus::new(quick_cfg());
        let seed = TieringPlan::uniform(&spec, Tier::PersSsd);
        let solved = pp.solve_workflow(&ctx, wf, &seed).unwrap();
        let solved_eval = evaluate_workflow(&ctx, wf, &solved).unwrap();
        let seed_eval = evaluate_workflow(&ctx, wf, &seed).unwrap();
        if seed_eval.feasible {
            assert!(solved_eval.feasible);
            assert!(solved_eval.cost.dollars() <= seed_eval.cost.dollars() + 1e-12);
        }
    }

    #[test]
    fn same_tier_handoff_discounts_capacity() {
        let spec = synth::fig4_workflow();
        let est = toy_estimator(10);
        let ctx = EvalContext::new(&est, &spec);
        let wf = &spec.workflows[0];
        let uniform = TieringPlan::uniform(&spec, Tier::PersSsd);
        let caps_uniform = workflow_capacities(&ctx, wf, &uniform).unwrap();
        // Independent accounting (Eq. 3) charges every job's input.
        let caps_naive = uniform.capacities(&spec, false).unwrap();
        assert!(
            caps_uniform.get(Tier::PersSsd).gb() < caps_naive.get(Tier::PersSsd).gb(),
            "Eq. 10 must discount same-tier hand-offs: {} vs {}",
            caps_uniform.get(Tier::PersSsd).gb(),
            caps_naive.get(Tier::PersSsd).gb()
        );
    }

    #[test]
    fn cross_tier_edges_cost_transfer_time() {
        let spec = synth::fig4_workflow();
        let est = toy_estimator(10);
        let ctx = EvalContext::new(&est, &spec);
        let wf = &spec.workflows[0];
        let uniform = TieringPlan::uniform(&spec, Tier::PersSsd);
        let mut split = uniform.clone();
        // Move the sink (Join) to a different tier: its two in-edges now
        // pay transfers.
        split.assign(JobId(3), crate::plan::Assignment::exact(Tier::PersHdd));
        let t_uniform = evaluate_workflow(&ctx, wf, &uniform).unwrap().time;
        let t_split = evaluate_workflow(&ctx, wf, &split).unwrap().time;
        assert!(t_split.secs() > t_uniform.secs());
    }

    #[test]
    fn infeasible_scores_below_feasible() {
        let feasible = WorkflowEval {
            time: Duration::from_secs(100.0),
            cost: Money::from_dollars(50.0),
            feasible: true,
        };
        let late = WorkflowEval {
            time: Duration::from_secs(300.0),
            cost: Money::from_dollars(1.0),
            feasible: false,
        };
        let d = Duration::from_secs(200.0);
        assert!(workflow_score(&feasible, d) > workflow_score(&late, d));
        // Lateness is penalised monotonically.
        let later = WorkflowEval {
            time: Duration::from_secs(500.0),
            ..late
        };
        assert!(workflow_score(&late, d) > workflow_score(&later, d));
    }

    #[test]
    fn suite_solve_covers_all_31_jobs() {
        let spec = synth::workflow_suite(5);
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let out = CastPlusPlus::new(quick_cfg()).solve(&ctx).unwrap();
        assert_eq!(out.plan.len(), 31);
        assert_eq!(out.workflows.len(), 5);
    }
}
