//! Plan evaluation: Eq. 2–6.
//!
//! Given a tiering plan, compute the workload's estimated completion time
//! `T = Σᵢ REG(sᵢ, capacity[sᵢ], R̂, L̂ᵢ)` (Eq. 4), the VM cost (Eq. 5),
//! the hourly-billed storage cost (Eq. 6) and the tenant utility
//! `U = (1/T)/($vm+$store)` (Eq. 2).

use serde::{Deserialize, Serialize};

use cast_cloud::cost::{CostBreakdown, CostModel};
use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{DataSize, Duration};
use cast_estimator::Estimator;
use cast_workload::spec::WorkloadSpec;

use crate::error::SolverError;
use crate::plan::TieringPlan;

/// Everything needed to score a plan.
#[derive(Debug, Clone)]
pub struct EvalContext<'a> {
    /// The profiled performance estimator.
    pub estimator: &'a Estimator,
    /// The workload under optimisation.
    pub spec: &'a WorkloadSpec,
    /// Cluster cost model (VM fleet prices + storage prices).
    pub cost: CostModel,
    /// CAST++'s reuse-aware capacity accounting (Eq. 7 discount).
    pub reuse_aware: bool,
}

impl<'a> EvalContext<'a> {
    /// Standard CAST context for the paper's 400-core cluster.
    pub fn new(estimator: &'a Estimator, spec: &'a WorkloadSpec) -> EvalContext<'a> {
        EvalContext {
            cost: CostModel::new(&estimator.catalog, estimator.cluster.nvm),
            estimator,
            spec,
            reuse_aware: false,
        }
    }

    /// Enable CAST++ reuse-aware accounting.
    pub fn with_reuse_awareness(mut self) -> Self {
        self.reuse_aware = true;
        self
    }
}

/// The score card of one plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEval {
    /// Estimated workload completion time (Eq. 4).
    pub time: Duration,
    /// Cost breakdown at that completion time.
    pub cost: CostBreakdown,
    /// Tenant utility (Eq. 2).
    pub utility: f64,
    /// Provisioned capacity per tier after volume-granularity rounding.
    pub capacities: PerTier<DataSize>,
}

/// Per-VM persSSD scratch floor backing object-store placements (GB).
/// Matches the profiling convention and the paper's Fig. 1 setup ("we used
/// a 100 GB persSSD as intermediate data store").
pub const OBJSTORE_SCRATCH_GB_PER_VM: f64 = 100.0;

/// Smallest per-VM block volume a deployment attaches once a tier is used
/// at all (the provider's minimum disk size; GCE persistent disks start at
/// 10 GB). Prevents absurd sliver volumes with near-zero bandwidth.
pub const MIN_BLOCK_GB_PER_VM: f64 = 10.0;

/// Round raw aggregate demands up to provisionable capacities: block tiers
/// are split across VMs and rounded to volume granularity. Workloads that
/// touch the object store get at least the conventional persSSD scratch —
/// without it, a map-heavy job's few gigabytes of intermediate data would
/// be provisioned a near-zero-bandwidth sliver.
pub fn provision_round(estimator: &Estimator, raw: &PerTier<DataSize>) -> PerTier<DataSize> {
    let nvm = estimator.cluster.nvm;
    let mut caps = PerTier::from_fn(|tier| {
        let total = *raw.get(tier);
        if total.is_zero() {
            return DataSize::ZERO;
        }
        match tier {
            Tier::ObjStore => total,
            _ => {
                let per_vm = (total / nvm as f64).max(DataSize::from_gb(MIN_BLOCK_GB_PER_VM));
                estimator.catalog.service(tier).provisionable(per_vm) * nvm as f64
            }
        }
    });
    if !caps.get(Tier::ObjStore).is_zero() {
        let floor = DataSize::from_gb(OBJSTORE_SCRATCH_GB_PER_VM) * nvm as f64;
        *caps.get_mut(Tier::PersSsd) = caps.get(Tier::PersSsd).max(floor);
    }
    caps
}

/// Evaluate a plan (Eq. 2–6).
pub fn evaluate(plan: &TieringPlan, ctx: &EvalContext<'_>) -> Result<PlanEval, SolverError> {
    let raw = plan.capacities(ctx.spec, ctx.reuse_aware)?;
    let capacities = provision_round(ctx.estimator, &raw);

    let mut time = Duration::ZERO;
    for job in &ctx.spec.jobs {
        let a = plan.require(job.id)?;
        let tier_total = *capacities.get(a.tier);
        time += ctx.estimator.reg(job, a.tier, tier_total)?;
    }

    let cost = ctx.cost.breakdown(&capacities, time);
    let utility = ctx.cost.tenant_utility(&capacities, time);
    Ok(PlanEval {
        time,
        cost,
        utility,
        capacities,
    })
}

/// Per-job utility of placing `job` alone on `tier` with factor
/// `overprov` — the `Utility(j, f)` of Algorithm 1 (greedy), which scores
/// jobs in isolation.
pub fn job_utility(
    ctx: &EvalContext<'_>,
    job: &cast_workload::Job,
    tier: Tier,
    overprov: f64,
) -> Result<f64, SolverError> {
    let profile = ctx.spec.profiles.get(job.app);
    let c = job.footprint(profile) * overprov;
    let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
    *caps.get_mut(tier) += c;
    match tier {
        Tier::ObjStore => {
            let inter = job.inter(profile);
            *caps.get_mut(Tier::ObjStore) -= inter;
            *caps.get_mut(Tier::PersSsd) += inter;
        }
        Tier::EphSsd => {
            *caps.get_mut(Tier::ObjStore) += job.input + job.output(profile);
        }
        _ => {}
    }
    let capacities = provision_round(ctx.estimator, &caps);
    let t = ctx.estimator.reg(job, tier, *capacities.get(tier))?;
    Ok(ctx.cost.tenant_utility(&capacities, t))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
    use cast_estimator::mrcute::ClusterSpec;
    use cast_workload::apps::AppKind;
    use cast_workload::profile::ProfileSet;
    use cast_workload::synth;

    /// A deterministic synthetic estimator: bandwidth proportional to
    /// capacity on block tiers, flat elsewhere.
    pub(crate) fn toy_estimator(nvm: usize) -> Estimator {
        let mut matrix = ModelMatrix::new();
        for app in AppKind::ALL {
            for tier in Tier::ALL {
                let samples = match tier {
                    Tier::PersSsd => vec![
                        (
                            50.0,
                            PhaseBw {
                                map: 1.5,
                                shuffle_reduce: 1.2,
                            },
                        ),
                        (
                            200.0,
                            PhaseBw {
                                map: 6.0,
                                shuffle_reduce: 4.8,
                            },
                        ),
                        (
                            800.0,
                            PhaseBw {
                                map: 20.0,
                                shuffle_reduce: 16.0,
                            },
                        ),
                    ],
                    Tier::PersHdd => vec![
                        (
                            50.0,
                            PhaseBw {
                                map: 0.6,
                                shuffle_reduce: 0.5,
                            },
                        ),
                        (
                            200.0,
                            PhaseBw {
                                map: 2.4,
                                shuffle_reduce: 2.0,
                            },
                        ),
                        (
                            800.0,
                            PhaseBw {
                                map: 9.0,
                                shuffle_reduce: 7.5,
                            },
                        ),
                    ],
                    Tier::EphSsd => vec![(
                        375.0,
                        PhaseBw {
                            map: 45.0,
                            shuffle_reduce: 40.0,
                        },
                    )],
                    Tier::ObjStore => vec![(
                        1.0,
                        PhaseBw {
                            map: 16.0,
                            shuffle_reduce: 12.0,
                        },
                    )],
                };
                matrix.insert(app, tier, CapacityCurve::fit(&samples).unwrap());
            }
        }
        Estimator {
            matrix,
            catalog: cast_cloud::Catalog::google_cloud(),
            cluster: ClusterSpec {
                nvm,
                map_slots: 16,
                reduce_slots: 8,
                task_startup_secs: 1.5,
            },
            profiles: ProfileSet::defaults(),
        }
    }

    #[test]
    fn evaluate_uniform_plans_ranks_tiers_sanely() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let ssd = evaluate(&TieringPlan::uniform(&spec, Tier::PersSsd), &ctx).unwrap();
        let hdd = evaluate(&TieringPlan::uniform(&spec, Tier::PersHdd), &ctx).unwrap();
        assert!(ssd.time.secs() < hdd.time.secs(), "SSD must be faster");
        assert!(
            hdd.cost.storage_total().dollars() < ssd.cost.storage_total().dollars(),
            "HDD must be cheaper per stored byte"
        );
    }

    #[test]
    fn utility_is_positive_and_finite() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let eval = evaluate(&TieringPlan::uniform(&spec, Tier::PersSsd), &ctx).unwrap();
        assert!(eval.utility > 0.0 && eval.utility.is_finite());
    }

    #[test]
    fn over_provisioning_trades_cost_for_time() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let exact = evaluate(&TieringPlan::uniform(&spec, Tier::PersSsd), &ctx).unwrap();
        let mut over = TieringPlan::new();
        for j in &spec.jobs {
            over.assign(
                j.id,
                crate::plan::Assignment {
                    tier: Tier::PersSsd,
                    overprov: 4.0,
                },
            );
        }
        let over = evaluate(&over, &ctx).unwrap();
        assert!(over.time.secs() < exact.time.secs());
        assert!(
            over.capacities.get(Tier::PersSsd).gb()
                > 3.0 * exact.capacities.get(Tier::PersSsd).gb()
        );
    }

    #[test]
    fn reuse_awareness_never_hurts_utility() {
        let mut spec = synth::single_job(AppKind::Grep, DataSize::from_gb(100.0));
        let mut j2 = spec.jobs[0];
        j2.id = cast_workload::JobId(1);
        spec.jobs.push(j2);
        let est = toy_estimator(5);
        let base_ctx = EvalContext::new(&est, &spec);
        let aware_ctx = EvalContext::new(&est, &spec).with_reuse_awareness();
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let base = evaluate(&plan, &base_ctx).unwrap();
        let aware = evaluate(&plan, &aware_ctx).unwrap();
        assert!(aware.cost.total().dollars() <= base.cost.total().dollars());
        assert!(aware.utility >= base.utility);
    }

    #[test]
    fn job_utility_prefers_cheap_tier_for_cpu_bound() {
        let spec = synth::single_job(AppKind::KMeans, DataSize::from_gb(100.0));
        let est = toy_estimator(5);
        let ctx = EvalContext::new(&est, &spec);
        let job = &spec.jobs[0];
        // Give the block tiers enough capacity that KMeans is CPU-bound on
        // both; then the cheaper tier must win on utility.
        let u_hdd = job_utility(&ctx, job, Tier::PersHdd, 8.0).unwrap();
        let u_ssd = job_utility(&ctx, job, Tier::PersSsd, 8.0).unwrap();
        // With the toy matrix HDD is 2.2x slower — but 4.25x cheaper.
        // Utility = 1/(T·$) favours HDD unless the slowdown dominates.
        assert!(u_hdd.is_finite() && u_ssd.is_finite());
    }

    #[test]
    fn provision_round_quantizes_ephemeral() {
        let est = toy_estimator(4);
        let mut raw = PerTier::from_fn(|_| DataSize::ZERO);
        *raw.get_mut(Tier::EphSsd) = DataSize::from_gb(100.0);
        let rounded = provision_round(&est, &raw);
        // 25 GB/VM rounds to one 375 GB volume per VM × 4 VMs.
        assert!((rounded.get(Tier::EphSsd).gb() - 1500.0).abs() < 1e-9);
        assert_eq!(*rounded.get(Tier::PersSsd), DataSize::ZERO);
    }
}
