//! Tiering plans: the solver's decision variables.
//!
//! A [`TieringPlan`] maps every job to an [`Assignment`] — a storage
//! service `sᵢ` and an over-provisioning factor that determines `cᵢ`
//! (capacity is expressed relative to the Eq. 3 floor
//! `inputᵢ + interᵢ + outputᵢ`, so the constraint holds by construction).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::DataSize;
use cast_sim::placement::{JobPlacement, PlacementMap};
use cast_workload::job::JobId;
use cast_workload::spec::WorkloadSpec;

use crate::error::SolverError;

/// One job's placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Storage service `sᵢ`.
    pub tier: Tier,
    /// Capacity multiplier: `cᵢ = factor × (inputᵢ + interᵢ + outputᵢ)`.
    /// Must be ≥ 1 (Eq. 3). Values above 1 buy bandwidth on
    /// capacity-scaled tiers (§3.1.2, "Performance Scaling").
    pub overprov: f64,
}

impl Assignment {
    /// Exact-fit assignment on `tier`.
    pub fn exact(tier: Tier) -> Assignment {
        Assignment {
            tier,
            overprov: 1.0,
        }
    }

    /// Validate Eq. 3.
    pub fn validate(&self, job: JobId) -> Result<(), SolverError> {
        if self.overprov < 1.0 || !self.overprov.is_finite() {
            return Err(SolverError::CapacityViolation {
                job: job.0,
                factor: self.overprov,
            });
        }
        Ok(())
    }
}

/// A complete tiering plan (`P̂` of Algorithm 2).
///
/// ```
/// use cast_cloud::Tier;
/// use cast_cloud::units::DataSize;
/// use cast_solver::{Assignment, TieringPlan};
/// use cast_workload::{synth, AppKind, JobId};
///
/// let spec = synth::single_job(AppKind::Sort, DataSize::from_gb(100.0));
/// let mut plan = TieringPlan::uniform(&spec, Tier::PersSsd);
/// plan.assign(JobId(0), Assignment { tier: Tier::EphSsd, overprov: 2.0 });
/// let caps = plan.capacities(&spec, false).unwrap();
/// // Sort's footprint is 3×input; doubled by the factor; plus the
/// // backing object store holds input+output for persistence.
/// assert_eq!(caps.get(Tier::EphSsd).gb().round(), 600.0);
/// assert_eq!(caps.get(Tier::ObjStore).gb().round(), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TieringPlan {
    assignments: BTreeMap<JobId, Assignment>,
}

impl TieringPlan {
    /// Empty plan.
    pub fn new() -> TieringPlan {
        TieringPlan::default()
    }

    /// Every job of `spec` exact-fit on `tier` (the non-tiered baselines
    /// of Fig. 7).
    pub fn uniform(spec: &WorkloadSpec, tier: Tier) -> TieringPlan {
        let mut plan = TieringPlan::new();
        for job in &spec.jobs {
            plan.assign(job.id, Assignment::exact(tier));
        }
        plan
    }

    /// Set a job's assignment.
    pub fn assign(&mut self, job: JobId, a: Assignment) {
        self.assignments.insert(job, a);
    }

    /// Get a job's assignment.
    pub fn get(&self, job: JobId) -> Option<Assignment> {
        self.assignments.get(&job).copied()
    }

    /// Get, or error if unassigned.
    pub fn require(&self, job: JobId) -> Result<Assignment, SolverError> {
        self.get(job).ok_or(SolverError::Unassigned(job.0))
    }

    /// Iterate assignments in job-id order.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, Assignment)> + '_ {
        self.assignments.iter().map(|(&j, &a)| (j, a))
    }

    /// Number of assigned jobs.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// `cᵢ` for one job under `spec`'s profiles.
    pub fn capacity_of(&self, spec: &WorkloadSpec, job: JobId) -> Result<DataSize, SolverError> {
        let a = self.require(job)?;
        let j = spec.job(job).ok_or(SolverError::Unassigned(job.0))?;
        let profile = spec.profiles.get(j.app);
        Ok(j.footprint(profile) * a.overprov)
    }

    /// Aggregate provisioned capacity per tier (the `capacity[f]` of
    /// Eq. 6), applying the paper's conventions:
    ///
    /// * jobs on `objStore` keep intermediate data on a `persSSD` scratch
    ///   volume — that share is charged to `persSSD`;
    /// * jobs on `ephSSD` also hold input+output in the backing object
    ///   store for persistence — charged to `objStore`;
    /// * when `reuse_aware`, a shared input dataset is charged once per
    ///   tier, not once per job (CAST++, Eq. 7).
    pub fn capacities(
        &self,
        spec: &WorkloadSpec,
        reuse_aware: bool,
    ) -> Result<PerTier<DataSize>, SolverError> {
        let mut caps = PerTier::from_fn(|_| DataSize::ZERO);
        // Shared inputs counted once per (dataset, tier) in reuse mode.
        if reuse_aware {
            for (ds, jobs) in spec.reuse_groups() {
                let size = spec.dataset(ds).expect("validated spec").size;
                // All group members share a tier under Eq. 7; even if the
                // plan violates that, we discount per distinct tier.
                let mut tiers: Vec<Tier> = Vec::new();
                for &j in &jobs {
                    let t = self.require(j)?.tier;
                    if !tiers.contains(&t) {
                        tiers.push(t);
                    }
                }
                for &t in &tiers {
                    let members_on_t = jobs
                        .iter()
                        .filter(|&&j| self.get(j).map(|a| a.tier) == Some(t))
                        .count();
                    if members_on_t > 1 {
                        *caps.get_mut(t) -= size * (members_on_t - 1) as f64;
                    }
                }
            }
        }
        for job in &spec.jobs {
            let a = self.require(job.id)?;
            a.validate(job.id)?;
            let profile = spec.profiles.get(job.app);
            let c = job.footprint(profile) * a.overprov;
            *caps.get_mut(a.tier) += c;
            match a.tier {
                Tier::ObjStore => {
                    // Intermediate data cannot live in the object store.
                    let inter = job.inter(profile);
                    *caps.get_mut(Tier::ObjStore) -= inter;
                    *caps.get_mut(Tier::PersSsd) += inter;
                }
                Tier::EphSsd => {
                    // Backing persistence for input and output.
                    *caps.get_mut(Tier::ObjStore) += job.input + job.output(profile);
                }
                _ => {}
            }
        }
        Ok(caps)
    }

    /// Convert to the simulator's placement map (all-or-nothing input on
    /// the assigned tier, the Fig. 1 conventions for staging/scratch).
    pub fn to_placements(&self) -> PlacementMap {
        let mut map = PlacementMap::new();
        for (job, a) in self.iter() {
            map.set(job, JobPlacement::all_on(a.tier));
        }
        map
    }

    /// Fraction of jobs assigned to each tier (Fig. 7c's capacity
    /// breakdown uses [`TieringPlan::capacities`]; this is the job-count
    /// view used in diagnostics).
    pub fn tier_histogram(&self) -> PerTier<usize> {
        let mut h = PerTier::from_fn(|_| 0usize);
        for (_, a) in self.iter() {
            *h.get_mut(a.tier) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::units::DataSize;
    use cast_workload::apps::AppKind;
    use cast_workload::synth;

    fn spec() -> WorkloadSpec {
        // Two Sort jobs sharing one 10 GB dataset.
        let mut spec = synth::single_job(AppKind::Sort, DataSize::from_gb(10.0));
        let mut j2 = spec.jobs[0];
        j2.id = JobId(1);
        spec.jobs.push(j2);
        spec
    }

    #[test]
    fn uniform_plan_assigns_everyone() {
        let s = spec();
        let p = TieringPlan::uniform(&s, Tier::PersHdd);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(JobId(1)).unwrap().tier, Tier::PersHdd);
    }

    #[test]
    fn capacity_of_respects_footprint_and_factor() {
        let s = spec();
        let mut p = TieringPlan::uniform(&s, Tier::PersSsd);
        p.assign(
            JobId(0),
            Assignment {
                tier: Tier::PersSsd,
                overprov: 2.0,
            },
        );
        // Sort footprint = 3 × 10 GB; doubled = 60 GB.
        let c = p.capacity_of(&s, JobId(0)).unwrap();
        assert!((c.gb() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn objstore_jobs_charge_scratch_to_persssd() {
        let s = synth::single_job(AppKind::Sort, DataSize::from_gb(10.0));
        let p = TieringPlan::uniform(&s, Tier::ObjStore);
        let caps = p.capacities(&s, false).unwrap();
        // Sort: input 10 + inter 10 + output 10. Inter moves to persSSD.
        assert!((caps.get(Tier::ObjStore).gb() - 20.0).abs() < 1e-9);
        assert!((caps.get(Tier::PersSsd).gb() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ephemeral_jobs_charge_backing_objstore() {
        let s = synth::single_job(AppKind::Sort, DataSize::from_gb(10.0));
        let p = TieringPlan::uniform(&s, Tier::EphSsd);
        let caps = p.capacities(&s, false).unwrap();
        assert!((caps.get(Tier::EphSsd).gb() - 30.0).abs() < 1e-9);
        // input + output persisted in objStore.
        assert!((caps.get(Tier::ObjStore).gb() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_awareness_discounts_shared_inputs() {
        let s = spec();
        let p = TieringPlan::uniform(&s, Tier::PersSsd);
        let naive = p.capacities(&s, false).unwrap();
        let aware = p.capacities(&s, true).unwrap();
        // Two jobs × 30 GB footprint = 60; shared 10 GB input counted once
        // → 50.
        assert!((naive.get(Tier::PersSsd).gb() - 60.0).abs() < 1e-9);
        assert!((aware.get(Tier::PersSsd).gb() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_discount_only_within_same_tier() {
        let s = spec();
        let mut p = TieringPlan::uniform(&s, Tier::PersSsd);
        p.assign(JobId(1), Assignment::exact(Tier::PersHdd));
        let aware = p.capacities(&s, true).unwrap();
        // No two jobs share a tier: no discount anywhere.
        assert!((aware.get(Tier::PersSsd).gb() - 30.0).abs() < 1e-9);
        assert!((aware.get(Tier::PersHdd).gb() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_factor_rejected() {
        let s = spec();
        let mut p = TieringPlan::uniform(&s, Tier::PersSsd);
        p.assign(
            JobId(0),
            Assignment {
                tier: Tier::PersSsd,
                overprov: 0.5,
            },
        );
        assert!(matches!(
            p.capacities(&s, false),
            Err(SolverError::CapacityViolation { job: 0, .. })
        ));
    }

    #[test]
    fn missing_assignment_detected() {
        let s = spec();
        let mut p = TieringPlan::new();
        p.assign(JobId(0), Assignment::exact(Tier::PersSsd));
        assert!(matches!(
            p.capacities(&s, false),
            Err(SolverError::Unassigned(1))
        ));
    }

    #[test]
    fn histogram_counts_jobs() {
        let s = spec();
        let mut p = TieringPlan::uniform(&s, Tier::PersSsd);
        p.assign(JobId(1), Assignment::exact(Tier::ObjStore));
        let h = p.tier_histogram();
        assert_eq!(*h.get(Tier::PersSsd), 1);
        assert_eq!(*h.get(Tier::ObjStore), 1);
        assert_eq!(*h.get(Tier::EphSsd), 0);
    }

    #[test]
    fn placements_follow_assignments() {
        let s = spec();
        let p = TieringPlan::uniform(&s, Tier::EphSsd);
        let map = p.to_placements();
        assert_eq!(map.get(JobId(0)).unwrap().primary(), Tier::EphSsd);
        assert_eq!(
            map.get(JobId(0)).unwrap().stage_in_from,
            Some(Tier::ObjStore)
        );
    }
}
