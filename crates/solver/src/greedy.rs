//! Algorithm 1: greedy static tiering.
//!
//! For each job independently, pick the tier (and, in the
//! over-provisioned variant, the capacity factor) with the highest
//! *per-job* utility. The paper uses this as the baseline that CAST's
//! annealer beats: greedy ignores how placing a job changes the shared
//! tier capacity — and therefore the performance — of every other job
//! (§5.1.2).

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;

use crate::error::SolverError;
use crate::neighbor::OVERPROV_GRID;
use crate::objective::{job_utility, EvalContext};
use crate::plan::{Assignment, TieringPlan};

/// Greedy capacity policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GreedyMode {
    /// `cᵢ` = exactly the Eq. 3 floor. The paper's `Greedy exact-fit`.
    ExactFit,
    /// Additionally search the over-provisioning grid per job. The
    /// paper's `Greedy over-provisioned`.
    OverProvisioned,
}

/// Run Algorithm 1 over every job in the workload.
pub fn greedy_plan(ctx: &EvalContext<'_>, mode: GreedyMode) -> Result<TieringPlan, SolverError> {
    let mut plan = TieringPlan::new();
    for job in &ctx.spec.jobs {
        let mut best: Option<(f64, Assignment)> = None;
        let factors: &[f64] = match mode {
            GreedyMode::ExactFit => &[1.0],
            GreedyMode::OverProvisioned => &OVERPROV_GRID,
        };
        for tier in Tier::ALL {
            for &factor in factors {
                let u = job_utility(ctx, job, tier, factor)?;
                if best.is_none_or(|(bu, _)| u > bu) {
                    best = Some((
                        u,
                        Assignment {
                            tier,
                            overprov: factor,
                        },
                    ));
                }
            }
        }
        let (_, a) = best.expect("at least one tier evaluated");
        plan.assign(job.id, a);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{evaluate, tests::toy_estimator};
    use cast_workload::synth;

    #[test]
    fn greedy_assigns_every_job() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = greedy_plan(&ctx, GreedyMode::ExactFit).unwrap();
        assert_eq!(plan.len(), spec.jobs.len());
    }

    #[test]
    fn exact_fit_never_overprovisions() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = greedy_plan(&ctx, GreedyMode::ExactFit).unwrap();
        assert!(plan.iter().all(|(_, a)| a.overprov == 1.0));
    }

    #[test]
    fn overprovisioned_uses_factors_when_helpful() {
        use cast_cloud::tier::Tier;
        use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
        // A matrix where the flat-rate tiers are hopeless and block-tier
        // bandwidth grows steeply with capacity: buying space must pay.
        let mut est = toy_estimator(25);
        let mut matrix = ModelMatrix::new();
        for app in cast_workload::AppKind::ALL {
            for tier in Tier::ALL {
                let samples = match tier {
                    Tier::PersSsd | Tier::PersHdd => vec![
                        (
                            50.0,
                            PhaseBw {
                                map: 1.0,
                                shuffle_reduce: 1.0,
                            },
                        ),
                        (
                            800.0,
                            PhaseBw {
                                map: 25.0,
                                shuffle_reduce: 25.0,
                            },
                        ),
                    ],
                    _ => vec![(
                        375.0,
                        PhaseBw {
                            map: 0.5,
                            shuffle_reduce: 0.5,
                        },
                    )],
                };
                matrix.insert(app, tier, CapacityCurve::fit(&samples).unwrap());
            }
        }
        est.matrix = matrix;
        let spec = synth::prediction_workload();
        let ctx = EvalContext::new(&est, &spec);
        let plan = greedy_plan(&ctx, GreedyMode::OverProvisioned).unwrap();
        assert!(
            plan.iter().any(|(_, a)| a.overprov > 1.0),
            "expected some over-provisioning"
        );
    }

    #[test]
    fn overprovisioned_at_least_matches_exact_fit_per_job() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        // Per-job utility of the chosen assignment can only improve when
        // the search space is a superset.
        let exact = greedy_plan(&ctx, GreedyMode::ExactFit).unwrap();
        let over = greedy_plan(&ctx, GreedyMode::OverProvisioned).unwrap();
        for job in &spec.jobs {
            let ea = exact.get(job.id).unwrap();
            let oa = over.get(job.id).unwrap();
            let eu = job_utility(&ctx, job, ea.tier, ea.overprov).unwrap();
            let ou = job_utility(&ctx, job, oa.tier, oa.overprov).unwrap();
            assert!(ou >= eu - 1e-15, "{}: {eu} vs {ou}", job.id);
        }
    }

    #[test]
    fn whole_plan_evaluation_succeeds() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let plan = greedy_plan(&ctx, GreedyMode::OverProvisioned).unwrap();
        let eval = evaluate(&plan, &ctx).unwrap();
        assert!(eval.utility > 0.0);
    }
}
