//! Solver error type.

use std::fmt;

/// Errors raised while constructing or evaluating tiering plans.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A job lacks an assignment in the plan under evaluation.
    Unassigned(u32),
    /// The estimator could not answer (missing profile, bad fit).
    Estimator(cast_estimator::EstimatorError),
    /// An over-provisioning factor below 1 would violate Eq. 3.
    CapacityViolation {
        /// Offending job.
        job: u32,
        /// The factor supplied.
        factor: f64,
    },
    /// A workflow-mode solve was requested for a job outside any workflow.
    NotInWorkflow(u32),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Unassigned(j) => write!(f, "job #{j} has no tier assignment"),
            SolverError::Estimator(e) => write!(f, "estimator error: {e}"),
            SolverError::CapacityViolation { job, factor } => write!(
                f,
                "job #{job}: over-provisioning factor {factor} violates Eq. 3 (must be ≥ 1)"
            ),
            SolverError::NotInWorkflow(j) => {
                write!(f, "job #{j} is not a member of any workflow")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl From<cast_estimator::EstimatorError> for SolverError {
    fn from(e: cast_estimator::EstimatorError) -> Self {
        SolverError::Estimator(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SolverError::Unassigned(3).to_string().contains("#3"));
        let e = SolverError::CapacityViolation {
            job: 1,
            factor: 0.5,
        };
        assert!(e.to_string().contains("0.5"));
    }
}
