//! Algorithm 2: the simulated-annealing tiering solver (CAST).
//!
//! Starting from an initial plan (usually greedy's output), the annealer
//! repeatedly scores a random neighbour; better plans are always adopted,
//! worse ones with probability `exp(Δ/temp)` (Metropolis), and the
//! temperature decays each iteration via the [`Cooling`] schedule —
//! "making the search narrower as iterations increase" (§4.2.2).
//! Utility differences are normalised by the initial score so one
//! temperature scale works across workloads of any size.
//!
//! Two performance properties of this implementation matter (see
//! DESIGN.md "Solver performance"):
//!
//! * the inner loop never materialises a neighbour plan — moves are
//!   applied in place and undone on rejection, and utility-mode solves
//!   score through [`IncrementalEval`]'s ledger + memo instead of a full
//!   [`evaluate`] per neighbour (bit-identical scores, same trajectory);
//! * `restarts > 1` runs N independent annealing chains on the
//!   [`cast_sim::par`] worker pool (index-claimed, capped at the
//!   machine's parallelism instead of one thread per restart), each
//!   seeded deterministically from its restart index; the winner is
//!   chosen by `(score, seed)` so the result is machine-independent and
//!   identical to running the chains one by one.

use cast_obs::{Collector, EventBody};
use cast_sim::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cooling::Cooling;
use crate::diagnostics::SolveDiagnostics;
use crate::error::SolverError;
use crate::incremental::{plan_from_assignments, IncrementalEval};
use crate::neighbor::NeighborGen;
use crate::objective::{evaluate, EvalContext, PlanEval};
use crate::plan::{Assignment, TieringPlan};

/// Annealer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Iteration budget (`iter_max` of Algorithm 2) per restart.
    pub iterations: usize,
    /// Initial temperature (in normalised-utility units).
    pub temp_init: f64,
    /// Cooling schedule.
    pub cooling: Cooling,
    /// RNG seed (restart 0 uses it verbatim; restarts `1..N` derive
    /// theirs via [`restart_seed`]).
    pub seed: u64,
    /// Independent annealing chains to run; the best result by
    /// `(score, seed)` wins. `1` reproduces a classic single-chain solve;
    /// values above 1 run the chains on scoped threads.
    pub restarts: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 12_000,
            temp_init: 0.3,
            cooling: Cooling::default_geometric(),
            seed: 0xCA57,
            restarts: 1,
        }
    }
}

/// Parameters of a warm-started re-solve (see [`Annealer::resume_from`]).
///
/// An online replan starts from a near-optimal incumbent, so it neither
/// needs nor wants the full cold-start schedule: a high initial
/// temperature would walk away from the incumbent before re-converging,
/// and a full iteration budget wastes replan latency. A `WarmStart`
/// scales both down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Fraction of the base config's `temp_init` to resume at, in
    /// `(0, 1]`. Low values keep the chain near the incumbent; 1.0
    /// reproduces a cold start's schedule.
    pub temp_frac: f64,
    /// Iteration budget for the resumed solve (per restart).
    pub iterations: usize,
}

impl Default for WarmStart {
    fn default() -> Self {
        WarmStart {
            temp_frac: 0.25,
            iterations: 3_000,
        }
    }
}

/// The seed driving restart `restart` of a multi-restart solve. Restart 0
/// is the base seed itself, so `restarts = 1` is bit-compatible with a
/// single-chain run; later restarts decorrelate through SplitMix64's
/// finaliser.
pub fn restart_seed(base: u64, restart: usize) -> u64 {
    if restart == 0 {
        return base;
    }
    let mut z = base ^ (restart as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Best plan found.
    pub plan: TieringPlan,
    /// Its evaluation.
    pub eval: PlanEval,
    /// Run statistics (of the winning restart).
    pub diagnostics: SolveDiagnostics,
}

/// Result of a generic (score-only) annealing search: the winning plan is
/// materialised once; callers that need a full evaluation run their
/// objective one final time.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best plan found.
    pub plan: TieringPlan,
    /// Its score under the search objective.
    pub score: f64,
    /// Run statistics (of the winning restart).
    pub diagnostics: SolveDiagnostics,
}

/// One restart's result, before best-of-N selection.
struct ChainResult<P> {
    best: P,
    score: f64,
    seed: u64,
    diagnostics: SolveDiagnostics,
    /// Trace events buffered chain-locally as `(iteration, body)` pairs,
    /// flushed into the collector in restart order after the join so the
    /// recorded stream is independent of thread scheduling.
    events: Vec<(f64, EventBody)>,
}

/// Best-of-N selection rule: highest score; ties broken by smallest seed
/// so the outcome is independent of thread scheduling and machine.
fn better<P>(a: &ChainResult<P>, b: &ChainResult<P>) -> bool {
    a.score > b.score || (a.score == b.score && a.seed < b.seed)
}

fn pick_best<P>(
    chains: Vec<Result<ChainResult<P>, SolverError>>,
) -> Result<ChainResult<P>, SolverError> {
    let mut best: Option<ChainResult<P>> = None;
    for chain in chains {
        let chain = chain?;
        if best.as_ref().is_none_or(|b| better(&chain, b)) {
            best = Some(chain);
        }
    }
    Ok(best.expect("at least one restart"))
}

/// The CAST simulated-annealing solver.
#[derive(Debug, Clone)]
pub struct Annealer {
    cfg: AnnealConfig,
    obs: Collector,
}

/// Solves record restart / epoch / move spans plus acceptance and cache
/// counters into the attached collector. Emission never touches the RNG
/// stream or the scoring arithmetic, so results are bit-identical to an
/// unobserved solve.
impl cast_obs::Observe for Annealer {
    fn collector_slot(&mut self) -> &mut Collector {
        &mut self.obs
    }
}

impl Annealer {
    /// Create with the given parameters (no observability).
    pub fn new(cfg: AnnealConfig) -> Annealer {
        Annealer {
            cfg,
            obs: Collector::noop(),
        }
    }

    /// Maximise tenant utility starting from `init` (Algorithm 2).
    ///
    /// When `ctx.reuse_aware` is set, reuse groups move between tiers as a
    /// unit and shared inputs are charged once (CAST++ Enhancement 1).
    ///
    /// Scoring goes through [`IncrementalEval`] (bit-identical to
    /// [`evaluate`], which stays the oracle and produces the final
    /// [`PlanEval`]); with `cfg.restarts > 1` the independent chains run
    /// on scoped threads.
    pub fn solve(
        &self,
        ctx: &EvalContext<'_>,
        init: TieringPlan,
    ) -> Result<AnnealOutcome, SolverError> {
        let groups = if ctx.reuse_aware {
            ctx.spec
                .reuse_groups()
                .into_iter()
                .map(|(_, jobs)| jobs)
                .collect()
        } else {
            Vec::new()
        };
        let jobs = ctx.spec.jobs.iter().map(|j| j.id).collect();
        let gen = NeighborGen::new(jobs, groups);

        let restarts = self.cfg.restarts.max(1);
        let t0 = std::time::Instant::now();
        // Independent chains on the worker pool: each restart derives its
        // seed from its index, so results are bit-identical for any
        // worker count (cast_sim::par's determinism contract).
        let mut chains: Vec<Result<ChainResult<Vec<Assignment>>, SolverError>> =
            par::run_indexed(par::default_workers(), restarts, |r| {
                self.chain_incremental(ctx, &init, &gen, r, restart_seed(self.cfg.seed, r))
            });
        self.observe_chains(&mut chains, t0.elapsed().as_secs_f64());
        let winner = pick_best(chains)?;
        let plan = plan_from_assignments(ctx, &winner.best);
        let eval = evaluate(&plan, ctx)?;
        Ok(AnnealOutcome {
            plan,
            eval,
            diagnostics: winner.diagnostics,
        })
    }

    /// Re-solve warm-started from an incumbent plan (the online runtime's
    /// replan path).
    ///
    /// Identical to [`Annealer::solve`] except the schedule: the chain
    /// resumes at `temp_init × warm.temp_frac` and runs `warm.iterations`
    /// moves per restart. Because every chain's best-so-far starts at the
    /// incumbent, the outcome can never score below it — warm starts are
    /// monotone. The incumbent must assign every job in `ctx.spec` (jobs
    /// it does not cover would poison scoring; extend the plan before
    /// resuming).
    pub fn resume_from(
        &self,
        ctx: &EvalContext<'_>,
        incumbent: TieringPlan,
        warm: WarmStart,
    ) -> Result<AnnealOutcome, SolverError> {
        let scaled = Annealer {
            cfg: AnnealConfig {
                temp_init: self.cfg.temp_init * warm.temp_frac.clamp(f64::MIN_POSITIVE, 1.0),
                iterations: warm.iterations,
                ..self.cfg
            },
            obs: self.obs.clone(),
        };
        scaled.solve(ctx, incumbent)
    }

    /// One annealing chain over [`IncrementalEval`] state. Mirrors
    /// [`Annealer::chain_plan`] decision for decision; only the scoring
    /// substrate differs.
    fn chain_incremental(
        &self,
        ctx: &EvalContext<'_>,
        init: &TieringPlan,
        gen: &NeighborGen,
        restart: usize,
        seed: u64,
    ) -> Result<ChainResult<Vec<Assignment>>, SolverError> {
        let mut state = IncrementalEval::new(ctx, init)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let init_score = state.score()?;
        let scale = init_score.abs().max(f64::MIN_POSITIVE);

        let mut current_score = init_score;
        let mut best = state.assignments().to_vec();
        let mut best_score = init_score;

        let mut diag = SolveDiagnostics {
            initial_score: init_score,
            trace_stride: (self.cfg.iterations / 100).max(1),
            restarts: self.cfg.restarts.max(1),
            ..SolveDiagnostics::default()
        };
        let mut events = ChainEvents::new(&self.obs, restart, seed);
        let mut temp = self.cfg.temp_init;
        let mut moves: Vec<(cast_workload::JobId, Assignment)> = Vec::new();
        let mut undo: Vec<(cast_workload::JobId, Assignment)> = Vec::new();

        for iter in 0..self.cfg.iterations {
            temp = self.cfg.cooling.step(temp);
            gen.propose(|j| state.assignment(j), &mut rng, None, &mut moves);
            state.apply(&moves, &mut undo);
            let n_score = state.score()?;
            diag.iterations += 1;

            if n_score > best_score {
                best.copy_from_slice(state.assignments());
                best_score = n_score;
                diag.improvements += 1;
            }
            let accepted = metropolis(n_score, current_score, scale, temp, &mut rng, &mut diag);
            if accepted {
                current_score = n_score;
                diag.accepted += 1;
            } else {
                state.restore(&undo);
            }
            if iter % diag.trace_stride == 0 {
                diag.trace.push(best_score);
                events.sample(iter, n_score, best_score, temp, accepted, &diag);
            }
        }
        diag.best_score = best_score;
        let cache = state.cache_stats();
        self.obs
            .counter("solver.cache.ledger_hits")
            .add(cache.ledger_hits);
        self.obs
            .counter("solver.cache.memo_hits")
            .add(cache.memo_hits);
        self.obs.counter("solver.cache.bw_hits").add(cache.bw_hits);
        self.obs.counter("solver.cache.misses").add(cache.misses);
        Ok(ChainResult {
            best,
            score: best_score,
            seed,
            events: events.finish(best_score, &diag, &self.obs),
            diagnostics: diag,
        })
    }

    /// Generic annealing loop over an arbitrary score function. `cursor`
    /// (when `Some`) supplies a deterministic job-visit order (CAST++'s
    /// DFS traversal); otherwise neighbours mutate random jobs.
    ///
    /// The score closure is called on the candidate plan only — no
    /// per-iteration evaluation payloads are built; the caller
    /// materialises whatever it needs from the winning plan once.
    pub fn solve_with<S>(
        &self,
        init: TieringPlan,
        gen: &NeighborGen,
        score: S,
        cursor_order: Option<&[usize]>,
    ) -> Result<SearchOutcome, SolverError>
    where
        S: Fn(&TieringPlan) -> Result<f64, SolverError> + Sync,
    {
        let restarts = self.cfg.restarts.max(1);
        let t0 = std::time::Instant::now();
        let mut chains: Vec<Result<ChainResult<TieringPlan>, SolverError>> =
            par::run_indexed(par::default_workers(), restarts, |r| {
                self.chain_plan(
                    init.clone(),
                    gen,
                    &score,
                    cursor_order,
                    r,
                    restart_seed(self.cfg.seed, r),
                )
            });
        self.observe_chains(&mut chains, t0.elapsed().as_secs_f64());
        let winner = pick_best(chains)?;
        Ok(SearchOutcome {
            plan: winner.best,
            score: winner.score,
            diagnostics: winner.diagnostics,
        })
    }

    /// One annealing chain mutating a plan in place (the generic-score
    /// path used by CAST++'s per-workflow cost solves).
    fn chain_plan<S>(
        &self,
        init: TieringPlan,
        gen: &NeighborGen,
        score: &S,
        cursor_order: Option<&[usize]>,
        restart: usize,
        seed: u64,
    ) -> Result<ChainResult<TieringPlan>, SolverError>
    where
        S: Fn(&TieringPlan) -> Result<f64, SolverError>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let init_score = score(&init)?;
        let scale = init_score.abs().max(f64::MIN_POSITIVE);

        let mut current = init;
        let mut current_score = init_score;
        // The incumbent best as a flat snapshot; the winning plan is
        // rebuilt from it exactly once after the loop.
        let mut best_snapshot: Vec<(cast_workload::JobId, Assignment)> = current.iter().collect();
        let mut best_score = init_score;

        let mut diag = SolveDiagnostics {
            initial_score: init_score,
            trace_stride: (self.cfg.iterations / 100).max(1),
            restarts: self.cfg.restarts.max(1),
            ..SolveDiagnostics::default()
        };
        let mut events = ChainEvents::new(&self.obs, restart, seed);
        let mut temp = self.cfg.temp_init;
        let mut moves: Vec<(cast_workload::JobId, Assignment)> = Vec::new();
        let mut undo: Vec<(cast_workload::JobId, Assignment)> = Vec::new();

        for iter in 0..self.cfg.iterations {
            temp = self.cfg.cooling.step(temp);
            let cursor = cursor_order.map(|ord| ord[iter % ord.len()]);
            gen.propose(|j| current.get(j), &mut rng, cursor, &mut moves);
            undo.clear();
            for &(job, a) in &moves {
                undo.push((job, current.get(job).expect("proposed over assigned job")));
                current.assign(job, a);
            }
            let n_score = score(&current)?;
            diag.iterations += 1;

            if n_score > best_score {
                best_snapshot.clear();
                best_snapshot.extend(current.iter());
                best_score = n_score;
                diag.improvements += 1;
            }
            let accepted = metropolis(n_score, current_score, scale, temp, &mut rng, &mut diag);
            if accepted {
                current_score = n_score;
                diag.accepted += 1;
            } else {
                for &(job, a) in undo.iter().rev() {
                    current.assign(job, a);
                }
            }
            if iter % diag.trace_stride == 0 {
                diag.trace.push(best_score);
                events.sample(iter, n_score, best_score, temp, accepted, &diag);
            }
        }
        diag.best_score = best_score;
        let mut best = TieringPlan::new();
        for (job, a) in best_snapshot {
            best.assign(job, a);
        }
        Ok(ChainResult {
            best,
            score: best_score,
            seed,
            events: events.finish(best_score, &diag, &self.obs),
            diagnostics: diag,
        })
    }

    /// Flush the chains' buffered trace events into the collector in
    /// restart order (the `chains` vec is indexed by restart), then set
    /// the run-level gauges. Called once after all chains have joined, so
    /// the recorded stream — and the metrics snapshot minus `.wall`
    /// entries — is identical no matter how the scheduler interleaved the
    /// worker threads.
    fn observe_chains<P>(&self, chains: &mut [Result<ChainResult<P>, SolverError>], elapsed: f64) {
        if !self.obs.enabled() {
            return;
        }
        let mut moves_total: u64 = 0;
        let mut scores: Vec<f64> = Vec::with_capacity(chains.len());
        for chain in chains.iter_mut().flatten() {
            self.obs.emit_batch(std::mem::take(&mut chain.events));
            moves_total += chain.diagnostics.iterations as u64;
            scores.push(chain.score);
        }
        if elapsed > 0.0 {
            self.obs
                .gauge("anneal.moves_per_sec.wall")
                .set(moves_total as f64 / elapsed);
        }
        if scores.len() > 1 {
            scores.sort_by(|a, b| b.total_cmp(a));
            self.obs
                .gauge("anneal.restart_win_margin")
                .set(scores[0] - scores[1]);
        }
    }
}

/// Per-chain trace buffer. Events are appended locally while the chain
/// runs (possibly on a worker thread) and handed back through
/// [`ChainResult::events`]; [`Annealer::observe_chains`] flushes them in
/// restart order. All methods are no-ops when the collector is disabled.
struct ChainEvents {
    buf: Vec<(f64, EventBody)>,
    restart: u32,
    enabled: bool,
}

impl ChainEvents {
    fn new(obs: &Collector, restart: usize, seed: u64) -> ChainEvents {
        let enabled = obs.enabled();
        let mut buf = Vec::new();
        if enabled {
            buf.push((
                0.0,
                EventBody::RestartStart {
                    restart: restart as u32,
                    // Stored as the i64 bit pattern: the vendored serde
                    // shim keeps all JSON integers as i64, so a raw u64
                    // above i64::MAX would not round-trip.
                    seed: seed as i64,
                },
            ));
        }
        ChainEvents {
            buf,
            restart: restart as u32,
            enabled,
        }
    }

    /// Record one trace-stride sample: the move that landed on the stride
    /// boundary plus an epoch summary of the chain so far.
    fn sample(
        &mut self,
        iter: usize,
        score: f64,
        best: f64,
        temp: f64,
        accepted: bool,
        diag: &SolveDiagnostics,
    ) {
        if !self.enabled {
            return;
        }
        let t = iter as f64;
        self.buf.push((
            t,
            EventBody::Move {
                restart: self.restart,
                iter: iter as u64,
                score,
                best,
                temp,
                accepted,
            },
        ));
        self.buf.push((
            t,
            EventBody::Epoch {
                restart: self.restart,
                iter: iter as u64,
                best,
                temp,
                accepted: diag.accepted as u64,
                uphill: diag.uphill_accepted as u64,
            },
        ));
    }

    /// Close the chain: append its `RestartEnd` event and roll the chain's
    /// acceptance statistics into the shared counters (atomic adds
    /// commute, so totals are deterministic across thread schedules).
    fn finish(
        mut self,
        best_score: f64,
        diag: &SolveDiagnostics,
        obs: &Collector,
    ) -> Vec<(f64, EventBody)> {
        if !self.enabled {
            return self.buf;
        }
        self.buf.push((
            diag.iterations as f64,
            EventBody::RestartEnd {
                restart: self.restart,
                score: best_score,
                iterations: diag.iterations as u64,
                accepted: diag.accepted as u64,
            },
        ));
        obs.counter("anneal.moves").add(diag.iterations as u64);
        obs.counter("anneal.accepted").add(diag.accepted as u64);
        obs.counter("anneal.uphill_accepted")
            .add(diag.uphill_accepted as u64);
        obs.counter("anneal.improvements")
            .add(diag.improvements as u64);
        self.buf
    }
}

/// The Metropolis acceptance rule shared by both chain implementations:
/// accept improvements outright, worse moves with probability
/// `exp(Δ/temp)`. Consumes one RNG draw exactly when `Δ < 0`.
fn metropolis(
    n_score: f64,
    current_score: f64,
    scale: f64,
    temp: f64,
    rng: &mut StdRng,
    diag: &mut SolveDiagnostics,
) -> bool {
    let delta = (n_score - current_score) / scale;
    if delta >= 0.0 {
        return true;
    }
    let p = (delta / temp.max(1e-12)).exp();
    let uphill = rng.gen_bool(p.clamp(0.0, 1.0));
    if uphill {
        diag.uphill_accepted += 1;
    }
    uphill
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_plan, GreedyMode};
    use crate::objective::tests::toy_estimator;
    use cast_cloud::tier::Tier;
    use cast_workload::synth;

    fn quick_cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            iterations: 800,
            seed,
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn annealer_beats_or_matches_uniform_baselines() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersSsd);
        let cfg = AnnealConfig {
            iterations: 5000,
            seed: 1,
            ..AnnealConfig::default()
        };
        let out = Annealer::new(cfg).solve(&ctx, init).unwrap();
        for tier in Tier::ALL {
            let u = evaluate(&TieringPlan::uniform(&spec, tier), &ctx)
                .unwrap()
                .utility;
            assert!(
                out.eval.utility >= u - 1e-15,
                "annealer worse than uniform {tier}: {} vs {u}",
                out.eval.utility
            );
        }
    }

    #[test]
    fn annealer_improves_on_greedy_init_or_keeps_it() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let greedy = greedy_plan(&ctx, GreedyMode::OverProvisioned).unwrap();
        let greedy_u = evaluate(&greedy, &ctx).unwrap().utility;
        let out = Annealer::new(quick_cfg(2)).solve(&ctx, greedy).unwrap();
        assert!(out.eval.utility >= greedy_u - 1e-15);
        assert!(out.diagnostics.iterations == 800);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersHdd);
        let a = Annealer::new(quick_cfg(7))
            .solve(&ctx, init.clone())
            .unwrap();
        let b = Annealer::new(quick_cfg(7)).solve(&ctx, init).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.eval.utility, b.eval.utility);
    }

    #[test]
    fn incremental_and_plan_paths_share_one_trajectory() {
        // The generic plan-scoring loop (scoring via the full oracle) and
        // the incremental loop must make identical decisions: same seed,
        // same plan, bit-identical score.
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::ObjStore);
        let cfg = quick_cfg(13);
        let fast = Annealer::new(cfg).solve(&ctx, init.clone()).unwrap();
        let jobs = ctx.spec.jobs.iter().map(|j| j.id).collect();
        let gen = NeighborGen::new(jobs, Vec::new());
        let slow = Annealer::new(cfg)
            .solve_with(init, &gen, |p| evaluate(p, &ctx).map(|e| e.utility), None)
            .unwrap();
        assert_eq!(fast.plan, slow.plan);
        assert_eq!(fast.eval.utility.to_bits(), slow.score.to_bits());
        assert_eq!(fast.diagnostics.accepted, slow.diagnostics.accepted);
        assert_eq!(
            fast.diagnostics.uphill_accepted,
            slow.diagnostics.uphill_accepted
        );
    }

    #[test]
    fn reuse_mode_keeps_groups_united() {
        // Two Grep jobs sharing a dataset.
        let mut spec = synth::single_job(
            cast_workload::AppKind::Grep,
            cast_cloud::units::DataSize::from_gb(200.0),
        );
        let mut j2 = spec.jobs[0];
        j2.id = cast_workload::JobId(1);
        spec.jobs.push(j2);
        let est = toy_estimator(5);
        let ctx = EvalContext::new(&est, &spec).with_reuse_awareness();
        let init = TieringPlan::uniform(&spec, Tier::PersSsd);
        let out = Annealer::new(quick_cfg(3)).solve(&ctx, init).unwrap();
        let t0 = out.plan.get(cast_workload::JobId(0)).unwrap().tier;
        let t1 = out.plan.get(cast_workload::JobId(1)).unwrap().tier;
        assert_eq!(t0, t1, "Eq. 7: shared-input jobs share a tier");
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::ObjStore);
        let out = Annealer::new(quick_cfg(9)).solve(&ctx, init).unwrap();
        for w in out.diagnostics.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-18, "best-score trace must not regress");
        }
    }

    #[test]
    fn multi_restart_never_loses_to_its_own_base_chain() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersHdd);
        let single = Annealer::new(quick_cfg(21))
            .solve(&ctx, init.clone())
            .unwrap();
        let multi = Annealer::new(AnnealConfig {
            restarts: 4,
            ..quick_cfg(21)
        })
        .solve(&ctx, init)
        .unwrap();
        // Restart 0 runs the base seed, so best-of-4 can only match or
        // beat the single chain.
        assert!(multi.eval.utility >= single.eval.utility);
        assert_eq!(multi.diagnostics.restarts, 4);
    }

    #[test]
    fn warm_start_never_regresses_below_incumbent() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersHdd);
        let cold = Annealer::new(quick_cfg(5)).solve(&ctx, init).unwrap();
        let warm = Annealer::new(quick_cfg(6))
            .resume_from(
                &ctx,
                cold.plan.clone(),
                WarmStart {
                    temp_frac: 0.2,
                    iterations: 200,
                },
            )
            .unwrap();
        assert!(
            warm.eval.utility >= cold.eval.utility - 1e-15,
            "warm start regressed: {} < {}",
            warm.eval.utility,
            cold.eval.utility
        );
    }

    #[test]
    fn warm_start_reaches_incumbent_in_fewer_moves_than_cold() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersHdd);
        let incumbent = Annealer::new(quick_cfg(11))
            .solve(&ctx, init.clone())
            .unwrap();
        let target = incumbent.eval.utility;
        let warm = Annealer::new(quick_cfg(12))
            .resume_from(&ctx, incumbent.plan, WarmStart::default())
            .unwrap();
        let cold = Annealer::new(AnnealConfig {
            iterations: WarmStart::default().iterations,
            seed: 12,
            ..AnnealConfig::default()
        })
        .solve(&ctx, init)
        .unwrap();
        let warm_moves = warm.diagnostics.moves_to_reach(target).unwrap();
        assert_eq!(warm_moves, 0, "warm chain starts at the incumbent score");
        let cold_moves = cold
            .diagnostics
            .moves_to_reach(target)
            .unwrap_or(cold.diagnostics.iterations);
        assert!(
            cold_moves > warm_moves,
            "cold start should need moves to climb back ({cold_moves} vs {warm_moves})"
        );
    }

    #[test]
    fn warm_start_is_deterministic() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::ObjStore);
        let incumbent = Annealer::new(quick_cfg(17)).solve(&ctx, init).unwrap();
        let a = Annealer::new(quick_cfg(18))
            .resume_from(&ctx, incumbent.plan.clone(), WarmStart::default())
            .unwrap();
        let b = Annealer::new(quick_cfg(18))
            .resume_from(&ctx, incumbent.plan, WarmStart::default())
            .unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.eval.utility.to_bits(), b.eval.utility.to_bits());
    }

    #[test]
    fn restart_seeds_are_stable_and_distinct() {
        let base = 0xCA57u64;
        assert_eq!(restart_seed(base, 0), base);
        let seeds: Vec<u64> = (0..8).map(|r| restart_seed(base, r)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "derived seeds must be distinct");
        // Stable across calls (pure function of (base, restart)).
        assert_eq!(restart_seed(base, 3), restart_seed(base, 3));
    }
}
