//! Algorithm 2: the simulated-annealing tiering solver (CAST).
//!
//! Starting from an initial plan (usually greedy's output), the annealer
//! repeatedly scores a random neighbour; better plans are always adopted,
//! worse ones with probability `exp(Δ/temp)` (Metropolis), and the
//! temperature decays each iteration via the [`Cooling`] schedule —
//! "making the search narrower as iterations increase" (§4.2.2).
//! Utility differences are normalised by the initial score so one
//! temperature scale works across workloads of any size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cooling::Cooling;
use crate::diagnostics::SolveDiagnostics;
use crate::error::SolverError;
use crate::neighbor::NeighborGen;
use crate::objective::{evaluate, EvalContext, PlanEval};
use crate::plan::TieringPlan;

/// Annealer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// Iteration budget (`iter_max` of Algorithm 2).
    pub iterations: usize,
    /// Initial temperature (in normalised-utility units).
    pub temp_init: f64,
    /// Cooling schedule.
    pub cooling: Cooling,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 12_000,
            temp_init: 0.3,
            cooling: Cooling::default_geometric(),
            seed: 0xCA57,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// Best plan found.
    pub plan: TieringPlan,
    /// Its evaluation.
    pub eval: PlanEval,
    /// Run statistics.
    pub diagnostics: SolveDiagnostics,
}

/// The CAST simulated-annealing solver.
#[derive(Debug, Clone)]
pub struct Annealer {
    cfg: AnnealConfig,
}

impl Annealer {
    /// Create with the given parameters.
    pub fn new(cfg: AnnealConfig) -> Annealer {
        Annealer { cfg }
    }

    /// Maximise tenant utility starting from `init` (Algorithm 2).
    ///
    /// When `ctx.reuse_aware` is set, reuse groups move between tiers as a
    /// unit and shared inputs are charged once (CAST++ Enhancement 1).
    pub fn solve(
        &self,
        ctx: &EvalContext<'_>,
        init: TieringPlan,
    ) -> Result<AnnealOutcome, SolverError> {
        let groups = if ctx.reuse_aware {
            ctx.spec
                .reuse_groups()
                .into_iter()
                .map(|(_, jobs)| jobs)
                .collect()
        } else {
            Vec::new()
        };
        let jobs = ctx.spec.jobs.iter().map(|j| j.id).collect();
        let gen = NeighborGen::new(jobs, groups);
        self.solve_with(
            init,
            &gen,
            |plan| evaluate(plan, ctx).map(|e| (e.utility, e)),
            None,
        )
    }

    /// Generic annealing loop over an arbitrary score function. `cursor`
    /// (when `Some`) supplies a deterministic job-visit order (CAST++'s
    /// DFS traversal); otherwise neighbours mutate random jobs.
    pub fn solve_with<F>(
        &self,
        init: TieringPlan,
        gen: &NeighborGen,
        mut score: F,
        cursor_order: Option<&[usize]>,
    ) -> Result<AnnealOutcome, SolverError>
    where
        F: FnMut(&TieringPlan) -> Result<(f64, PlanEval), SolverError>,
    {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let (init_score, init_eval) = score(&init)?;
        let scale = init_score.abs().max(f64::MIN_POSITIVE);

        let mut current = init.clone();
        let mut current_score = init_score;
        let mut best = init;
        let mut best_score = init_score;
        let mut best_eval = init_eval;

        let mut diag = SolveDiagnostics {
            initial_score: init_score,
            trace_stride: (self.cfg.iterations / 100).max(1),
            ..SolveDiagnostics::default()
        };
        let mut temp = self.cfg.temp_init;

        for iter in 0..self.cfg.iterations {
            temp = self.cfg.cooling.step(temp);
            let cursor = cursor_order.map(|ord| ord[iter % ord.len()]);
            let neighbor = gen.neighbor(&current, &mut rng, cursor);
            let (n_score, n_eval) = score(&neighbor)?;
            diag.iterations += 1;

            if n_score > best_score {
                best = neighbor.clone();
                best_score = n_score;
                best_eval = n_eval;
                diag.improvements += 1;
            }
            let delta = (n_score - current_score) / scale;
            let accept = if delta >= 0.0 {
                true
            } else {
                let p = (delta / temp.max(1e-12)).exp();
                let uphill = rng.gen_bool(p.clamp(0.0, 1.0));
                if uphill {
                    diag.uphill_accepted += 1;
                }
                uphill
            };
            if accept {
                current = neighbor;
                current_score = n_score;
                diag.accepted += 1;
            }
            if iter % diag.trace_stride == 0 {
                diag.trace.push(best_score);
            }
        }
        diag.best_score = best_score;
        Ok(AnnealOutcome {
            plan: best,
            eval: best_eval,
            diagnostics: diag,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_plan, GreedyMode};
    use crate::objective::tests::toy_estimator;
    use cast_cloud::tier::Tier;
    use cast_workload::synth;

    fn quick_cfg(seed: u64) -> AnnealConfig {
        AnnealConfig {
            iterations: 800,
            seed,
            ..AnnealConfig::default()
        }
    }

    #[test]
    fn annealer_beats_or_matches_uniform_baselines() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersSsd);
        let cfg = AnnealConfig {
            iterations: 5000,
            seed: 1,
            ..AnnealConfig::default()
        };
        let out = Annealer::new(cfg).solve(&ctx, init).unwrap();
        for tier in Tier::ALL {
            let u = evaluate(&TieringPlan::uniform(&spec, tier), &ctx)
                .unwrap()
                .utility;
            assert!(
                out.eval.utility >= u - 1e-15,
                "annealer worse than uniform {tier}: {} vs {u}",
                out.eval.utility
            );
        }
    }

    #[test]
    fn annealer_improves_on_greedy_init_or_keeps_it() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let greedy = greedy_plan(&ctx, GreedyMode::OverProvisioned).unwrap();
        let greedy_u = evaluate(&greedy, &ctx).unwrap().utility;
        let out = Annealer::new(quick_cfg(2)).solve(&ctx, greedy).unwrap();
        assert!(out.eval.utility >= greedy_u - 1e-15);
        assert!(out.diagnostics.iterations == 800);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::PersHdd);
        let a = Annealer::new(quick_cfg(7))
            .solve(&ctx, init.clone())
            .unwrap();
        let b = Annealer::new(quick_cfg(7)).solve(&ctx, init).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.eval.utility, b.eval.utility);
    }

    #[test]
    fn reuse_mode_keeps_groups_united() {
        // Two Grep jobs sharing a dataset.
        let mut spec = synth::single_job(
            cast_workload::AppKind::Grep,
            cast_cloud::units::DataSize::from_gb(200.0),
        );
        let mut j2 = spec.jobs[0];
        j2.id = cast_workload::JobId(1);
        spec.jobs.push(j2);
        let est = toy_estimator(5);
        let ctx = EvalContext::new(&est, &spec).with_reuse_awareness();
        let init = TieringPlan::uniform(&spec, Tier::PersSsd);
        let out = Annealer::new(quick_cfg(3)).solve(&ctx, init).unwrap();
        let t0 = out.plan.get(cast_workload::JobId(0)).unwrap().tier;
        let t1 = out.plan.get(cast_workload::JobId(1)).unwrap().tier;
        assert_eq!(t0, t1, "Eq. 7: shared-input jobs share a tier");
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let spec = synth::prediction_workload();
        let est = toy_estimator(25);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, Tier::ObjStore);
        let out = Annealer::new(quick_cfg(9)).solve(&ctx, init).unwrap();
        for w in out.diagnostics.trace.windows(2) {
            assert!(w[1] >= w[0] - 1e-18, "best-score trace must not regress");
        }
    }
}
