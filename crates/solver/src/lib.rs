//! # cast-solver
//!
//! The CAST and CAST++ tiering solvers (§4.2–4.3 of the paper).
//!
//! Given a workload specification, a profiled performance estimator and the
//! provider's price sheet, the solvers choose for every job a storage
//! service `sᵢ` and a provisioned capacity `cᵢ` (Table 3's decision
//! variables) to optimise a tenant goal:
//!
//! * **CAST** ([`anneal`]) maximises tenant utility
//!   `U = (1/T)/($vm + $store)` (Eq. 2) over the whole workload with a
//!   simulated-annealing search (Algorithm 2), subject to the capacity
//!   constraint `cᵢ ≥ inputᵢ + interᵢ + outputᵢ` (Eq. 3).
//! * **Greedy** ([`greedy`]) is Algorithm 1: per-job locally-optimal tier
//!   choice, in `exact-fit` and `over-provisioned` flavours — the paper's
//!   strawmen.
//! * **CAST++** ([`castpp`]) adds data-reuse awareness (jobs sharing a
//!   dataset share a tier, Eq. 7) and workflow awareness: each workflow's
//!   cost is minimised subject to its deadline (Eq. 8–9) with the Eq. 10
//!   capacity discount and cross-tier transfer times, exploring neighbours
//!   along a DFS traversal of the workflow DAG.
//!
//! The search solvers never touch the simulator — they see the world only
//! through the [`cast_estimator::Estimator`], exactly as CAST sees the real
//! cluster only through its profiled models. The one deliberate exception
//! is [`replan`]: at a live replan point the runtime can score a small
//! candidate slate by forking the in-flight simulation itself
//! ([`cast_sim::whatif`]) instead of trusting Eq. 4.

pub mod anneal;
pub mod castpp;
pub mod cooling;
pub mod diagnostics;
pub mod error;
pub mod greedy;
pub mod incremental;
pub mod neighbor;
pub mod objective;
pub mod plan;
pub mod replan;

pub use anneal::{restart_seed, AnnealConfig, Annealer, SearchOutcome, WarmStart};
pub use castpp::{CastPlusPlus, CastPlusPlusConfig};
pub use cooling::Cooling;
pub use diagnostics::SolveDiagnostics;
pub use error::SolverError;
pub use greedy::{greedy_plan, GreedyMode};
pub use incremental::{class_signature, job_class_key, CacheStats, IncrementalEval};
pub use objective::{evaluate, EvalContext, PlanEval};
pub use plan::{Assignment, TieringPlan};
pub use replan::{candidate_slate, score_candidates, CandidateScoring, ReplanDecision};
