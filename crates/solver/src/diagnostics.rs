//! Solver run diagnostics.

use serde::{Deserialize, Serialize};

/// Statistics from one annealing run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolveDiagnostics {
    /// Iterations performed.
    pub iterations: usize,
    /// Neighbour moves accepted (better or Metropolis).
    pub accepted: usize,
    /// Moves accepted despite being worse (uphill moves).
    pub uphill_accepted: usize,
    /// Number of times the incumbent best improved.
    pub improvements: usize,
    /// Utility (or score) of the initial plan.
    pub initial_score: f64,
    /// Utility (or score) of the best plan found.
    pub best_score: f64,
    /// Best-score trace sampled every `trace_stride` iterations.
    pub trace: Vec<f64>,
    /// Stride of the trace samples.
    pub trace_stride: usize,
    /// Independent restart chains in the solve this run belonged to
    /// (1 for a classic single-chain anneal; 0 only in `Default`).
    pub restarts: usize,
}

impl SolveDiagnostics {
    /// Acceptance ratio.
    pub fn acceptance_rate(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.accepted as f64 / self.iterations as f64
        }
    }

    /// Relative improvement of best over initial.
    pub fn improvement(&self) -> f64 {
        if self.initial_score.abs() < f64::EPSILON {
            0.0
        } else {
            (self.best_score - self.initial_score) / self.initial_score.abs()
        }
    }

    /// Number of annealing moves after which the best-so-far score first
    /// reached `target` (resolution: one trace stride). `None` when the
    /// run never got there. Used to compare warm-started against
    /// cold-started replans: the warm chain starts at the incumbent, so
    /// its `moves_to_reach(incumbent)` is 0 by construction, while a cold
    /// chain has to climb back first.
    pub fn moves_to_reach(&self, target: f64) -> Option<usize> {
        self.trace
            .iter()
            .position(|&s| s >= target)
            .map(|i| i * self.trace_stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let d = SolveDiagnostics {
            iterations: 100,
            accepted: 40,
            uphill_accepted: 10,
            improvements: 5,
            initial_score: 1.0,
            best_score: 1.5,
            trace: vec![],
            trace_stride: 100,
            restarts: 1,
        };
        assert!((d.acceptance_rate() - 0.4).abs() < 1e-12);
        assert!((d.improvement() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_safe() {
        let d = SolveDiagnostics::default();
        assert_eq!(d.acceptance_rate(), 0.0);
        assert_eq!(d.improvement(), 0.0);
    }

    #[test]
    fn moves_to_reach_scans_the_trace() {
        let d = SolveDiagnostics {
            trace: vec![1.0, 1.0, 1.2, 1.5],
            trace_stride: 50,
            ..SolveDiagnostics::default()
        };
        assert_eq!(d.moves_to_reach(1.0), Some(0));
        assert_eq!(d.moves_to_reach(1.1), Some(100));
        assert_eq!(d.moves_to_reach(1.5), Some(150));
        assert_eq!(d.moves_to_reach(2.0), None);
    }
}
