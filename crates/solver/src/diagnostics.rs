//! Solver run diagnostics.

use serde::{Deserialize, Serialize};

/// Statistics from one annealing run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SolveDiagnostics {
    /// Iterations performed.
    pub iterations: usize,
    /// Neighbour moves accepted (better or Metropolis).
    pub accepted: usize,
    /// Moves accepted despite being worse (uphill moves).
    pub uphill_accepted: usize,
    /// Number of times the incumbent best improved.
    pub improvements: usize,
    /// Utility (or score) of the initial plan.
    pub initial_score: f64,
    /// Utility (or score) of the best plan found.
    pub best_score: f64,
    /// Best-score trace sampled every `trace_stride` iterations.
    pub trace: Vec<f64>,
    /// Stride of the trace samples.
    pub trace_stride: usize,
    /// Independent restart chains in the solve this run belonged to
    /// (1 for a classic single-chain anneal; 0 only in `Default`).
    pub restarts: usize,
}

impl SolveDiagnostics {
    /// Acceptance ratio.
    pub fn acceptance_rate(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.accepted as f64 / self.iterations as f64
        }
    }

    /// Relative improvement of best over initial.
    pub fn improvement(&self) -> f64 {
        if self.initial_score.abs() < f64::EPSILON {
            0.0
        } else {
            (self.best_score - self.initial_score) / self.initial_score.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let d = SolveDiagnostics {
            iterations: 100,
            accepted: 40,
            uphill_accepted: 10,
            improvements: 5,
            initial_score: 1.0,
            best_score: 1.5,
            trace: vec![],
            trace_stride: 100,
            restarts: 1,
        };
        assert!((d.acceptance_rate() - 0.4).abs() < 1e-12);
        assert!((d.improvement() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_safe() {
        let d = SolveDiagnostics::default();
        assert_eq!(d.acceptance_rate(), 0.0);
        assert_eq!(d.improvement(), 0.0);
    }
}
