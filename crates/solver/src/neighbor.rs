//! Neighbour generation for the annealing search.
//!
//! A neighbour of a plan differs in one job's assignment: either the tier
//! flips to another service, or the over-provisioning factor is nudged
//! along a geometric grid. When reuse groups are active (CAST++), a tier
//! flip applies to the whole group so Eq. 7 stays satisfied by
//! construction.

use rand::rngs::StdRng;
use rand::Rng;

use cast_cloud::tier::Tier;
use cast_workload::job::JobId;

use crate::plan::{Assignment, TieringPlan};

/// Over-provisioning grid explored by the solver. Factor 1 = exact fit
/// (Eq. 3 floor); larger factors buy bandwidth on capacity-scaled tiers.
pub const OVERPROV_GRID: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Generates neighbours of the current plan.
#[derive(Debug, Clone)]
pub struct NeighborGen {
    /// Jobs that may be mutated, in mutation order.
    jobs: Vec<JobId>,
    /// Reuse groups: mutating any member re-tiers the whole group.
    groups: Vec<Vec<JobId>>,
}

impl NeighborGen {
    /// Build a generator over `jobs`; `groups` lists reuse groups (may be
    /// empty when reuse awareness is off).
    pub fn new(jobs: Vec<JobId>, groups: Vec<Vec<JobId>>) -> NeighborGen {
        NeighborGen { jobs, groups }
    }

    /// The jobs a mutation of the job at `idx` must also touch (its reuse
    /// group, or just itself).
    fn cohort(&self, idx: usize) -> &[JobId] {
        let job = self.jobs[idx];
        self.groups
            .iter()
            .find(|g| g.contains(&job))
            .map(|g| g.as_slice())
            .unwrap_or(std::slice::from_ref(&self.jobs[idx]))
    }

    /// Propose a random move against the current assignments (queried via
    /// `lookup`), writing the changed `(job, new assignment)` pairs into
    /// `out` — the allocation-free core of [`NeighborGen::neighbor`]. The
    /// job mutated is the one at `cursor` (CAST++'s DFS traversal) or a
    /// random one when `cursor` is `None`. Consumes exactly the RNG draws
    /// `neighbor` does, so move-based and plan-based searches share one
    /// trajectory per seed.
    pub fn propose(
        &self,
        lookup: impl Fn(JobId) -> Option<Assignment>,
        rng: &mut StdRng,
        cursor: Option<usize>,
        out: &mut Vec<(JobId, Assignment)>,
    ) {
        out.clear();
        if self.jobs.is_empty() {
            return;
        }
        let idx = cursor.unwrap_or_else(|| rng.gen_range(0..self.jobs.len())) % self.jobs.len();
        let job = self.jobs[idx];
        let Some(current) = lookup(job) else {
            return;
        };
        // Half the moves flip the tier (jointly drawing a fresh capacity
        // factor — tier and provisioning are coupled decisions: a job
        // moved to a capacity-scaled tier at exact-fit capacity may be
        // starved, and the two-step path through that valley is hard for
        // the annealer to cross), half nudge the capacity factor alone.
        if rng.gen_bool(0.5) {
            let n = rng.gen_range(0..Tier::ALL.len() - 1);
            let tier = Tier::ALL
                .iter()
                .copied()
                .filter(|&t| t != current.tier)
                .nth(n)
                .expect("three non-current tiers");
            let overprov = OVERPROV_GRID[rng.gen_range(0..OVERPROV_GRID.len())];
            for &member in self.cohort(idx) {
                if lookup(member).is_some() {
                    out.push((member, Assignment { tier, overprov }));
                }
            }
        } else {
            let pos = OVERPROV_GRID
                .iter()
                .position(|&f| (f - current.overprov).abs() < 1e-9)
                .unwrap_or(0);
            let next_pos = if rng.gen_bool(0.5) {
                (pos + 1).min(OVERPROV_GRID.len() - 1)
            } else {
                pos.saturating_sub(1)
            };
            out.push((
                job,
                Assignment {
                    tier: current.tier,
                    overprov: OVERPROV_GRID[next_pos],
                },
            ));
        }
    }

    /// Produce a random neighbour of `plan`, mutating the job at
    /// `cursor` (used by CAST++'s DFS traversal) or a random job when
    /// `cursor` is `None`.
    pub fn neighbor(
        &self,
        plan: &TieringPlan,
        rng: &mut StdRng,
        cursor: Option<usize>,
    ) -> TieringPlan {
        let mut next = plan.clone();
        let mut changes = Vec::new();
        self.propose(|j| plan.get(j), rng, cursor, &mut changes);
        for (job, a) in changes {
            next.assign(job, a);
        }
        next
    }

    /// Number of mutable jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether there is nothing to mutate.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn plan(jobs: &[u32]) -> TieringPlan {
        let mut p = TieringPlan::new();
        for &j in jobs {
            p.assign(JobId(j), Assignment::exact(Tier::PersSsd));
        }
        p
    }

    #[test]
    fn neighbor_differs_in_exactly_one_cohort() {
        let gen = NeighborGen::new(vec![JobId(0), JobId(1), JobId(2)], vec![]);
        let p = plan(&[0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let n = gen.neighbor(&p, &mut rng, None);
            let changed: Vec<JobId> = p
                .iter()
                .filter(|&(j, a)| n.get(j) != Some(a))
                .map(|(j, _)| j)
                .collect();
            assert!(changed.len() <= 1, "one-job mutation, got {changed:?}");
        }
    }

    #[test]
    fn group_moves_together() {
        let gen = NeighborGen::new(
            vec![JobId(0), JobId(1), JobId(2)],
            vec![vec![JobId(0), JobId(1)]],
        );
        let p = plan(&[0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = gen.neighbor(&p, &mut rng, None);
            let t0 = n.get(JobId(0)).unwrap().tier;
            let t1 = n.get(JobId(1)).unwrap().tier;
            assert_eq!(t0, t1, "reuse group must stay on one tier");
        }
    }

    #[test]
    fn factors_stay_on_grid_and_above_one() {
        let gen = NeighborGen::new(vec![JobId(0)], vec![]);
        let mut p = plan(&[0]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            p = gen.neighbor(&p, &mut rng, None);
            let f = p.get(JobId(0)).unwrap().overprov;
            assert!(OVERPROV_GRID.contains(&f), "off-grid factor {f}");
        }
    }

    #[test]
    fn cursor_targets_specific_job() {
        let gen = NeighborGen::new(vec![JobId(0), JobId(1)], vec![]);
        let p = plan(&[0, 1]);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = gen.neighbor(&p, &mut rng, Some(1));
            // Only job 1 may change.
            assert_eq!(n.get(JobId(0)), p.get(JobId(0)));
        }
    }

    #[test]
    fn empty_generator_returns_clone() {
        let gen = NeighborGen::new(vec![], vec![]);
        let p = plan(&[0]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(gen.neighbor(&p, &mut rng, None), p);
    }
}
