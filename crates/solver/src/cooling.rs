//! Cooling schedules for the simulated-annealing solver.
//!
//! Algorithm 2 adjusts a distance parameter `temp` downwards every
//! iteration (`Cooling(.)`), narrowing the search as it progresses.

use serde::{Deserialize, Serialize};

/// A cooling schedule: how temperature decays per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Cooling {
    /// `temp ← α · temp` — the classic geometric schedule.
    Geometric {
        /// Decay factor in `(0, 1)`.
        alpha: f64,
    },
    /// `temp ← temp − step`, floored at `min`.
    Linear {
        /// Amount subtracted each iteration.
        step: f64,
        /// Temperature floor.
        min: f64,
    },
}

impl Cooling {
    /// The default schedule used by CAST.
    pub fn default_geometric() -> Cooling {
        Cooling::Geometric { alpha: 0.998 }
    }

    /// Apply one cooling step.
    pub fn step(&self, temp: f64) -> f64 {
        match *self {
            Cooling::Geometric { alpha } => {
                debug_assert!((0.0..1.0).contains(&alpha));
                temp * alpha
            }
            Cooling::Linear { step, min } => (temp - step).max(min),
        }
    }

    /// Temperature after `n` steps from `t0`.
    pub fn after(&self, t0: f64, n: usize) -> f64 {
        match *self {
            Cooling::Geometric { alpha } => t0 * alpha.powi(n as i32),
            Cooling::Linear { step, min } => (t0 - step * n as f64).max(min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decays() {
        let c = Cooling::Geometric { alpha: 0.9 };
        let t1 = c.step(1.0);
        assert!((t1 - 0.9).abs() < 1e-12);
        assert!((c.after(1.0, 10) - 0.9f64.powi(10)).abs() < 1e-12);
    }

    #[test]
    fn linear_floors() {
        let c = Cooling::Linear {
            step: 0.3,
            min: 0.05,
        };
        assert!((c.step(1.0) - 0.7).abs() < 1e-12);
        assert_eq!(c.step(0.1), 0.05);
        assert_eq!(c.after(1.0, 100), 0.05);
    }

    #[test]
    fn after_matches_iterated_step() {
        let c = Cooling::default_geometric();
        let mut t = 2.0;
        for _ in 0..50 {
            t = c.step(t);
        }
        assert!((t - c.after(2.0, 50)).abs() < 1e-9);
    }
}
