//! Property-based tests for the solvers.

use proptest::prelude::*;

use cast_cloud::tier::Tier;
use cast_cloud::units::DataSize;
use cast_cloud::Catalog;
use cast_estimator::model::{CapacityCurve, ModelMatrix, PhaseBw};
use cast_estimator::mrcute::ClusterSpec;
use cast_estimator::Estimator;
use cast_solver::{
    evaluate, greedy_plan, restart_seed, AnnealConfig, Annealer, Assignment, EvalContext,
    GreedyMode, IncrementalEval, TieringPlan,
};
use cast_workload::apps::AppKind;
use cast_workload::dataset::{Dataset, DatasetId};
use cast_workload::job::{Job, JobId};
use cast_workload::profile::ProfileSet;
use cast_workload::spec::WorkloadSpec;

fn toy_estimator(nvm: usize) -> Estimator {
    let mut matrix = ModelMatrix::new();
    for app in AppKind::ALL {
        for tier in Tier::ALL {
            let base = match tier {
                Tier::EphSsd => 40.0,
                Tier::PersSsd => 1.0,
                Tier::PersHdd => 0.4,
                Tier::ObjStore => 15.0,
            };
            let samples: Vec<(f64, PhaseBw)> = (1..=4)
                .map(|i| {
                    let cap = 150.0 * i as f64;
                    let bw = if tier.scales_with_capacity() {
                        base * cap / 30.0
                    } else {
                        base
                    };
                    (
                        cap,
                        PhaseBw {
                            map: bw,
                            shuffle_reduce: bw * 0.8,
                        },
                    )
                })
                .collect();
            matrix.insert(app, tier, CapacityCurve::fit(&samples).expect("fit"));
        }
    }
    Estimator {
        matrix,
        catalog: Catalog::google_cloud(),
        cluster: ClusterSpec {
            nvm,
            map_slots: 16,
            reduce_slots: 8,
            task_startup_secs: 1.5,
        },
        profiles: ProfileSet::defaults(),
    }
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec(
        (prop::sample::select(AppKind::ALL.to_vec()), 2.0f64..200.0),
        1..8,
    )
    .prop_map(|jobs| {
        let mut spec = WorkloadSpec::empty();
        for (i, (app, gb)) in jobs.into_iter().enumerate() {
            let ds = DatasetId(i as u32);
            spec.datasets
                .push(Dataset::single_use(ds, DataSize::from_gb(gb)));
            spec.jobs.push(Job::with_default_layout(
                JobId(i as u32),
                app,
                ds,
                DataSize::from_gb(gb),
            ));
        }
        spec
    })
}

/// Like [`arb_spec`] but jobs may share their predecessor's dataset, so
/// reuse-aware evaluation (Eq. 7 shared-input discount) gets exercised.
fn arb_reuse_spec() -> impl Strategy<Value = WorkloadSpec> {
    prop::collection::vec(
        (
            prop::sample::select(AppKind::ALL.to_vec()),
            2.0f64..200.0,
            0usize..2,
        ),
        1..8,
    )
    .prop_map(|jobs| {
        let mut spec = WorkloadSpec::empty();
        for (i, (app, gb, share)) in jobs.into_iter().enumerate() {
            let ds = if share == 1 && !spec.datasets.is_empty() {
                spec.datasets[spec.datasets.len() - 1].id
            } else {
                let id = DatasetId(i as u32);
                spec.datasets
                    .push(Dataset::single_use(id, DataSize::from_gb(gb)));
                id
            };
            let size = spec
                .datasets
                .iter()
                .find(|d| d.id == ds)
                .expect("dataset exists")
                .size;
            spec.jobs
                .push(Job::with_default_layout(JobId(i as u32), app, ds, size));
        }
        spec
    })
}

/// A random move/undo script over a plan: for each step, which job to
/// touch, which tier and over-provisioning factor to move it to, and
/// whether to undo the move right after scoring it.
#[allow(clippy::type_complexity)]
fn arb_moves() -> impl Strategy<Value = Vec<(usize, usize, f64, usize)>> {
    prop::collection::vec(
        (0usize..64, 0usize..Tier::ALL.len(), 1.0f64..8.0, 0usize..2),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The annealer's best plan is never worse than its initial plan, for
    /// any seed and any starting tier.
    #[test]
    fn annealer_never_regresses(
        spec in arb_spec(),
        seed in 0u64..1_000,
        tier in prop::sample::select(Tier::ALL.to_vec()),
    ) {
        let est = toy_estimator(4);
        let ctx = EvalContext::new(&est, &spec);
        let init = TieringPlan::uniform(&spec, tier);
        let init_u = evaluate(&init, &ctx).expect("eval").utility;
        let cfg = AnnealConfig { iterations: 300, seed, ..AnnealConfig::default() };
        let out = Annealer::new(cfg).solve(&ctx, init).expect("anneal");
        prop_assert!(out.eval.utility + 1e-18 >= init_u);
        prop_assert_eq!(out.plan.len(), spec.jobs.len());
    }

    /// Greedy plans are complete and valid (Eq. 3 respected by
    /// construction).
    #[test]
    fn greedy_plans_are_well_formed(spec in arb_spec()) {
        let est = toy_estimator(4);
        let ctx = EvalContext::new(&est, &spec);
        for mode in [GreedyMode::ExactFit, GreedyMode::OverProvisioned] {
            let plan = greedy_plan(&ctx, mode).expect("greedy");
            prop_assert_eq!(plan.len(), spec.jobs.len());
            for (job, a) in plan.iter() {
                prop_assert!(a.validate(job).is_ok());
            }
            let eval = evaluate(&plan, &ctx).expect("evaluation");
            prop_assert!(eval.utility.is_finite() && eval.utility > 0.0);
            prop_assert!(eval.time.secs().is_finite() && eval.time.secs() > 0.0);
        }
    }

    /// Evaluation is a pure function of the plan.
    #[test]
    fn evaluation_is_deterministic(spec in arb_spec()) {
        let est = toy_estimator(4);
        let ctx = EvalContext::new(&est, &spec);
        let plan = TieringPlan::uniform(&spec, Tier::PersSsd);
        let a = evaluate(&plan, &ctx).expect("eval");
        let b = evaluate(&plan, &ctx).expect("eval");
        prop_assert_eq!(a, b);
    }

    /// Raising one job's over-provisioning factor never increases the
    /// plan's estimated completion time.
    #[test]
    fn overprovisioning_never_slows_the_plan(
        spec in arb_spec(),
        idx in 0usize..8,
    ) {
        let est = toy_estimator(4);
        let ctx = EvalContext::new(&est, &spec);
        let job = spec.jobs[idx % spec.jobs.len()].id;
        let base = TieringPlan::uniform(&spec, Tier::PersSsd);
        let mut boosted = base.clone();
        boosted.assign(job, Assignment { tier: Tier::PersSsd, overprov: 8.0 });
        let t_base = evaluate(&base, &ctx).expect("eval").time;
        let t_boost = evaluate(&boosted, &ctx).expect("eval").time;
        prop_assert!(t_boost.secs() <= t_base.secs() + 1e-9);
    }

    /// The incremental scorer is bit-identical to the full oracle over any
    /// random move/undo script, in both plain and reuse-aware evaluation.
    #[test]
    fn incremental_matches_oracle_bitwise(
        spec in arb_reuse_spec(),
        moves in arb_moves(),
        tier in prop::sample::select(Tier::ALL.to_vec()),
        reuse_aware in 0usize..2,
    ) {
        let est = toy_estimator(4);
        let ctx = if reuse_aware == 1 {
            EvalContext::new(&est, &spec).with_reuse_awareness()
        } else {
            EvalContext::new(&est, &spec)
        };
        let init = TieringPlan::uniform(&spec, tier);
        let mut state = IncrementalEval::new(&ctx, &init).expect("state");
        let mut undo = Vec::new();
        for (job_idx, tier_idx, overprov, do_undo) in moves {
            let job = spec.jobs[job_idx % spec.jobs.len()].id;
            let change = (job, Assignment { tier: Tier::ALL[tier_idx], overprov });
            state.apply(std::slice::from_ref(&change), &mut undo);
            let fast = state.score().expect("incremental score");
            let oracle = evaluate(&state.to_plan(), &ctx).expect("oracle").utility;
            prop_assert_eq!(fast.to_bits(), oracle.to_bits());
            if do_undo == 1 {
                state.restore(&undo);
                let fast = state.score().expect("incremental score");
                let oracle = evaluate(&state.to_plan(), &ctx).expect("oracle").utility;
                prop_assert_eq!(fast.to_bits(), oracle.to_bits());
            }
        }
    }
}

/// Parallel multi-restart annealing is deterministic: for every restart
/// count the solve returns the same plan across repeated runs, and the
/// winner equals a hand-rolled sequential best-of-N over the same derived
/// seeds — i.e. the outcome is independent of thread scheduling.
#[test]
fn multi_restart_is_schedule_independent() {
    let spec = cast_workload::synth::prediction_workload();
    let est = toy_estimator(4);
    let ctx = EvalContext::new(&est, &spec);
    let init = TieringPlan::uniform(&spec, Tier::PersHdd);
    let base = 0xCA57u64;
    for restarts in 1..=4 {
        let cfg = AnnealConfig {
            iterations: 400,
            seed: base,
            restarts,
            ..AnnealConfig::default()
        };
        let a = Annealer::new(cfg).solve(&ctx, init.clone()).expect("solve");
        let b = Annealer::new(cfg).solve(&ctx, init.clone()).expect("solve");
        assert_eq!(a.plan, b.plan, "restarts={restarts}: plan must be stable");
        assert_eq!(a.eval.utility.to_bits(), b.eval.utility.to_bits());

        // Sequential reference: run each chain alone and pick the best by
        // (score desc, seed asc) — the solver's published selection rule.
        let mut ref_best: Option<(f64, u64, TieringPlan)> = None;
        for r in 0..restarts {
            let seed = restart_seed(base, r);
            let single = Annealer::new(AnnealConfig {
                seed,
                restarts: 1,
                ..cfg
            })
            .solve(&ctx, init.clone())
            .expect("chain");
            let u = single.eval.utility;
            let wins = match &ref_best {
                None => true,
                Some((bu, bs, _)) => u > *bu || (u == *bu && seed < *bs),
            };
            if wins {
                ref_best = Some((u, seed, single.plan));
            }
        }
        let (ref_u, _, ref_plan) = ref_best.expect("at least one chain");
        assert_eq!(
            a.plan, ref_plan,
            "restarts={restarts}: thread-schedule dependent winner"
        );
        assert_eq!(a.eval.utility.to_bits(), ref_u.to_bits());
    }
}

#[test]
fn plan_serde_roundtrip() {
    let mut plan = TieringPlan::new();
    plan.assign(JobId(0), Assignment::exact(Tier::EphSsd));
    plan.assign(
        JobId(7),
        Assignment {
            tier: Tier::ObjStore,
            overprov: 4.0,
        },
    );
    let json = serde_json::to_string(&plan).expect("serialise");
    let back: TieringPlan = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(back, plan);
}
