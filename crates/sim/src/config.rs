//! Simulator configuration: the cluster being simulated.

use serde::{Deserialize, Serialize};

use cast_cloud::provision::{ProvisionPlan, Provisioner};
use cast_cloud::tier::{PerTier, Tier};
use cast_cloud::units::{Bandwidth, DataSize};
use cast_cloud::{Catalog, VmType};

use crate::fault::FaultPlan;

/// Default cap on engine steps before a run is declared runaway.
pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

/// How jobs contend for the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Concurrency {
    /// Jobs run strictly back-to-back (the execution model behind Eq. 4,
    /// and how the paper's trace replays drive a saturated cluster).
    Sequential,
    /// Independent jobs run concurrently, sharing slots; workflow edges are
    /// still honoured.
    Parallel,
}

/// A simulated cluster: VM fleet plus its per-tier storage provisioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The provider catalog (storage performance, prices, request
    /// overheads).
    pub catalog: Catalog,
    /// Worker VM shape.
    pub vm: VmType,
    /// Number of worker VMs.
    pub nvm: usize,
    /// Per-VM provisioned capacity on each tier (drives volume bandwidth
    /// via the catalog's scaling models).
    pub plan: ProvisionPlan,
    /// Fraction of VM memory usable as write-back page cache for
    /// intermediate data. Hadoop spills transit the page cache; when a
    /// job's intermediate data fits, most of it never touches the volume.
    pub cache_fraction: f64,
    /// Deterministic per-task speed jitter amplitude (0 = all tasks of a
    /// wave identical; 0.08 gives ±8 % spread, matching the task-time
    /// variance of a real cluster).
    pub jitter: f64,
    /// Job scheduling mode.
    pub concurrency: Concurrency,
    /// Parallel staging/transfer streams per VM (a distcp-style copy job
    /// runs many tasks, amortising per-object request overheads).
    pub transfer_streams_per_vm: usize,
    /// Fixed per-task framework overhead (JVM launch + scheduling),
    /// seconds. Sets the runtime floor that makes further volume
    /// over-provisioning futile beyond a point (Fig. 2's plateau).
    pub task_startup_secs: f64,
    /// Cluster-wide object-store throughput ceiling (MB/s): per-VM streams
    /// see the Table 1 rate, but the bucket saturates once enough VMs pull
    /// concurrently.
    pub objstore_cluster_mbps: f64,
    /// Record a per-task [`crate::trace::Trace`] during simulation
    /// (off by default; adds memory proportional to task count).
    pub collect_trace: bool,
    /// Fault-injection scenario. The default (empty) plan reproduces
    /// fault-free simulations bit-identically.
    pub faults: FaultPlan,
    /// Maximum engine steps before the run aborts with
    /// [`crate::error::SimError::EventBudgetExhausted`].
    pub event_budget: u64,
}

impl SimConfig {
    /// A cluster of `nvm` workers with per-tier *aggregate* capacities,
    /// provisioned through the catalog rules.
    pub fn with_aggregate_capacity(
        catalog: Catalog,
        nvm: usize,
        aggregate: &PerTier<DataSize>,
    ) -> Result<SimConfig, cast_cloud::CloudError> {
        if nvm == 0 {
            return Err(cast_cloud::CloudError::EmptyCluster);
        }
        let vm = catalog.worker_vm.clone();
        let plan = Provisioner::new(&catalog).plan(aggregate, nvm)?;
        Ok(SimConfig {
            catalog,
            vm,
            nvm,
            plan,
            cache_fraction: 0.75,
            jitter: 0.08,
            concurrency: Concurrency::Sequential,
            transfer_streams_per_vm: 4,
            task_startup_secs: 1.5,
            objstore_cluster_mbps: cast_cloud::catalog::OBJSTORE_CLUSTER_MBPS,
            collect_trace: false,
            faults: FaultPlan::default(),
            event_budget: DEFAULT_EVENT_BUDGET,
        })
    }

    /// The paper's evaluation cluster: 25 × n1-standard-16 (400 cores),
    /// with `aggregate` capacity per tier.
    pub fn paper_cluster(
        aggregate: &PerTier<DataSize>,
    ) -> Result<SimConfig, cast_cloud::CloudError> {
        SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 25, aggregate)
    }

    /// Sequential bandwidth one VM gets on `tier` under this provisioning.
    pub fn vm_tier_bandwidth(&self, tier: Tier) -> Bandwidth {
        Provisioner::new(&self.catalog).per_vm_bandwidth(&self.plan, tier)
    }

    /// Total map slots across the cluster.
    pub fn map_slots(&self) -> usize {
        self.vm.map_slots * self.nvm
    }

    /// Total reduce slots across the cluster.
    pub fn reduce_slots(&self) -> usize {
        self.vm.reduce_slots * self.nvm
    }

    /// Cluster-wide page-cache budget for intermediate data.
    pub fn cache_budget(&self) -> DataSize {
        DataSize::from_gb(self.vm.memory_gb * self.cache_fraction) * self.nvm as f64
    }

    /// Page-cache hit fraction for repeated reads of an `input`-sized
    /// dataset (iterative applications re-reading their input).
    pub fn input_cache_hit(&self, input: DataSize) -> f64 {
        if input.bytes() <= 0.0 {
            return 1.0;
        }
        (self.cache_budget() / input).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(ssd_gb: f64) -> PerTier<DataSize> {
        let mut a = PerTier::from_fn(|_| DataSize::ZERO);
        *a.get_mut(Tier::PersSsd) = DataSize::from_gb(ssd_gb);
        a
    }

    #[test]
    fn paper_cluster_has_400_cores() {
        let cfg = SimConfig::paper_cluster(&agg(1000.0)).unwrap();
        assert_eq!(cfg.nvm * cfg.vm.vcpus, 400);
        assert_eq!(cfg.map_slots(), 400);
        assert_eq!(cfg.reduce_slots(), 200);
    }

    #[test]
    fn vm_tier_bandwidth_tracks_provisioning() {
        let small = SimConfig::paper_cluster(&agg(25.0 * 100.0)).unwrap();
        let large = SimConfig::paper_cluster(&agg(25.0 * 500.0)).unwrap();
        let bw_small = small.vm_tier_bandwidth(Tier::PersSsd).mb_per_sec();
        let bw_large = large.vm_tier_bandwidth(Tier::PersSsd).mb_per_sec();
        assert!(bw_large > 4.0 * bw_small, "{bw_small} vs {bw_large}");
    }

    #[test]
    fn input_cache_hit_clamps() {
        let cfg = SimConfig::paper_cluster(&agg(1000.0)).unwrap();
        // Cache budget: 25 VMs × 60 GB × 0.75 = 1125 GB.
        assert_eq!(cfg.input_cache_hit(DataSize::from_gb(100.0)), 1.0);
        assert_eq!(cfg.input_cache_hit(DataSize::ZERO), 1.0);
        let h = cfg.input_cache_hit(DataSize::from_gb(2250.0));
        assert!((h - 0.5).abs() < 1e-9);
        assert!(cfg.input_cache_hit(DataSize::from_tb(100.0)) < 0.02);
    }

    #[test]
    fn objstore_bandwidth_exists_without_provisioning() {
        let cfg = SimConfig::paper_cluster(&agg(100.0)).unwrap();
        assert!(cfg.vm_tier_bandwidth(Tier::ObjStore).mb_per_sec() > 0.0);
    }

    #[test]
    fn zero_vm_cluster_is_rejected() {
        let err = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 0, &agg(100.0))
            .unwrap_err();
        assert_eq!(err, cast_cloud::CloudError::EmptyCluster);
    }

    #[test]
    fn default_fault_plan_is_empty() {
        let cfg = SimConfig::paper_cluster(&agg(1000.0)).unwrap();
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn sim_config_roundtrips_through_json() {
        // Runtime checkpoints serialize the full cluster configuration —
        // including a populated fault plan — and must get it back intact.
        let mut cfg = SimConfig::paper_cluster(&agg(1000.0)).unwrap();
        cfg.concurrency = Concurrency::Parallel;
        cfg.collect_trace = true;
        cfg.faults = crate::fault::FaultPlan {
            task_failure_prob: 0.01,
            ..crate::fault::FaultPlan::default()
        };
        cfg.faults.vm_crashes.push(crate::fault::VmCrash {
            vm: 3,
            at_secs: 120.0,
            down_secs: Some(60.0),
        });
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: SimConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }
}
