//! Simulator error type.

use std::fmt;

/// Errors raised while preparing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A job in the workload has no placement.
    MissingPlacement(u32),
    /// A placement references a block tier with zero provisioned capacity.
    UnprovisionedTier {
        /// Offending job.
        job: u32,
        /// Tier lacking capacity.
        tier: String,
    },
    /// A placement's input split fractions are invalid.
    InvalidSplit(u32),
    /// The engine made no progress. Carries whatever is known about the
    /// blocking work so a zero-bandwidth placement (or a cluster that
    /// never recovers) is diagnosable from the error alone.
    Stalled {
        /// Simulated time at the stall.
        at_secs: f64,
        /// Id of the blocked job, when one is identifiable.
        job: Option<u32>,
        /// Phase the blocked job was in.
        phase: Option<&'static str>,
        /// Tier the blocked stage was reading/writing, when known.
        tier: Option<String>,
    },
    /// A task exhausted its retry budget under fault injection; the owning
    /// job cannot complete.
    JobFailed {
        /// Failed job.
        job: u32,
        /// Attempts the fatal task made (first run + retries).
        attempts: u32,
    },
    /// A dataset lost more redundancy shards than its scheme tolerates;
    /// the data is unrecoverable and dependent work cannot run.
    DataLoss {
        /// Dataset that fell below its read threshold.
        dataset: u32,
        /// Shards lost.
        lost: u32,
        /// Losses the scheme could have survived.
        tolerance: u32,
    },
    /// A migration's `after` chain references an id that does not appear
    /// earlier in the migration list.
    InvalidMigrationChain {
        /// Migration with the dangling dependency.
        id: u32,
        /// The referenced id that was not found before it.
        missing: u32,
    },
    /// A what-if placement swap targeted a job that has already started
    /// (only still-waiting jobs can be redirected on a forked engine).
    PlacementLocked {
        /// Job whose placement was frozen.
        job: u32,
        /// Phase the job had reached.
        phase: &'static str,
    },
    /// The configured [`crate::fault::FaultPlan`] is malformed.
    InvalidFaultPlan {
        /// What was wrong.
        reason: String,
    },
    /// Event budget exhausted — almost certainly a bug or a degenerate
    /// configuration (e.g. zero-bandwidth tier on the critical path).
    /// Carries a snapshot of the run so a runaway is diagnosable without
    /// re-running under tracing.
    EventBudgetExhausted {
        /// Simulated time when the budget ran out.
        at_secs: f64,
        /// Engine steps executed (equals the configured budget).
        steps: u64,
        /// Tasks in flight at exhaustion.
        active_tasks: usize,
        /// Jobs not yet `Done` at exhaustion.
        active_jobs: usize,
    },
    /// Cloud-model error during provisioning.
    Cloud(cast_cloud::CloudError),
    /// Workload-model error.
    Workload(cast_workload::WorkloadError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingPlacement(j) => write!(f, "job #{j} has no placement"),
            SimError::UnprovisionedTier { job, tier } => {
                write!(f, "job #{job} placed on {tier} which has no capacity")
            }
            SimError::InvalidSplit(j) => write!(f, "job #{j} has an invalid input split"),
            SimError::Stalled {
                at_secs,
                job,
                phase,
                tier,
            } => {
                write!(f, "simulation stalled at t={at_secs:.3}s")?;
                if let Some(j) = job {
                    write!(f, " on job #{j}")?;
                }
                if let Some(p) = phase {
                    write!(f, " in phase {p}")?;
                }
                if let Some(t) = tier {
                    write!(f, " blocked on tier {t}")?;
                }
                Ok(())
            }
            SimError::JobFailed { job, attempts } => {
                write!(f, "job #{job} failed: a task exhausted {attempts} attempts")
            }
            SimError::DataLoss {
                dataset,
                lost,
                tolerance,
            } => write!(
                f,
                "dataset #{dataset} lost {lost} shards (scheme tolerates {tolerance}): \
                 data is unrecoverable"
            ),
            SimError::InvalidMigrationChain { id, missing } => write!(
                f,
                "migration #{id} waits on migration #{missing}, which does not \
                 precede it"
            ),
            SimError::PlacementLocked { job, phase } => write!(
                f,
                "job #{job} is already in phase {phase}: placements can only \
                 be swapped while a job is waiting"
            ),
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::EventBudgetExhausted {
                at_secs,
                steps,
                active_tasks,
                active_jobs,
            } => write!(
                f,
                "simulation event budget exhausted after {steps} steps at \
                 t={at_secs:.3}s with {active_tasks} active tasks across \
                 {active_jobs} unfinished jobs"
            ),
            SimError::Cloud(e) => write!(f, "cloud model error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<cast_cloud::CloudError> for SimError {
    fn from(e: cast_cloud::CloudError) -> Self {
        SimError::Cloud(e)
    }
}

impl From<cast_workload::WorkloadError> for SimError {
    fn from(e: cast_workload::WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_job() {
        assert!(SimError::MissingPlacement(4).to_string().contains("#4"));
        let e = SimError::UnprovisionedTier {
            job: 2,
            tier: "persHDD".into(),
        };
        assert!(e.to_string().contains("persHDD"));
    }

    #[test]
    fn stalled_display_includes_context() {
        let e = SimError::Stalled {
            at_secs: 12.5,
            job: Some(3),
            phase: Some("map"),
            tier: Some("persHDD".into()),
        };
        let msg = e.to_string();
        assert!(msg.contains("t=12.500"));
        assert!(msg.contains("#3"));
        assert!(msg.contains("map"));
        assert!(msg.contains("persHDD"));
        // A context-free stall still renders.
        let bare = SimError::Stalled {
            at_secs: 1.0,
            job: None,
            phase: None,
            tier: None,
        };
        assert!(bare.to_string().contains("stalled"));
    }

    #[test]
    fn job_failed_display() {
        let e = SimError::JobFailed {
            job: 7,
            attempts: 4,
        };
        assert!(e.to_string().contains("#7"));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn event_budget_display_includes_snapshot() {
        let e = SimError::EventBudgetExhausted {
            at_secs: 250.25,
            steps: 1000,
            active_tasks: 12,
            active_jobs: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("1000 steps"));
        assert!(msg.contains("t=250.250"));
        assert!(msg.contains("12 active tasks"));
        assert!(msg.contains("3 unfinished jobs"));
    }

    #[test]
    fn data_loss_display() {
        let e = SimError::DataLoss {
            dataset: 3,
            lost: 3,
            tolerance: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("#3"));
        assert!(msg.contains("3 shards"));
        assert!(msg.contains("tolerates 2"));
    }

    #[test]
    fn conversions() {
        let ce = cast_cloud::CloudError::UnknownTier("x".into());
        let se: SimError = ce.clone().into();
        assert_eq!(se, SimError::Cloud(ce));
    }
}
