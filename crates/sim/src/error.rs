//! Simulator error type.

use std::fmt;

/// Errors raised while preparing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A job in the workload has no placement.
    MissingPlacement(u32),
    /// A placement references a block tier with zero provisioned capacity.
    UnprovisionedTier {
        /// Offending job.
        job: u32,
        /// Tier lacking capacity.
        tier: String,
    },
    /// A placement's input split fractions are invalid.
    InvalidSplit(u32),
    /// The engine made no progress (internal invariant violation).
    Stalled {
        /// Simulated time at the stall.
        at_secs: f64,
    },
    /// Event budget exhausted — almost certainly a bug or a degenerate
    /// configuration (e.g. zero-bandwidth tier on the critical path).
    EventBudgetExhausted,
    /// Cloud-model error during provisioning.
    Cloud(cast_cloud::CloudError),
    /// Workload-model error.
    Workload(cast_workload::WorkloadError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingPlacement(j) => write!(f, "job #{j} has no placement"),
            SimError::UnprovisionedTier { job, tier } => {
                write!(f, "job #{job} placed on {tier} which has no capacity")
            }
            SimError::InvalidSplit(j) => write!(f, "job #{j} has an invalid input split"),
            SimError::Stalled { at_secs } => {
                write!(f, "simulation stalled at t={at_secs:.3}s")
            }
            SimError::EventBudgetExhausted => write!(f, "simulation event budget exhausted"),
            SimError::Cloud(e) => write!(f, "cloud model error: {e}"),
            SimError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<cast_cloud::CloudError> for SimError {
    fn from(e: cast_cloud::CloudError) -> Self {
        SimError::Cloud(e)
    }
}

impl From<cast_workload::WorkloadError> for SimError {
    fn from(e: cast_workload::WorkloadError) -> Self {
        SimError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_job() {
        assert!(SimError::MissingPlacement(4).to_string().contains("#4"));
        let e = SimError::UnprovisionedTier {
            job: 2,
            tier: "persHDD".into(),
        };
        assert!(e.to_string().contains("persHDD"));
    }

    #[test]
    fn conversions() {
        let ce = cast_cloud::CloudError::UnknownTier("x".into());
        let se: SimError = ce.clone().into();
        assert_eq!(se, SimError::Cloud(ce));
    }
}
