//! Expansion of jobs into per-phase task templates.
//!
//! A [`JobRun`] tracks one job through its phase sequence
//! `StageIn → Map → Reduce → StageOut` (phases without work are skipped)
//! and generates the task templates for each phase on entry. Per-task data
//! skew is modelled with a deterministic multiplicative jitter on split
//! sizes, seeded per job, so simulated task times vary like a real
//! cluster's without breaking reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use cast_cloud::tier::Tier;
use cast_workload::job::Job;
use cast_workload::profile::AppProfile;

use crate::config::SimConfig;
use crate::placement::JobPlacement;
use crate::task::{SlotKind, StageLabel, StageSpec, TaskTemplate};

/// Phase progression of a job inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Dependencies not yet satisfied.
    Waiting,
    /// Input download / cross-tier transfer.
    StageIn,
    /// Map phase.
    Map,
    /// Shuffle + reduce phase.
    Reduce,
    /// Output upload.
    StageOut,
    /// All work finished.
    Done,
}

impl JobPhase {
    /// Human-readable phase name (used in diagnostics).
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Waiting => "waiting",
            JobPhase::StageIn => "stage-in",
            JobPhase::Map => "map",
            JobPhase::Reduce => "reduce",
            JobPhase::StageOut => "stage-out",
            JobPhase::Done => "done",
        }
    }
}

/// Per-job execution state.
#[derive(Debug, Clone)]
pub struct JobRun {
    /// The workload job being executed.
    pub job: Job,
    /// Its placement.
    pub placement: JobPlacement,
    /// Application profile.
    pub profile: AppProfile,
    /// Current phase.
    pub phase: JobPhase,
    /// Templates not yet dispatched for the current phase.
    pub pending: VecDeque<TaskTemplate>,
    /// Tasks of the current phase in flight.
    pub active: usize,
    /// Engine indices of jobs that must complete first.
    pub deps: Vec<usize>,
    /// Simulated time the job became runnable.
    pub submitted: f64,
    /// Simulated time the first phase started (NaN = not started).
    pub started: f64,
    /// Simulated time the job finished (NaN = not finished).
    pub finished: f64,
    /// Simulated time the current phase was entered.
    pub phase_started: f64,
    /// Accumulated per-phase wall times, indexed by [`StageLabel`] order
    /// `[StageIn, Map, Shuffle(unused), Reduce, StageOut]`.
    pub phase_secs: [f64; 5],
    /// Failed/killed tasks of the current phase waiting out their retry
    /// backoff (the phase cannot drain while any are pending).
    pub retries_pending: usize,
    /// Task attempts of this job that failed mid-run.
    pub failures: u32,
    /// Retry attempts scheduled for this job.
    pub retries: u32,
    /// Speculative backups launched for this job.
    pub speculations: u32,
    /// Tasks of this job killed by crashes or lost speculative races.
    pub kills: u32,
    /// Pure data-movement run (tier migration): only the stage-in
    /// transfer executes; map/reduce/stage-out phases are empty.
    pub transfer_only: bool,
    rng: StdRng,
}

impl JobRun {
    /// Create the run in `Waiting` state.
    pub fn new(job: Job, placement: JobPlacement, profile: AppProfile, deps: Vec<usize>) -> JobRun {
        JobRun {
            rng: StdRng::seed_from_u64(0x5ca1ab1e ^ u64::from(job.id.0)),
            job,
            placement,
            profile,
            phase: JobPhase::Waiting,
            pending: VecDeque::new(),
            active: 0,
            deps,
            submitted: f64::NAN,
            started: f64::NAN,
            finished: f64::NAN,
            phase_started: f64::NAN,
            phase_secs: [0.0; 5],
            retries_pending: 0,
            failures: 0,
            retries: 0,
            speculations: 0,
            kills: 0,
            transfer_only: false,
        }
    }

    /// Create a pure data-migration run moving `job.input` bytes from
    /// `from` to `to`. The run executes exactly one phase — a stage-in
    /// transfer whose streams contend for tier bandwidth (and the NIC)
    /// like any other I/O — then completes. Jobs that must observe the
    /// moved data list the migration's engine index in their `deps`, so
    /// they keep running against their old placement until the move
    /// finishes.
    pub fn migration(job: Job, from: Tier, to: Tier, profile: AppProfile) -> JobRun {
        let placement = JobPlacement {
            input: crate::placement::SplitPlacement::single(to),
            inter: to,
            output: to,
            stage_in_from: Some(from),
            stage_in_bytes: Some(job.input),
            stage_out_to: None,
        };
        let mut run = JobRun::new(job, placement, profile, Vec::new());
        run.transfer_only = true;
        run
    }

    /// Whether the current phase has fully drained (no templates waiting,
    /// no tasks in flight, no retries pending their backoff).
    pub fn phase_drained(&self) -> bool {
        self.pending.is_empty() && self.active == 0 && self.retries_pending == 0
    }

    /// Record the current phase's wall time and enter the next phase with
    /// work, generating its task templates. Returns the new phase.
    pub fn advance_phase(&mut self, now: f64, cfg: &SimConfig) -> JobPhase {
        // Close out the finished phase.
        match self.phase {
            JobPhase::StageIn => self.phase_secs[0] += now - self.phase_started,
            JobPhase::Map => self.phase_secs[1] += now - self.phase_started,
            JobPhase::Reduce => self.phase_secs[3] += now - self.phase_started,
            JobPhase::StageOut => self.phase_secs[4] += now - self.phase_started,
            JobPhase::Waiting | JobPhase::Done => {}
        }
        loop {
            let next = match self.phase {
                JobPhase::Waiting => JobPhase::StageIn,
                JobPhase::StageIn => JobPhase::Map,
                JobPhase::Map => JobPhase::Reduce,
                JobPhase::Reduce => JobPhase::StageOut,
                JobPhase::StageOut | JobPhase::Done => JobPhase::Done,
            };
            self.phase = next;
            if next == JobPhase::Done {
                self.finished = now;
                return next;
            }
            let tasks = match next {
                JobPhase::StageIn => self.stage_in_tasks(cfg),
                JobPhase::Map => self.map_tasks(cfg),
                JobPhase::Reduce => self.reduce_tasks(cfg),
                JobPhase::StageOut => self.stage_out_tasks(cfg),
                _ => unreachable!(),
            };
            if !tasks.is_empty() {
                if self.started.is_nan() {
                    self.started = now;
                }
                self.phase_started = now;
                self.pending = tasks.into();
                return next;
            }
            // Empty phase: fall through to the next one.
        }
    }

    /// Multiplicative per-task skew factor in `[1-jitter, 1+jitter]`.
    fn skew(&mut self, jitter: f64) -> f64 {
        if jitter <= 0.0 {
            1.0
        } else {
            1.0 + jitter * (self.rng.gen::<f64>() * 2.0 - 1.0)
        }
    }

    fn overhead(&self, tier: Tier, cfg: &SimConfig) -> f64 {
        cfg.catalog.service(tier).request_overhead.secs()
    }

    /// One transfer stream per VM moving the input from `stage_in_from`
    /// onto the input tier.
    fn stage_in_tasks(&mut self, cfg: &SimConfig) -> Vec<TaskTemplate> {
        let Some(src) = self.placement.stage_in_from else {
            return Vec::new();
        };
        // `src == dst` is intentional work, not a no-op: the durability
        // layer models erasure-reconstruction and repair traffic as a
        // read+write stream over the same tier's volumes.
        let dst = self.placement.input.primary();
        let bytes = self
            .placement
            .stage_in_bytes
            .map(|b| b.mb())
            .unwrap_or_else(|| self.job.input.mb());
        self.transfer_tasks(cfg, src, dst, bytes, StageLabel::StageIn)
    }

    /// One transfer stream per VM uploading the output to `stage_out_to`.
    fn stage_out_tasks(&mut self, cfg: &SimConfig) -> Vec<TaskTemplate> {
        let Some(dst) = self.placement.stage_out_to else {
            return Vec::new();
        };
        let src = self.placement.output;
        if src == dst {
            return Vec::new();
        }
        let bytes = self.job.output(&self.profile).mb();
        self.transfer_tasks(cfg, src, dst, bytes, StageLabel::StageOut)
    }

    fn transfer_tasks(
        &mut self,
        cfg: &SimConfig,
        src: Tier,
        dst: Tier,
        total_mb: f64,
        label: StageLabel,
    ) -> Vec<TaskTemplate> {
        if total_mb <= 0.0 {
            return Vec::new();
        }
        let n = cfg.nvm * cfg.transfer_streams_per_vm.max(1);
        let per_stream = total_mb / n as f64;
        // Objects move in ~256 MB chunks; each pays the per-request setup
        // of whichever endpoint is an object store.
        let files_per_stream = (per_stream / 256.0).ceil().max(1.0);
        let fixed = files_per_stream * (self.overhead(src, cfg) + self.overhead(dst, cfg));
        let net = if src.is_block() && src != Tier::EphSsd
            || dst.is_block() && dst != Tier::EphSsd
            || src == Tier::ObjStore
            || dst == Tier::ObjStore
        {
            1.0
        } else {
            0.0
        };
        (0..n)
            .map(|_| {
                let skew = self.skew(cfg.jitter);
                TaskTemplate {
                    slot: SlotKind::Transfer,
                    stages: vec![StageSpec {
                        label,
                        fixed,
                        units: per_stream * skew,
                        read: Some((src, 1.0)),
                        write: Some((dst, 1.0)),
                        net_ratio: net,
                        rate_cap: f64::INFINITY,
                    }],
                }
            })
            .collect()
    }

    /// Map tasks, allocated across the input split's tiers proportionally
    /// to their fractions (Fig. 5's fine-grained partitioning).
    fn map_tasks(&mut self, cfg: &SimConfig) -> Vec<TaskTemplate> {
        if self.transfer_only {
            return Vec::new();
        }
        let m = self.job.maps.max(1);
        let split_mb = self.job.input.mb() / m as f64;
        // Spills are written through to the volume: a write-back cache
        // cannot absorb a sustained intermediate stream.
        let sel_eff = self.profile.map_selectivity;
        let inter_tier = self.placement.inter;
        // Iterative apps re-read the input every pass: block tiers serve
        // re-reads from the page cache, the object store re-fetches.
        let iters = self.profile.iterations.max(1) as f64;
        let hit = cfg.input_cache_hit(self.job.input);
        let read_ratio_block = 1.0 + (iters - 1.0) * (1.0 - hit);
        let read_ratio_obj = iters;

        // Distribute m tasks over split parts (largest remainder).
        let mut counts: Vec<(Tier, usize)> = Vec::new();
        let mut assigned = 0usize;
        for (i, &(tier, frac)) in self.placement.input.parts.iter().enumerate() {
            let n = if i + 1 == self.placement.input.parts.len() {
                m - assigned
            } else {
                ((m as f64 * frac).round() as usize).min(m - assigned)
            };
            assigned += n;
            counts.push((tier, n));
        }

        let mut out = Vec::with_capacity(m);
        for (tier, n) in counts {
            for _ in 0..n {
                let skew = self.skew(cfg.jitter);
                let fixed = cfg.task_startup_secs
                    + self.profile.input_files_per_map as f64 * self.overhead(tier, cfg);
                let read_ratio = if tier == Tier::ObjStore {
                    read_ratio_obj
                } else {
                    read_ratio_block
                };
                let net_ratio =
                    net_part(tier, read_ratio, cfg) + net_part(inter_tier, sel_eff, cfg);
                out.push(TaskTemplate {
                    slot: SlotKind::Map,
                    stages: vec![StageSpec {
                        label: StageLabel::Map,
                        fixed,
                        units: split_mb * skew,
                        read: Some((tier, read_ratio)),
                        write: (sel_eff > 0.0).then_some((inter_tier, sel_eff)),
                        net_ratio,
                        rate_cap: self
                            .profile
                            .per_task_io_cap
                            .mb_per_sec()
                            .min(self.profile.map_rate.mb_per_sec()),
                    }],
                });
            }
        }
        out
    }

    /// Reduce tasks: a shuffle-fetch stage followed by the reduce stream.
    fn reduce_tasks(&mut self, cfg: &SimConfig) -> Vec<TaskTemplate> {
        if self.transfer_only {
            return Vec::new();
        }
        let r = self.job.reduces.max(1);
        let inter = self.job.inter(&self.profile);
        let output = self.job.output(&self.profile);
        if inter.mb() <= 0.0 && output.mb() <= 0.0 {
            return Vec::new();
        }
        let per_fetch = inter.mb() / r as f64;
        let inter_tier = self.placement.inter;
        let out_tier = self.placement.output;
        // Bytes written per byte of intermediate consumed.
        let out_ratio = if inter.mb() > 0.0 {
            output.mb() / inter.mb()
        } else {
            0.0
        };
        // Fraction of shuffle traffic that crosses the network in an
        // all-to-all exchange.
        let remote_frac = if cfg.nvm > 1 {
            (cfg.nvm - 1) as f64 / cfg.nvm as f64
        } else {
            0.0
        };
        let cap = self.profile.per_task_io_cap.mb_per_sec();
        (0..r)
            .map(|_| {
                let skew = self.skew(cfg.jitter);
                let fetch = StageSpec {
                    label: StageLabel::Shuffle,
                    fixed: cfg.task_startup_secs,
                    units: per_fetch * skew,
                    read: (per_fetch > 0.0).then_some((inter_tier, 1.0)),
                    write: None,
                    net_ratio: remote_frac,
                    rate_cap: cap,
                };
                let out_files = self.profile.output_files_per_reduce as f64;
                let reduce = StageSpec {
                    label: StageLabel::Reduce,
                    fixed: out_files * self.overhead(out_tier, cfg),
                    units: per_fetch * skew,
                    read: None,
                    write: (out_ratio > 0.0).then_some((out_tier, out_ratio)),
                    net_ratio: net_part(out_tier, out_ratio, cfg),
                    rate_cap: cap.min(self.profile.reduce_rate.mb_per_sec()),
                };
                TaskTemplate {
                    slot: SlotKind::Reduce,
                    stages: vec![fetch, reduce],
                }
            })
            .collect()
    }
}

/// NIC bytes-per-unit contributed by touching `tier` with `ratio` bytes per
/// unit: network-attached tiers (persistent volumes, object store) cross
/// the NIC, VM-local ephemeral SSD does not.
fn net_part(tier: Tier, ratio: f64, _cfg: &SimConfig) -> f64 {
    match tier {
        Tier::EphSsd => 0.0,
        _ => ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::PerTier;
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::JobId;
    use cast_workload::profile::ProfileSet;

    fn cfg() -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(2000.0);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(750.0);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(2000.0);
        SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 2, &agg).unwrap()
    }

    fn run_for(app: AppKind, gb: f64, tier: Tier) -> JobRun {
        let job = Job::with_default_layout(JobId(1), app, DatasetId(0), DataSize::from_gb(gb));
        let profiles = ProfileSet::defaults();
        JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![])
    }

    #[test]
    fn phases_progress_and_skip_empty() {
        let c = cfg();
        let mut run = run_for(AppKind::Sort, 10.0, Tier::PersSsd);
        // persSSD placement has no staging: first real phase is Map.
        assert_eq!(run.advance_phase(0.0, &c), JobPhase::Map);
        assert_eq!(run.pending.len(), run.job.maps);
        run.pending.clear();
        assert_eq!(run.advance_phase(5.0, &c), JobPhase::Reduce);
        assert_eq!(run.pending.len(), run.job.reduces);
        run.pending.clear();
        assert_eq!(run.advance_phase(9.0, &c), JobPhase::Done);
        assert!((run.phase_secs[1] - 5.0).abs() < 1e-9, "map wall time");
        assert!((run.phase_secs[3] - 4.0).abs() < 1e-9, "reduce wall time");
        assert!((run.finished - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ephemeral_placement_stages_in_and_out() {
        let c = cfg();
        let mut run = run_for(AppKind::Sort, 10.0, Tier::EphSsd);
        assert_eq!(run.advance_phase(0.0, &c), JobPhase::StageIn);
        assert_eq!(run.pending.len(), c.nvm * c.transfer_streams_per_vm);
        let t = &run.pending[0];
        assert_eq!(t.slot, SlotKind::Transfer);
        let s = &t.stages[0];
        assert_eq!(s.read.unwrap().0, Tier::ObjStore);
        assert_eq!(s.write.unwrap().0, Tier::EphSsd);
        assert!(s.fixed > 0.0, "object store requests cost setup time");
        // Drain through map and reduce to reach StageOut.
        run.pending.clear();
        assert_eq!(run.advance_phase(1.0, &c), JobPhase::Map);
        run.pending.clear();
        assert_eq!(run.advance_phase(2.0, &c), JobPhase::Reduce);
        run.pending.clear();
        assert_eq!(run.advance_phase(3.0, &c), JobPhase::StageOut);
        run.pending.clear();
        assert_eq!(run.advance_phase(4.0, &c), JobPhase::Done);
    }

    #[test]
    fn map_tasks_have_expected_shape() {
        let c = cfg();
        let mut run = run_for(AppKind::Sort, 10.0, Tier::PersSsd);
        run.advance_phase(0.0, &c);
        let m = run.job.maps as f64;
        let total_units: f64 = run.pending.iter().map(|t| t.stages[0].units).sum();
        // Skew preserves the mean only approximately; total within ±10 %.
        assert!((total_units - 10_000.0).abs() / 10_000.0 < 0.1);
        let s = &run.pending[0].stages[0];
        assert_eq!(s.read.unwrap(), (Tier::PersSsd, 1.0));
        // Sort spills its full intermediate stream to the volume.
        assert_eq!(s.write.unwrap(), (Tier::PersSsd, 1.0));
        assert!((s.units - 10_000.0 / m).abs() / (10_000.0 / m) < 0.1);
    }

    #[test]
    fn iterative_app_rereads_scale_with_tier() {
        let c = cfg();
        // KMeans re-reads its input every pass: on a block tier most
        // passes hit the page cache; on the object store every pass
        // re-fetches.
        let mut on_block = run_for(AppKind::KMeans, 30.0, Tier::PersSsd);
        on_block.advance_phase(0.0, &c);
        let block_ratio = on_block.pending[0].stages[0].read.unwrap().1;
        let mut on_obj = run_for(AppKind::KMeans, 30.0, Tier::ObjStore);
        on_obj.advance_phase(0.0, &c);
        let obj_ratio = on_obj.pending[0].stages[0].read.unwrap().1;
        assert!(block_ratio < 2.0, "cached re-reads, got {block_ratio}");
        assert!(
            (obj_ratio - 8.0).abs() < 1e-9,
            "8 fetch passes, got {obj_ratio}"
        );
    }

    #[test]
    fn split_placement_partitions_map_tasks() {
        let c = cfg();
        let mut run = run_for(AppKind::Grep, 6.0, Tier::PersHdd);
        run.placement.input =
            crate::placement::SplitPlacement::split(Tier::EphSsd, 0.5, Tier::PersHdd);
        run.advance_phase(0.0, &c);
        let on_eph = run
            .pending
            .iter()
            .filter(|t| t.stages[0].read.unwrap().0 == Tier::EphSsd)
            .count();
        let on_hdd = run.pending.len() - on_eph;
        assert_eq!(run.pending.len(), 24);
        assert_eq!(on_eph, 12);
        assert_eq!(on_hdd, 12);
    }

    #[test]
    fn reduce_tasks_fetch_then_stream() {
        let c = cfg();
        let mut run = run_for(AppKind::Join, 50.0, Tier::ObjStore);
        run.advance_phase(0.0, &c); // map
        run.pending.clear();
        run.advance_phase(10.0, &c); // reduce
        let t = &run.pending[0];
        assert_eq!(t.slot, SlotKind::Reduce);
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].label, StageLabel::Shuffle);
        assert_eq!(t.stages[1].label, StageLabel::Reduce);
        // Join on objStore pays per-file setup on its many output files.
        assert!(t.stages[1].fixed > 1.0);
        // Output goes to the object store.
        assert_eq!(t.stages[1].write.unwrap().0, Tier::ObjStore);
    }

    #[test]
    fn deterministic_expansion() {
        let c = cfg();
        let mut a = run_for(AppKind::Sort, 20.0, Tier::PersSsd);
        let mut b = run_for(AppKind::Sort, 20.0, Tier::PersSsd);
        a.advance_phase(0.0, &c);
        b.advance_phase(0.0, &c);
        assert_eq!(a.pending, b.pending);
    }

    #[test]
    fn migration_run_is_a_single_transfer_phase() {
        let c = cfg();
        let job = Job::with_default_layout(
            JobId(9),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(12.0),
        );
        let profiles = ProfileSet::defaults();
        let mut run = JobRun::migration(
            job,
            Tier::PersHdd,
            Tier::PersSsd,
            *profiles.get(AppKind::Grep),
        );
        assert_eq!(run.advance_phase(0.0, &c), JobPhase::StageIn);
        assert_eq!(run.pending.len(), c.nvm * c.transfer_streams_per_vm);
        let total: f64 = run.pending.iter().map(|t| t.stages[0].units).sum();
        assert!((total - 12_000.0).abs() / 12_000.0 < 0.1, "moves all bytes");
        let s = &run.pending[0].stages[0];
        assert_eq!(s.read.unwrap().0, Tier::PersHdd);
        assert_eq!(s.write.unwrap().0, Tier::PersSsd);
        assert_eq!(run.pending[0].slot, SlotKind::Transfer);
        // No compute or stage-out follows the move.
        run.pending.clear();
        assert_eq!(run.advance_phase(30.0, &c), JobPhase::Done);
        assert!((run.phase_secs[0] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_jitter_gives_identical_tasks() {
        let mut c = cfg();
        c.jitter = 0.0;
        let mut run = run_for(AppKind::Sort, 20.0, Tier::PersSsd);
        run.advance_phase(0.0, &c);
        let u0 = run.pending[0].stages[0].units;
        assert!(run
            .pending
            .iter()
            .all(|t| (t.stages[0].units - u0).abs() < 1e-12));
    }
}
