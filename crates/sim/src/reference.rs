//! The pre-overhaul progress-based stepper, kept as an equivalence oracle.
//!
//! [`ReferenceEngine`] recomputes *every* streaming task's rate and
//! advances *every* active task on *every* event — O(events × active
//! tasks) overall. It is the original engine implementation, preserved
//! behind the `reference-engine` feature so the event-driven
//! [`crate::engine::Engine`] can be checked against it: across randomized
//! specs, placements and fault plans the two must agree within 1e-6
//! relative on makespan and per-job phase times (see
//! `tests/engine_equivalence.rs`).
//!
//! Semantics are documented on [`crate::engine`]; this module only
//! differs in *how* time is advanced, never in *what* is simulated. Keep
//! the two engines' decision points (dispatch order, VM picks, fault
//! arming, speculation policy) in lockstep when editing either.

use cast_obs::{Collector, EventBody};
use cast_workload::job::JobId;

use crate::config::{Concurrency, SimConfig};
use crate::engine::{
    attempt_rng, nan_zero, pick_vm, stage_tier, task_kind_label, FaultEventKind, FaultState,
    RetryEntry, SimObs, BACKUP_BIT, CONTENTION_STRIDE, EPS,
};
use crate::error::SimError;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::{FaultSummary, JobMetrics, SimReport};
use crate::resources::ShareRegistry;
use crate::task::{RunningTask, SlotKind};
use crate::trace::{TaskEvent, TaskEventKind, Trace};
use cast_cloud::units::Duration;

/// The original O(events × active tasks) stepper. Construct with
/// [`ReferenceEngine::new`], run with [`ReferenceEngine::run`].
pub struct ReferenceEngine<'a> {
    cfg: &'a SimConfig,
    reg: ShareRegistry,
    jobs: Vec<JobRun>,
    tasks: Vec<RunningTask>,
    rates: Vec<f64>,
    free_map: Vec<usize>,
    free_red: Vec<usize>,
    clock: f64,
    dispatch_cursor: usize,
    trace: Option<Trace>,
    fault: FaultState,
    obs: SimObs,
    steps_done: u64,
}

impl<'a> ReferenceEngine<'a> {
    /// Build an engine over prepared job runs. `jobs` must be ordered so
    /// that every dependency index is smaller than the dependent's index.
    pub fn new(cfg: &'a SimConfig, jobs: Vec<JobRun>) -> ReferenceEngine<'a> {
        ReferenceEngine::observed(cfg, jobs, Collector::noop())
    }

    /// [`ReferenceEngine::new`] with an observability collector attached.
    pub fn observed(
        cfg: &'a SimConfig,
        jobs: Vec<JobRun>,
        collector: Collector,
    ) -> ReferenceEngine<'a> {
        let fault = FaultState::new(cfg, jobs.len());
        ReferenceEngine {
            reg: ShareRegistry::new(cfg),
            jobs,
            tasks: Vec::new(),
            rates: Vec::new(),
            free_map: vec![cfg.vm.map_slots; cfg.nvm],
            free_red: vec![cfg.vm.reduce_slots; cfg.nvm],
            clock: 0.0,
            dispatch_cursor: 0,
            trace: cfg.collect_trace.then(Trace::default),
            fault,
            obs: SimObs::new(collector),
            steps_done: 0,
            cfg,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with_stats().map(|(report, _)| report)
    }

    /// [`ReferenceEngine::run`], also returning execution statistics
    /// (mirrors [`crate::engine::Engine::run_with_stats`]).
    pub fn run_with_stats(mut self) -> Result<(SimReport, crate::engine::EngineStats), SimError> {
        if let Err(reason) = self.cfg.faults.validate(self.cfg.nvm) {
            return Err(SimError::InvalidFaultPlan { reason });
        }
        let budget = self.cfg.event_budget;
        let mut events: u64 = 0;
        loop {
            self.process_fault_events();
            self.activate_ready_jobs();
            self.dispatch_retries();
            self.dispatch();
            self.speculate();
            if self.tasks.is_empty() {
                if self.jobs.iter().all(|j| j.phase == JobPhase::Done) {
                    break;
                }
                // No runnable work, but a retry backoff or a scheduled
                // fault event (e.g. a VM recovery) may unblock us.
                if let Some(wake) = self.next_wake() {
                    self.clock = wake;
                    events += 1;
                    if events > budget {
                        return Err(self.budget_error(events));
                    }
                    continue;
                }
                return Err(self.stalled_error());
            }
            self.step()?;
            events += 1;
            if events > budget {
                return Err(self.budget_error(events));
            }
        }
        let mut metrics: Vec<JobMetrics> = self
            .jobs
            .iter()
            .map(|j| JobMetrics {
                job: j.job.id,
                submitted: Duration::from_secs(nan_zero(j.submitted)),
                started: Duration::from_secs(nan_zero(j.started)),
                finished: Duration::from_secs(nan_zero(j.finished)),
                stage_in: Duration::from_secs(j.phase_secs[0]),
                map: Duration::from_secs(j.phase_secs[1]),
                reduce: Duration::from_secs(j.phase_secs[3]),
                stage_out: Duration::from_secs(j.phase_secs[4]),
                failures: j.failures,
                retries: j.retries,
                speculations: j.speculations,
                kills: j.kills,
            })
            .collect();
        metrics.sort_by(|a, b| a.finished.secs().total_cmp(&b.finished.secs()));
        let faults = FaultSummary {
            task_failures: self.jobs.iter().map(|j| j.failures).sum(),
            retries: self.jobs.iter().map(|j| j.retries).sum(),
            speculations: self.jobs.iter().map(|j| j.speculations).sum(),
            kills: self.jobs.iter().map(|j| j.kills).sum(),
            vm_crashes: self.fault.vm_crashes,
        };
        let report = SimReport {
            jobs: metrics,
            makespan: Duration::from_secs(self.clock),
            faults,
            trace: self.trace,
        };
        Ok((
            report,
            crate::engine::EngineStats {
                steps: events,
                ..Default::default()
            },
        ))
    }

    fn budget_error(&self, steps: u64) -> SimError {
        SimError::EventBudgetExhausted {
            at_secs: self.clock,
            steps,
            active_tasks: self.tasks.len(),
            active_jobs: self
                .jobs
                .iter()
                .filter(|j| j.phase != JobPhase::Done)
                .count(),
        }
    }

    /// Move `Waiting` jobs whose dependencies are done into their first
    /// working phase, respecting the concurrency mode.
    fn activate_ready_jobs(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].phase != JobPhase::Waiting {
                continue;
            }
            let deps_done = self.jobs[i]
                .deps
                .iter()
                .all(|&d| self.jobs[d].phase == JobPhase::Done);
            if !deps_done {
                continue;
            }
            if self.cfg.concurrency == Concurrency::Sequential {
                // Only the earliest unfinished job may start.
                let earlier_unfinished = self.jobs[..i].iter().any(|j| j.phase != JobPhase::Done);
                if earlier_unfinished {
                    continue;
                }
            }
            let job = &mut self.jobs[i];
            job.submitted = self.clock;
            let phase = job.advance_phase(self.clock, self.cfg);
            if self.obs.col.enabled() {
                let name = self.jobs[i].job.app.name().to_string();
                self.obs.col.emit(
                    self.clock,
                    EventBody::JobStart {
                        job: i as u32,
                        name,
                    },
                );
                self.emit_phase(i, phase);
            }
        }
    }

    /// Emit the trace edge for job `i` entering `phase` (including the
    /// terminal `Done`, which closes the job span).
    fn emit_phase(&self, i: usize, phase: JobPhase) {
        if !self.obs.col.enabled() {
            return;
        }
        if phase == JobPhase::Done {
            let makespan = self.jobs[i].finished - self.jobs[i].submitted;
            self.obs.col.emit(
                self.clock,
                EventBody::JobEnd {
                    job: i as u32,
                    makespan,
                },
            );
        } else {
            self.obs.col.emit(
                self.clock,
                EventBody::Phase {
                    job: i as u32,
                    phase: phase.name().to_string(),
                },
            );
        }
    }

    /// Assign pending task templates to free slots.
    fn dispatch(&mut self) {
        let n = self.jobs.len();
        for off in 0..n {
            let i = (self.dispatch_cursor + off) % n;
            let mut launched: u32 = 0;
            while let Some(tmpl) = self.jobs[i].pending.front() {
                if matches!(self.jobs[i].phase, JobPhase::Waiting | JobPhase::Done) {
                    break;
                }
                let vm = match tmpl.slot {
                    SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                    SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                    SlotKind::Transfer => self.pick_transfer_vm(),
                };
                let Some(vm) = vm else { break };
                let tmpl = self.jobs[i].pending.pop_front().expect("peeked");
                match tmpl.slot {
                    SlotKind::Map => self.free_map[vm] -= 1,
                    SlotKind::Reduce => self.free_red[vm] -= 1,
                    SlotKind::Transfer => {}
                }
                self.push_trace(i, vm as u32, tmpl.slot, TaskEventKind::Started);
                let mut task = RunningTask::bind(i, vm as u32, &tmpl);
                if self.fault.enabled {
                    let seq = self.fault.seq[i];
                    self.fault.seq[i] += 1;
                    task.uid = ((i as u64) << 32) | u64::from(seq);
                    task.template = Some(Box::new(tmpl));
                    self.arm_task(&mut task);
                }
                self.tasks.push(task);
                self.jobs[i].active += 1;
                launched += 1;
            }
            if launched > 0 {
                self.obs.wave_tasks.record(f64::from(launched));
                if self.obs.col.enabled() {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Wave {
                            job: i as u32,
                            phase: self.jobs[i].phase.name().to_string(),
                            tasks: launched,
                        },
                    );
                }
            }
        }
        self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
    }

    /// Transfer streams round-robin over VMs; rotate past crashed ones.
    fn pick_transfer_vm(&self) -> Option<usize> {
        let n = self.cfg.nvm;
        let start = self.tasks.len() % n;
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&vm| !self.fault.crashed[vm])
    }

    /// Re-dispatch retry entries whose backoff has elapsed, slots
    /// permitting.
    fn dispatch_retries(&mut self) {
        if !self.fault.enabled {
            return;
        }
        let mut i = 0;
        while i < self.fault.retries.len() {
            if self.fault.retries[i].ready_at > self.clock + EPS {
                i += 1;
                continue;
            }
            let slot = self.fault.retries[i].template.slot;
            let vm = match slot {
                SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                SlotKind::Transfer => self.pick_transfer_vm(),
            };
            let Some(vm) = vm else {
                i += 1;
                continue;
            };
            let entry = self.fault.retries.remove(i);
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            self.push_trace(entry.job, vm as u32, slot, TaskEventKind::Retried);
            let mut task = RunningTask::bind(entry.job, vm as u32, &entry.template);
            task.uid = entry.uid;
            task.attempt = entry.attempt;
            task.template = Some(entry.template);
            self.arm_task(&mut task);
            self.jobs[entry.job].retries_pending -= 1;
            self.jobs[entry.job].active += 1;
            self.tasks.push(task);
        }
    }

    /// Launch speculative backups for tasks streaming far below their
    /// wave's median rate (Hadoop-style speculative execution).
    fn speculate(&mut self) {
        let thr = self.cfg.faults.speculation_threshold;
        if !self.fault.enabled || thr <= 0.0 || self.tasks.is_empty() {
            return;
        }
        // Instantaneous streaming rates under current contention.
        self.reg.clear_counts();
        for t in &self.tasks {
            if let Some(s) = t.current() {
                if !s.is_latent() && s.units_remaining > EPS {
                    s.register(&mut self.reg);
                }
            }
        }
        let rates: Vec<f64> = self
            .tasks
            .iter()
            .map(|t| match t.current() {
                Some(s) if !s.is_latent() && s.units_remaining > EPS => s.rate(&self.reg),
                _ => 0.0,
            })
            .collect();
        let mut stragglers: Vec<usize> = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if rates[i] <= 0.0
                || t.speculated
                || t.backup_of.is_some()
                || t.slot == SlotKind::Transfer
                || !self.jobs[t.job].pending.is_empty()
            {
                continue;
            }
            let mut wave: Vec<f64> = self
                .tasks
                .iter()
                .zip(rates.iter())
                .filter(|(o, &r)| {
                    o.job == t.job && o.slot == t.slot && r > 0.0 && o.backup_of.is_none()
                })
                .map(|(_, &r)| r)
                .collect();
            if wave.len() < 2 {
                continue;
            }
            wave.sort_by(f64::total_cmp);
            let median = wave[wave.len() / 2];
            if rates[i] < thr * median {
                stragglers.push(i);
            }
        }
        for i in stragglers {
            let orig_vm = self.tasks[i].vm as usize;
            let slot = self.tasks[i].slot;
            let free = match slot {
                SlotKind::Map => &self.free_map,
                SlotKind::Reduce => &self.free_red,
                SlotKind::Transfer => continue,
            };
            let vm = free
                .iter()
                .enumerate()
                .filter(|&(v, &n)| n > 0 && !self.fault.crashed[v] && v != orig_vm)
                .max_by_key(|&(_, &n)| n)
                .map(|(v, _)| v);
            let Some(vm) = vm else { continue };
            let Some(tmpl) = self.tasks[i].template.clone() else {
                continue;
            };
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            let job = self.tasks[i].job;
            let orig_uid = self.tasks[i].uid;
            self.tasks[i].speculated = true;
            self.push_trace(job, vm as u32, slot, TaskEventKind::Speculated);
            let mut backup = RunningTask::bind(job, vm as u32, &tmpl);
            backup.uid = orig_uid | BACKUP_BIT;
            backup.attempt = self.tasks[i].attempt;
            backup.backup_of = Some(orig_uid);
            backup.speculated = true;
            backup.template = Some(tmpl);
            self.arm_task(&mut backup);
            self.jobs[job].speculations += 1;
            self.jobs[job].active += 1;
            self.tasks.push(backup);
        }
    }

    /// Sample this attempt's fate from its private RNG; see
    /// [`crate::engine`] for the policy.
    fn arm_task(&self, task: &mut RunningTask) {
        let plan = &self.cfg.faults;
        let mut rng = attempt_rng(plan.seed, task.uid, task.attempt);
        crate::engine::arm_task_with(plan, &mut rng, task);
    }

    /// Apply all fault-plan events due at the current clock.
    fn process_fault_events(&mut self) {
        while let Some(&ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock + EPS {
                break;
            }
            self.fault.next_event += 1;
            self.obs.fault_edges.inc();
            if self.obs.col.enabled() {
                let (kind, vm) = match ev.kind {
                    FaultEventKind::Crash(vm) => ("crash", vm),
                    FaultEventKind::Recover(vm) => ("recover", vm),
                    FaultEventKind::DegradationEdge => ("degradation", u32::MAX),
                };
                self.obs.col.emit(
                    self.clock,
                    EventBody::Fault {
                        kind: kind.to_string(),
                        vm,
                    },
                );
            }
            match ev.kind {
                FaultEventKind::Crash(vm) => self.crash_vm(vm as usize),
                FaultEventKind::Recover(vm) => self.fault.crashed[vm as usize] = false,
                FaultEventKind::DegradationEdge => self.apply_degradations(),
            }
        }
    }

    /// Re-derive degraded capacities from the windows active right now.
    fn apply_degradations(&mut self) {
        self.reg.reset_scales();
        for w in &self.cfg.faults.degradations {
            if w.start_secs <= self.clock + EPS && self.clock < w.end_secs - EPS {
                self.reg.scale_tier(w.vm, w.tier, w.multiplier);
            }
        }
    }

    /// Take a VM offline: kill its resident tasks (re-enqueuing any
    /// without a live speculative twin) and reset its slot pools, which
    /// stay unreachable until the matching recovery event.
    fn crash_vm(&mut self, vm: usize) {
        if self.fault.crashed[vm] {
            return;
        }
        self.fault.crashed[vm] = true;
        self.fault.vm_crashes += 1;
        self.free_map[vm] = self.cfg.vm.map_slots;
        self.free_red[vm] = self.cfg.vm.reduce_slots;
        let mut idx = 0;
        while idx < self.tasks.len() {
            if self.tasks[idx].vm as usize != vm {
                idx += 1;
                continue;
            }
            let victim = self.tasks.swap_remove(idx);
            let job = victim.job;
            self.jobs[job].active -= 1;
            self.jobs[job].kills += 1;
            self.push_trace(job, victim.vm, victim.slot, TaskEventKind::Killed);
            if victim.speculated && self.twin_index(victim.uid, victim.backup_of).is_some() {
                // The surviving copy carries the work.
                continue;
            }
            let Some(template) = victim.template else {
                continue;
            };
            // Same attempt number: the crash was not the task's fault.
            self.jobs[job].retries += 1;
            self.jobs[job].retries_pending += 1;
            self.fault.retries.push(RetryEntry {
                ready_at: self.clock,
                job,
                uid: victim.uid,
                attempt: victim.attempt,
                template,
            });
        }
    }

    /// Index of the live twin (original ↔ backup) of task `uid`.
    fn twin_index(&self, uid: u64, backup_of: Option<u64>) -> Option<usize> {
        self.tasks
            .iter()
            .position(|o| backup_of == Some(o.uid) || o.backup_of == Some(uid))
    }

    /// Earliest strictly-future time at which a fault event fires or a
    /// retry becomes ready.
    fn next_wake(&self) -> Option<f64> {
        let mut wake = f64::INFINITY;
        if let Some(ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock {
                wake = wake.min(ev.at);
            }
        }
        for r in &self.fault.retries {
            if r.ready_at > self.clock {
                wake = wake.min(r.ready_at);
            }
        }
        wake.is_finite().then_some(wake)
    }

    /// Build a [`SimError::Stalled`] carrying whatever is known about the
    /// first blocked job.
    fn stalled_error(&self) -> SimError {
        let blocked = self.jobs.iter().find(|j| j.phase != JobPhase::Done);
        let (job, phase, tier) = match blocked {
            Some(j) => {
                let tier = j
                    .pending
                    .front()
                    .and_then(|t| t.stages.first())
                    .and_then(|s| s.read.map(|(t, _)| t).or(s.write.map(|(t, _)| t)))
                    .map(|t| t.name().to_string());
                (Some(j.job.id.0), Some(j.phase.name()), tier)
            }
            None => (None, None, None),
        };
        SimError::Stalled {
            at_secs: self.clock,
            job,
            phase,
            tier,
        }
    }

    fn push_trace(&mut self, job: usize, vm: u32, slot: SlotKind, kind: TaskEventKind) {
        let id = self.jobs[job].job.id;
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TaskEvent {
                time: self.clock,
                job: id,
                vm,
                slot,
                kind,
            });
        }
        self.obs.task_counter(kind).inc();
        if self.obs.col.enabled() {
            self.obs.col.emit(
                self.clock,
                EventBody::Task {
                    job: job as u32,
                    vm,
                    kind: task_kind_label(kind).to_string(),
                },
            );
        }
    }

    fn release_slot(&mut self, vm: usize, slot: SlotKind) {
        match slot {
            SlotKind::Map => self.free_map[vm] += 1,
            SlotKind::Reduce => self.free_red[vm] += 1,
            SlotKind::Transfer => {}
        }
    }

    /// Advance time to the next stage completion, scheduled fault event,
    /// or injected task failure.
    fn step(&mut self) -> Result<(), SimError> {
        // Register flows of streaming (non-latent) stages.
        self.reg.clear_counts();
        for t in &self.tasks {
            if let Some(s) = t.current() {
                if !s.is_latent() && s.units_remaining > EPS {
                    s.register(&mut self.reg);
                }
            }
        }
        self.obs.steps.inc();
        self.steps_done += 1;
        if self.obs.col.enabled() && self.steps_done % CONTENTION_STRIDE == 1 {
            for tier in cast_cloud::tier::Tier::ALL {
                let (demand, capacity) = self.reg.tier_totals(tier);
                if demand > 0.0 {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Contention {
                            tier: tier.name().to_string(),
                            demand,
                            capacity,
                        },
                    );
                }
            }
        }
        // Compute rates and the time of the earliest completion.
        let wake = self.next_wake();
        self.rates.clear();
        let mut dt = f64::INFINITY;
        for t in &self.tasks {
            let s = t.current().expect("active task has a stage");
            if s.is_latent() {
                self.rates.push(0.0);
                dt = dt.min(s.fixed_remaining);
            } else if s.units_remaining <= EPS {
                self.rates.push(0.0);
                dt = 0.0;
            } else {
                let rate = s.rate(&self.reg);
                if rate <= 0.0 || rate.is_nan() {
                    // A fully-degraded tier (e.g. a transient outage
                    // window with multiplier 0) freezes the task; a
                    // scheduled fault edge or retry wake-up may restore
                    // its bandwidth, so only a stall with no such future
                    // event is an error.
                    if wake.is_some() {
                        self.rates.push(0.0);
                        continue;
                    }
                    return Err(SimError::Stalled {
                        at_secs: self.clock,
                        job: Some(self.jobs[t.job].job.id.0),
                        phase: Some(self.jobs[t.job].phase.name()),
                        tier: stage_tier(s),
                    });
                }
                self.rates.push(rate);
                dt = dt.min(s.units_remaining / rate);
                // A doomed attempt fails partway through its stream.
                if let Some(doom) = t.doom_units {
                    dt = dt.min(doom / rate);
                }
            }
        }
        // Never step past a scheduled fault event or retry wake-up.
        if let Some(wake) = wake {
            if wake > self.clock {
                dt = dt.min(wake - self.clock);
            }
        }
        debug_assert!(dt.is_finite(), "no progress possible");
        // Advance all tasks by dt.
        self.clock += dt;
        for (t, &rate) in self.tasks.iter_mut().zip(self.rates.iter()) {
            let s = t.current_mut().expect("active task has a stage");
            if s.fixed_remaining > 0.0 {
                s.fixed_remaining -= dt;
                if s.fixed_remaining < EPS {
                    s.fixed_remaining = 0.0;
                }
            } else {
                s.units_remaining -= dt * rate;
                if s.units_remaining < EPS {
                    s.units_remaining = 0.0;
                }
                if let Some(doom) = t.doom_units.as_mut() {
                    *doom -= dt * rate;
                }
            }
        }
        // Retire failed and completed tasks. `winners` collects finished
        // tasks whose speculative twin must be killed afterwards.
        let mut winners: Vec<(u64, Option<u64>)> = Vec::new();
        let mut idx = 0;
        while idx < self.tasks.len() {
            if self.tasks[idx].doom_units.is_some_and(|d| d <= EPS) {
                self.fail_task(idx)?;
                continue;
            }
            let task = &mut self.tasks[idx];
            while task.current().is_some_and(|s| s.is_done()) {
                task.stages.pop_front();
            }
            if task.is_done() {
                let task = self.tasks.swap_remove(idx);
                self.release_slot(task.vm as usize, task.slot);
                let job = task.job;
                self.push_trace(job, task.vm, task.slot, TaskEventKind::Finished);
                self.jobs[job].active -= 1;
                if task.speculated {
                    winners.push((task.uid, task.backup_of));
                }
            } else {
                idx += 1;
            }
        }
        // Winners kill their twins.
        for (uid, backup_of) in winners {
            if let Some(k) = self.twin_index(uid, backup_of) {
                let loser = self.tasks.swap_remove(k);
                self.release_slot(loser.vm as usize, loser.slot);
                let job = loser.job;
                self.push_trace(job, loser.vm, loser.slot, TaskEventKind::Killed);
                self.jobs[job].active -= 1;
                self.jobs[job].kills += 1;
            }
        }
        // Advance any job whose phase fully drained this step.
        for i in 0..self.jobs.len() {
            let job = &mut self.jobs[i];
            if job.phase != JobPhase::Waiting && job.phase != JobPhase::Done && job.phase_drained()
            {
                let phase = job.advance_phase(self.clock, self.cfg);
                self.emit_phase(i, phase);
            }
        }
        Ok(())
    }

    /// Handle a mid-stream task failure at `idx`: schedule a retry with
    /// exponential backoff, or give up on the job past the attempt budget.
    fn fail_task(&mut self, idx: usize) -> Result<(), SimError> {
        let task = self.tasks.swap_remove(idx);
        self.release_slot(task.vm as usize, task.slot);
        let job = task.job;
        self.jobs[job].active -= 1;
        self.jobs[job].failures += 1;
        self.push_trace(job, task.vm, task.slot, TaskEventKind::Failed);
        if task.speculated && self.twin_index(task.uid, task.backup_of).is_some() {
            // The surviving copy carries the work; no retry needed.
            return Ok(());
        }
        if task.attempt >= self.cfg.faults.max_task_attempts {
            return Err(SimError::JobFailed {
                job: self.jobs[job].job.id.0,
                attempts: task.attempt,
            });
        }
        let backoff =
            self.cfg.faults.retry_backoff_secs * f64::powi(2.0, (task.attempt - 1) as i32);
        let template = task.template.expect("faulted task retains its template");
        self.jobs[job].retries += 1;
        self.jobs[job].retries_pending += 1;
        self.fault.retries.push(RetryEntry {
            ready_at: self.clock + backoff,
            job,
            uid: task.uid,
            attempt: task.attempt + 1,
            template,
        });
        Ok(())
    }
}

/// Convenience: ids of all jobs in the engine's table (test helper).
pub fn job_ids(jobs: &[JobRun]) -> Vec<JobId> {
    jobs.iter().map(|j| j.job.id).collect()
}
