//! Fault injection: deterministic, serialisable failure scenarios.
//!
//! A [`FaultPlan`] attached to [`crate::config::SimConfig`] describes every
//! injectable event up front — per-task failure probability, scheduled VM
//! crashes and recoveries, transient tier-degradation windows, and an
//! object-store per-request failure rate. The engine turns the plan into
//! recovery behaviour: failed tasks re-enqueue with bounded retries and
//! exponential backoff, crashed VMs kill their resident tasks and return
//! their slots on recovery, and (optionally) Hadoop-style speculative
//! execution launches backup copies of stragglers.
//!
//! Determinism: every random fault decision is drawn from an RNG keyed by
//! `(plan seed, task uid, attempt)` rather than a shared stream, so a
//! simulation is bit-reproducible for a fixed plan *and* failure sets are
//! coupled across intensities — every task that fails at rate `p₁` also
//! fails at any `p₂ > p₁`, which makes fault sweeps monotone.
//!
//! Scheduling: the event-driven engine seeds every scheduled fault time
//! (crash, recovery, degradation edge) and retry-backoff expiry into its
//! completion heap as sentinel *wake* entries, so the clock lands exactly
//! on each fault edge without per-step scanning of the plan.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;

/// A scheduled worker-VM crash (and optional recovery).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmCrash {
    /// Index of the VM that fails.
    pub vm: u32,
    /// Simulated time of the crash, seconds.
    pub at_secs: f64,
    /// How long the VM stays down; `None` = never recovers.
    pub down_secs: Option<f64>,
}

/// A transient bandwidth-degradation window on one tier's volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// VM whose volume degrades; `None` = every VM (and, for
    /// [`Tier::ObjStore`], the cluster-global ceiling too).
    pub vm: Option<u32>,
    /// Affected tier.
    pub tier: Tier,
    /// Window start, seconds.
    pub start_secs: f64,
    /// Window end (exclusive), seconds.
    pub end_secs: f64,
    /// Bandwidth multiplier inside `[start, end)` — `0.25` = quartered.
    pub multiplier: f64,
}

/// A scheduled loss of redundancy shards from one dataset's home tier —
/// the disk/node failures that erasure coding and replication exist to
/// survive. Losses accumulate: two kills of one shard each at different
/// times leave the dataset two shards down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardKill {
    /// Index of the dataset (job input) whose shards are lost.
    pub dataset: u32,
    /// Simulated time of the loss, seconds.
    pub at_secs: f64,
    /// How many shards (or replicas) are lost at once.
    pub shards: u32,
}

/// The full fault scenario for one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all fault sampling (independent of the workload's own
    /// task-skew seeds).
    pub seed: u64,
    /// Probability that any given task attempt fails partway through its
    /// streaming work.
    pub task_failure_prob: f64,
    /// Probability that one object-store request fails and is retried;
    /// inflates the fixed request latency of object-store stages.
    pub objstore_request_failure: f64,
    /// Attempts (first run + retries) before the owning job is declared
    /// failed ([`crate::error::SimError::JobFailed`]). Hadoop's
    /// `mapreduce.map.maxattempts` default is 4.
    pub max_task_attempts: u32,
    /// Backoff before the first retry, seconds; doubles on each further
    /// attempt.
    pub retry_backoff_secs: f64,
    /// Speculative-execution threshold: launch a backup copy when a task's
    /// progress rate falls below this fraction of its wave's median rate.
    /// `0` disables speculation.
    pub speculation_threshold: f64,
    /// Scheduled VM crashes.
    pub vm_crashes: Vec<VmCrash>,
    /// Tier degradation windows.
    pub degradations: Vec<DegradationWindow>,
    /// Scheduled redundancy-shard losses (consumed by the durability
    /// layer, [`crate::durability`]; ignored by plain `simulate`).
    pub shard_kills: Vec<ShardKill>,
}

impl Default for FaultPlan {
    /// The empty plan: no faults injected, recovery knobs at Hadoop-like
    /// defaults. Simulations under the default plan are bit-identical to
    /// fault-free runs.
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0xfa17_cafe,
            task_failure_prob: 0.0,
            objstore_request_failure: 0.0,
            max_task_attempts: 4,
            retry_backoff_secs: 5.0,
            speculation_threshold: 0.0,
            vm_crashes: Vec::new(),
            degradations: Vec::new(),
            shard_kills: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Whether the plan injects nothing (recovery machinery stays cold).
    pub fn is_empty(&self) -> bool {
        self.task_failure_prob <= 0.0
            && self.objstore_request_failure <= 0.0
            && self.speculation_threshold <= 0.0
            && self.vm_crashes.is_empty()
            && self.degradations.is_empty()
            && self.shard_kills.is_empty()
    }

    /// Convenience: an otherwise-default plan with a per-task failure rate.
    pub fn with_task_failures(prob: f64) -> FaultPlan {
        FaultPlan {
            task_failure_prob: prob,
            ..FaultPlan::default()
        }
    }

    /// Check the plan against a cluster of `nvm` workers. Returns a
    /// human-readable reason on the first violation.
    pub fn validate(&self, nvm: usize) -> Result<(), String> {
        for (name, p) in [
            ("task_failure_prob", self.task_failure_prob),
            ("objstore_request_failure", self.objstore_request_failure),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.objstore_request_failure >= 1.0 {
            return Err("objstore_request_failure must be < 1".to_string());
        }
        if self.task_failure_prob > 0.0 && self.max_task_attempts == 0 {
            return Err("max_task_attempts must be >= 1".to_string());
        }
        if !self.retry_backoff_secs.is_finite() || self.retry_backoff_secs < 0.0 {
            return Err(format!(
                "retry_backoff_secs must be finite and >= 0, got {}",
                self.retry_backoff_secs
            ));
        }
        if self.speculation_threshold < 0.0 || self.speculation_threshold >= 1.0 {
            return Err(format!(
                "speculation_threshold must be in [0, 1), got {}",
                self.speculation_threshold
            ));
        }
        for c in &self.vm_crashes {
            if c.vm as usize >= nvm {
                return Err(format!("vm_crashes references VM {} (nvm = {nvm})", c.vm));
            }
            if !c.at_secs.is_finite() || c.at_secs < 0.0 {
                return Err(format!(
                    "crash time must be finite and >= 0, got {}",
                    c.at_secs
                ));
            }
            if let Some(d) = c.down_secs {
                if !d.is_finite() || d <= 0.0 {
                    return Err(format!("crash down_secs must be finite and > 0, got {d}"));
                }
            }
        }
        for w in &self.degradations {
            if let Some(vm) = w.vm {
                if vm as usize >= nvm {
                    return Err(format!("degradation references VM {vm} (nvm = {nvm})"));
                }
            }
            // `end == start` is a zero-duration window: valid, never
            // active (the activity test is half-open), useful as a
            // degenerate sweep endpoint. Only backwards windows are
            // rejected.
            if !(w.start_secs.is_finite() && w.end_secs.is_finite())
                || w.start_secs < 0.0
                || w.end_secs < w.start_secs
            {
                return Err(format!(
                    "degradation window [{}, {}) is invalid",
                    w.start_secs, w.end_secs
                ));
            }
            if !w.multiplier.is_finite() || w.multiplier < 0.0 {
                return Err(format!(
                    "degradation multiplier must be finite and >= 0, got {}",
                    w.multiplier
                ));
            }
        }
        for k in &self.shard_kills {
            if !k.at_secs.is_finite() || k.at_secs < 0.0 {
                return Err(format!(
                    "shard kill time must be finite and >= 0, got {}",
                    k.at_secs
                ));
            }
            if k.shards == 0 {
                return Err("shard kill must remove at least one shard".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn any_knob_makes_the_plan_non_empty() {
        assert!(!FaultPlan::with_task_failures(0.1).is_empty());
        let crash = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 1.0,
                down_secs: None,
            }],
            ..FaultPlan::default()
        };
        assert!(!crash.is_empty());
        let degrade = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 10.0,
                multiplier: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(!degrade.is_empty());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        assert!(FaultPlan::with_task_failures(1.5).validate(4).is_err());
        let oob = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 9,
                at_secs: 1.0,
                down_secs: None,
            }],
            ..FaultPlan::default()
        };
        assert!(oob.validate(4).is_err());
        let backwards = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersHdd,
                start_secs: 10.0,
                end_secs: 5.0,
                multiplier: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(backwards.validate(4).is_err());
        let no_attempts = FaultPlan {
            max_task_attempts: 0,
            ..FaultPlan::with_task_failures(0.1)
        };
        assert!(no_attempts.validate(4).is_err());
    }

    #[test]
    fn zero_duration_window_is_valid() {
        let degenerate = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersHdd,
                start_secs: 10.0,
                end_secs: 10.0,
                multiplier: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(degenerate.validate(4).is_ok());
    }

    #[test]
    fn shard_kills_validated_and_counted() {
        let plan = FaultPlan {
            shard_kills: vec![ShardKill {
                dataset: 0,
                at_secs: 5.0,
                shards: 2,
            }],
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        assert!(plan.validate(4).is_ok());
        let zero = FaultPlan {
            shard_kills: vec![ShardKill {
                dataset: 0,
                at_secs: 5.0,
                shards: 0,
            }],
            ..FaultPlan::default()
        };
        assert!(zero.validate(4).is_err());
        let negative = FaultPlan {
            shard_kills: vec![ShardKill {
                dataset: 0,
                at_secs: -1.0,
                shards: 1,
            }],
            ..FaultPlan::default()
        };
        assert!(negative.validate(4).is_err());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan {
            task_failure_prob: 0.05,
            vm_crashes: vec![VmCrash {
                vm: 1,
                at_secs: 30.0,
                down_secs: Some(60.0),
            }],
            degradations: vec![DegradationWindow {
                vm: Some(0),
                tier: Tier::ObjStore,
                start_secs: 5.0,
                end_secs: 25.0,
                multiplier: 0.1,
            }],
            ..FaultPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
