//! Deterministic parallel execution of independent runs.
//!
//! Simulation workloads are full of *embarrassingly parallel* outer
//! loops whose iterations share nothing mutable: annealer restarts,
//! candidate-plan scores, fault-sweep scenarios, durability-sweep grid
//! cells, benchmark repetitions. [`run_indexed`] executes such a loop on
//! a small work-stealing pool of scoped threads (no extra dependencies,
//! no 'static bounds) while keeping the *results* — and therefore
//! everything computed from them — independent of the worker count and
//! of OS scheduling.
//!
//! ## Determinism contract
//!
//! * Each task is identified by its index `0..n` and must derive any
//!   randomness from that index (e.g. a per-run seed mixed from the
//!   index), never from shared mutable state or the worker thread.
//! * Tasks are claimed from a shared atomic counter (work-stealing in
//!   the cheapest possible form: idle workers steal the next index), so
//!   *which* thread runs a task is scheduling-dependent — but the task's
//!   inputs are not.
//! * Results are merged into a `Vec` addressed by task index, so the
//!   returned order is always `0..n` regardless of completion order.
//!
//! Under this contract `run_indexed(w, n, f)` returns bit-identical
//! output for every `w`, including `w == 1`, which is exercised by the
//! `par_determinism` proptests (including under active fault plans).
//!
//! Panics in a task propagate: the pool joins every worker before
//! returning and re-raises the first panic it sees.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count matching the machine's available parallelism (at least
/// one). The pool never helps when `n == 1`; callers can pass this
/// directly to [`run_indexed`].
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(0), f(1), …, f(n-1)` on up to `workers` scoped threads and
/// return the results in index order. With `workers <= 1` (or `n <= 1`)
/// the calls happen inline on the caller's thread; otherwise idle
/// workers claim indices from a shared counter until none remain.
///
/// `f` must uphold the module-level determinism contract: its output
/// may depend only on the index it is given.
pub fn run_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let w = workers.min(n).max(1);
    if w == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let f = &f;
    let next = &next;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(w);
        for _ in 0..w {
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    done.push((i, f(i)));
                }
                done
            }));
        }
        for h in handles {
            // Propagates the first worker panic, after every thread in
            // the scope has been joined.
            for (i, v) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// [`run_indexed`] for *stateful* tasks: run `f(i, &mut states[i])` for
/// every index on up to `workers` scoped threads and return the results
/// in index order. Each state is visited exactly once, so tasks get
/// exclusive `&mut` access to their own slot while the batch as a whole
/// fans out — the shape of a fleet scheduler dispatching per-tenant
/// epochs, where every tenant owns mutable session state.
///
/// The determinism contract is [`run_indexed`]'s, extended to state:
/// `f`'s output and the state it leaves behind may depend only on the
/// index and the state it was handed, never on worker count or claim
/// order. Under that contract both the returned `Vec` and the final
/// `states` are bit-identical for every `workers`, including `1`.
///
/// Each slot is wrapped in an uncontended [`Mutex`] (one claimant per
/// index by construction), so the synchronization cost is a single
/// lock/unlock pair per task.
pub fn run_indexed_mut<S, T, F>(workers: usize, states: &mut [S], f: F) -> Vec<T>
where
    S: Send,
    T: Send,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let n = states.len();
    let w = workers.min(n).max(1);
    if w == 1 {
        return states
            .iter_mut()
            .enumerate()
            .map(|(i, s)| f(i, s))
            .collect();
    }
    let cells: Vec<Mutex<&mut S>> = states.iter_mut().map(Mutex::new).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let f = &f;
    let next = &next;
    let cells = &cells;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(w);
        for _ in 0..w {
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut state = cells[i].lock().expect("unpoisoned: one claimant per index");
                    done.push((i, f(i, &mut state)));
                }
                done
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("parallel worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_in_index_order_for_any_worker_count() {
        let expect: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        for w in [1, 2, 3, 8, 64] {
            let got = run_indexed(w, 97, |i| (i as u64) * 3 + 1);
            assert_eq!(got, expect, "workers={w}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert_eq!(run_indexed(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(8, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn stateful_runs_mutate_every_slot_once_for_any_worker_count() {
        // Each task folds its index into its own state and returns the
        // new value; results and final states must match the sequential
        // loop for every worker count.
        let expect_states: Vec<u64> = (0..61u64).map(|i| i * 1000 + i * 7 + 1).collect();
        for w in [1, 2, 3, 8, 64] {
            let mut states: Vec<u64> = (0..61u64).map(|i| i * 1000).collect();
            let got = run_indexed_mut(w, &mut states, |i, s| {
                *s += i as u64 * 7 + 1;
                *s
            });
            assert_eq!(states, expect_states, "workers={w}");
            assert_eq!(got, expect_states, "workers={w}");
        }
    }

    #[test]
    fn stateful_handles_empty_and_singleton() {
        let mut empty: Vec<u8> = Vec::new();
        assert_eq!(
            run_indexed_mut(8, &mut empty, |i, _| i),
            Vec::<usize>::new()
        );
        let mut one = vec![5u8];
        assert_eq!(
            run_indexed_mut(8, &mut one, |i, s| i + *s as usize),
            vec![5]
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run_indexed(4, 16, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(r.is_err());
    }
}
