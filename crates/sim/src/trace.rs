//! Execution traces and cluster-utilisation accounting.
//!
//! When [`crate::config::SimConfig::collect_trace`] is set, the engine
//! records a [`TaskEvent`] for every task start and completion. The trace
//! supports post-hoc analysis — slot occupancy over time, per-phase
//! concurrency, straggler inspection — without burdening the default
//! simulation path.

use serde::{Deserialize, Serialize};

use cast_workload::job::JobId;

use crate::task::SlotKind;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskEventKind {
    /// A task was dispatched onto a slot.
    Started,
    /// A task finished and released its slot.
    Finished,
    /// A task attempt failed mid-run (fault injection).
    Failed,
    /// A previously failed or killed task was re-dispatched.
    Retried,
    /// A speculative backup copy of a straggler was launched.
    Speculated,
    /// A task was killed — its VM crashed, or its twin won the
    /// speculative race.
    Killed,
}

impl TaskEventKind {
    /// Whether this event puts a task onto a slot.
    pub fn opens(self) -> bool {
        matches!(
            self,
            TaskEventKind::Started | TaskEventKind::Retried | TaskEventKind::Speculated
        )
    }

    /// Whether this event takes a task off its slot.
    pub fn closes(self) -> bool {
        matches!(
            self,
            TaskEventKind::Finished | TaskEventKind::Failed | TaskEventKind::Killed
        )
    }
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskEvent {
    /// Simulated time of the event, seconds.
    pub time: f64,
    /// Owning job.
    pub job: JobId,
    /// VM the task ran on.
    pub vm: u32,
    /// Slot pool the task occupied.
    pub slot: SlotKind,
    /// Event kind.
    pub kind: TaskEventKind,
}

/// An execution trace: events in chronological order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// All recorded events.
    pub events: Vec<TaskEvent>,
}

impl Trace {
    /// Number of tasks that ran (completed `Started` events).
    pub fn task_count(&self, slot: SlotKind) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == TaskEventKind::Started && e.slot == slot)
            .count()
    }

    /// Total busy slot-seconds for a slot pool: Σ (close − open) over task
    /// occupancies (a retry or speculative launch opens, a finish, failure
    /// or kill closes). Events are matched per (job, vm, slot) in FIFO
    /// order, which is exact because the engine retires tasks in
    /// completion order.
    pub fn busy_slot_seconds(&self, slot: SlotKind) -> f64 {
        let mut open: Vec<(JobId, u32, f64)> = Vec::new();
        let mut busy = 0.0;
        for e in &self.events {
            if e.slot != slot {
                continue;
            }
            if e.kind.opens() {
                open.push((e.job, e.vm, e.time));
            } else if e.kind.closes() {
                if let Some(i) = open.iter().position(|&(j, vm, _)| j == e.job && vm == e.vm) {
                    let (_, _, start) = open.swap_remove(i);
                    busy += e.time - start;
                }
            }
        }
        busy
    }

    /// Mean occupancy of a slot pool over `[0, makespan]`:
    /// `busy slot-seconds / (slots × makespan)`, in `[0, 1]`.
    pub fn utilization(&self, slot: SlotKind, total_slots: usize, makespan_secs: f64) -> f64 {
        if total_slots == 0 || makespan_secs <= 0.0 {
            return 0.0;
        }
        (self.busy_slot_seconds(slot) / (total_slots as f64 * makespan_secs)).clamp(0.0, 1.0)
    }

    /// Peak concurrent tasks in a slot pool.
    pub fn peak_concurrency(&self, slot: SlotKind) -> usize {
        let mut level = 0usize;
        let mut peak = 0usize;
        for e in &self.events {
            if e.slot != slot {
                continue;
            }
            if e.kind.opens() {
                level += 1;
                peak = peak.max(level);
            } else if e.kind.closes() {
                level = level.saturating_sub(1);
            }
        }
        peak
    }

    /// Number of events of one kind (e.g. how many tasks failed).
    pub fn count(&self, kind: TaskEventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, job: u32, kind: TaskEventKind) -> TaskEvent {
        TaskEvent {
            time,
            job: JobId(job),
            vm: 0,
            slot: SlotKind::Map,
            kind,
        }
    }

    #[test]
    fn busy_time_matches_hand_calc() {
        let trace = Trace {
            events: vec![
                ev(0.0, 0, TaskEventKind::Started),
                ev(1.0, 1, TaskEventKind::Started),
                ev(3.0, 0, TaskEventKind::Finished),
                ev(4.0, 1, TaskEventKind::Finished),
            ],
        };
        assert_eq!(trace.task_count(SlotKind::Map), 2);
        assert!((trace.busy_slot_seconds(SlotKind::Map) - 6.0).abs() < 1e-12);
        assert_eq!(trace.peak_concurrency(SlotKind::Map), 2);
        // Two slots over 4s: 6/8 = 75% occupied.
        assert!((trace.utilization(SlotKind::Map, 2, 4.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn other_pools_are_untouched() {
        let trace = Trace {
            events: vec![
                ev(0.0, 0, TaskEventKind::Started),
                ev(1.0, 0, TaskEventKind::Finished),
            ],
        };
        assert_eq!(trace.task_count(SlotKind::Reduce), 0);
        assert_eq!(trace.busy_slot_seconds(SlotKind::Reduce), 0.0);
        assert_eq!(trace.peak_concurrency(SlotKind::Transfer), 0);
    }

    #[test]
    fn degenerate_utilization_is_zero() {
        let trace = Trace::default();
        assert_eq!(trace.utilization(SlotKind::Map, 0, 10.0), 0.0);
        assert_eq!(trace.utilization(SlotKind::Map, 4, 0.0), 0.0);
    }

    #[test]
    fn fault_events_open_and_close_occupancy() {
        // A task starts, fails at t=2, retries at t=5, finishes at t=8:
        // occupied 2s + 3s = 5s of slot time.
        let trace = Trace {
            events: vec![
                ev(0.0, 0, TaskEventKind::Started),
                ev(2.0, 0, TaskEventKind::Failed),
                ev(5.0, 0, TaskEventKind::Retried),
                ev(8.0, 0, TaskEventKind::Finished),
            ],
        };
        assert!((trace.busy_slot_seconds(SlotKind::Map) - 5.0).abs() < 1e-12);
        assert_eq!(trace.peak_concurrency(SlotKind::Map), 1);
        assert_eq!(trace.count(TaskEventKind::Failed), 1);
        assert_eq!(trace.count(TaskEventKind::Retried), 1);
        // A speculative twin killed when the original wins.
        let spec = Trace {
            events: vec![
                ev(0.0, 1, TaskEventKind::Started),
                ev(1.0, 1, TaskEventKind::Speculated),
                ev(4.0, 1, TaskEventKind::Finished),
                ev(4.0, 1, TaskEventKind::Killed),
            ],
        };
        assert_eq!(spec.peak_concurrency(SlotKind::Map), 2);
        assert!((spec.busy_slot_seconds(SlotKind::Map) - 7.0).abs() < 1e-12);
    }
}
