//! What-if candidate scoring against a live simulation.
//!
//! At a replan point the runtime holds a mid-stream simulation and a set
//! of candidate plans, each expressed as placement overrides for jobs
//! that have not started yet. Two scoring backends share one candidate
//! semantics ("redirect still-waiting jobs at the replan horizon"):
//!
//! * [`score_cold`] — the pre-snapshot way: one fresh engine per
//!   candidate, re-simulating from the epoch boundary up to the horizon
//!   before applying the overrides. O(candidates × full-run).
//! * [`score_forked`] — simulate the shared prefix once, snapshot, and
//!   fork one engine per candidate ([`EngineSnapshot::fork`]); each fork
//!   scores only the tail. O(full-run + candidates × tail).
//!
//! Fork equivalence (a fork resumes bit-identically to an uninterrupted
//! run) guarantees the two backends return byte-identical reports, so
//! the winner — [`pick_winner`], smallest makespan under `f64` total
//! order, ties to the lowest candidate index — is the same plan either
//! way. Both backends fan out through [`crate::par::run_indexed`], whose
//! index-ordered merge keeps results deterministic across worker counts.

use std::cmp::Ordering;

use cast_workload::job::JobId;

use crate::config::SimConfig;
use crate::engine::{Engine, EngineSnapshot};
use crate::error::SimError;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::SimReport;
use crate::par::run_indexed;
use crate::placement::JobPlacement;

/// One placement override inside a candidate plan: redirect `job` to
/// `placement` — applied only if the job is still waiting at the replan
/// point (work already in flight keeps its committed placement).
#[derive(Debug, Clone)]
pub struct CandidateOverride {
    /// Workload job to redirect.
    pub job: JobId,
    /// The placement the candidate gives it.
    pub placement: JobPlacement,
}

/// Apply a candidate's overrides to a live engine. Jobs past `Waiting`
/// (or absent from the run table) are skipped — deterministically, since
/// phase-at-horizon is itself deterministic.
fn apply_candidate(eng: &mut Engine<'_>, overrides: &[CandidateOverride]) {
    for o in overrides {
        if let Some(idx) = eng.jobs().iter().position(|r| r.job.id == o.job) {
            if eng.jobs()[idx].phase == JobPhase::Waiting {
                eng.set_placement(idx, o.placement.clone())
                    .expect("waiting job accepts placement");
            }
        }
    }
}

/// Cold-restart scoring: per candidate, a fresh engine over a clone of
/// `runs` advances to `horizon`, applies the overrides, and runs to
/// completion. The shared prefix is re-simulated once per candidate —
/// this is the baseline [`score_forked`] eliminates.
pub fn score_cold(
    cfg: &SimConfig,
    runs: &[JobRun],
    candidates: &[Vec<CandidateOverride>],
    horizon: f64,
    workers: usize,
) -> Result<Vec<SimReport>, SimError> {
    run_indexed(workers, candidates.len(), |i| {
        let mut eng = Engine::new(cfg, runs.to_vec());
        eng.run_until(horizon)?;
        apply_candidate(&mut eng, &candidates[i]);
        eng.finish().map(|(report, _)| report)
    })
    .into_iter()
    .collect()
}

/// Fork-backed scoring: one fork per candidate off a snapshot taken at
/// the replan point, scored against the actual in-flight state. Byte-
/// identical to [`score_cold`] over the same prepared runs and horizon.
pub fn score_forked(
    snapshot: &EngineSnapshot,
    candidates: &[Vec<CandidateOverride>],
    workers: usize,
) -> Result<Vec<SimReport>, SimError> {
    run_indexed(workers, candidates.len(), |i| {
        let mut eng = snapshot.fork();
        apply_candidate(&mut eng, &candidates[i]);
        eng.finish().map(|(report, _)| report)
    })
    .into_iter()
    .collect()
}

/// Deterministic winner selection: smallest makespan under `f64` total
/// order; ties break to the lowest candidate index. `None` only for an
/// empty slate.
pub fn pick_winner(reports: &[SimReport]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, r) in reports.iter().enumerate() {
        let better = match best {
            None => true,
            Some(b) => r.makespan.secs().total_cmp(&reports[b].makespan.secs()) == Ordering::Less,
        };
        if better {
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, VmCrash};
    use crate::placement::PlacementMap;
    use crate::runner::prepare_runs;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::synth;

    fn setup() -> (Vec<JobRun>, SimConfig, Vec<Vec<CandidateOverride>>) {
        let spec = synth::workflow_suite(0xC0FFEE);
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), Tier::PersHdd);
        let agg = PerTier::from_fn(|_| DataSize::from_gb(4000.0));
        let mut cfg = SimConfig::with_aggregate_capacity(Catalog::aws_like(), 8, &agg).unwrap();
        cfg.jitter = 0.0;
        cfg.concurrency = crate::config::Concurrency::Parallel;
        cfg.faults = FaultPlan {
            seed: 11,
            task_failure_prob: 0.05,
            max_task_attempts: 12,
            vm_crashes: vec![VmCrash {
                vm: 2,
                at_secs: 30.0,
                down_secs: Some(90.0),
            }],
            ..FaultPlan::default()
        };
        let runs = prepare_runs(&spec, &placements, &[], &cfg).unwrap();
        let candidates: Vec<Vec<CandidateOverride>> = [Tier::PersHdd, Tier::PersSsd, Tier::EphSsd]
            .iter()
            .map(|&t| {
                spec.jobs
                    .iter()
                    .map(|j| CandidateOverride {
                        job: j.id,
                        placement: JobPlacement::all_on(t),
                    })
                    .collect()
            })
            .collect();
        (runs, cfg, candidates)
    }

    #[test]
    fn cold_and_forked_scoring_are_byte_identical() {
        let (runs, cfg, candidates) = setup();
        let horizon = 60.0;
        let cold = score_cold(&cfg, &runs, &candidates, horizon, 2).unwrap();
        let mut live = Engine::new(&cfg, runs.clone());
        live.run_until(horizon).unwrap();
        let snap = live.snapshot();
        let forked = score_forked(&snap, &candidates, 2).unwrap();
        assert_eq!(
            serde_json::to_string(&cold).unwrap(),
            serde_json::to_string(&forked).unwrap()
        );
        assert_eq!(pick_winner(&cold), pick_winner(&forked));
    }

    #[test]
    fn winner_is_stable_across_worker_counts() {
        let (runs, cfg, candidates) = setup();
        let mut live = Engine::new(&cfg, runs.clone());
        live.run_until(45.0).unwrap();
        let snap = live.snapshot();
        let baseline = score_forked(&snap, &candidates, 1).unwrap();
        for workers in [2, 8] {
            let got = score_forked(&snap, &candidates, workers).unwrap();
            assert_eq!(
                serde_json::to_string(&baseline).unwrap(),
                serde_json::to_string(&got).unwrap(),
                "worker count {workers} changed scoring output"
            );
            assert_eq!(pick_winner(&baseline), pick_winner(&got));
        }
    }

    #[test]
    fn pick_winner_ties_break_low() {
        let (runs, cfg, _) = setup();
        let report = Engine::new(&cfg, runs).run().unwrap();
        let same = vec![report.clone(), report];
        assert_eq!(pick_winner(&same), Some(0));
        assert_eq!(pick_winner(&[]), None);
    }
}
