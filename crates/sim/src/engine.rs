//! The progress-based discrete-event engine.
//!
//! The engine owns the job table, the active task set and the resource
//! registry. Each iteration it (1) dispatches pending tasks onto free
//! slots, (2) recomputes every streaming task's rate from current resource
//! shares, (3) advances simulated time to the earliest stage completion,
//! and (4) retires finished stages/tasks, advancing job phases as they
//! drain. Rates are recomputed after every event, so contention effects —
//! a wave of 400 map tasks splitting volume bandwidth 16-ways per VM —
//! appear without any closed-form modelling.

use cast_workload::job::JobId;

use crate::config::{Concurrency, SimConfig};
use crate::error::SimError;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::{JobMetrics, SimReport};
use crate::resources::ShareRegistry;
use crate::task::{RunningTask, SlotKind};
use crate::trace::{TaskEvent, TaskEventKind, Trace};
use cast_cloud::units::Duration;

/// Maximum number of engine iterations before declaring a runaway.
const EVENT_BUDGET: u64 = 50_000_000;
/// Completion tolerance for floating-point progress.
const EPS: f64 = 1e-9;

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine<'a> {
    cfg: &'a SimConfig,
    reg: ShareRegistry,
    jobs: Vec<JobRun>,
    tasks: Vec<RunningTask>,
    rates: Vec<f64>,
    free_map: Vec<usize>,
    free_red: Vec<usize>,
    clock: f64,
    dispatch_cursor: usize,
    trace: Option<Trace>,
}

impl<'a> Engine<'a> {
    /// Build an engine over prepared job runs. `jobs` must be ordered so
    /// that every dependency index is smaller than the dependent's index.
    pub fn new(cfg: &'a SimConfig, jobs: Vec<JobRun>) -> Engine<'a> {
        Engine {
            reg: ShareRegistry::new(cfg),
            jobs,
            tasks: Vec::new(),
            rates: Vec::new(),
            free_map: vec![cfg.vm.map_slots; cfg.nvm],
            free_red: vec![cfg.vm.reduce_slots; cfg.nvm],
            clock: 0.0,
            dispatch_cursor: 0,
            trace: cfg.collect_trace.then(Trace::default),
            cfg,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        let mut events: u64 = 0;
        loop {
            self.activate_ready_jobs();
            self.dispatch();
            if self.tasks.is_empty() {
                if self.jobs.iter().all(|j| j.phase == JobPhase::Done) {
                    break;
                }
                return Err(SimError::Stalled { at_secs: self.clock });
            }
            self.step()?;
            events += 1;
            if events > EVENT_BUDGET {
                return Err(SimError::EventBudgetExhausted);
            }
        }
        let mut metrics: Vec<JobMetrics> = self
            .jobs
            .iter()
            .map(|j| JobMetrics {
                job: j.job.id,
                submitted: Duration::from_secs(nan_zero(j.submitted)),
                started: Duration::from_secs(nan_zero(j.started)),
                finished: Duration::from_secs(nan_zero(j.finished)),
                stage_in: Duration::from_secs(j.phase_secs[0]),
                map: Duration::from_secs(j.phase_secs[1]),
                reduce: Duration::from_secs(j.phase_secs[3]),
                stage_out: Duration::from_secs(j.phase_secs[4]),
            })
            .collect();
        metrics.sort_by(|a, b| {
            a.finished
                .secs()
                .partial_cmp(&b.finished.secs())
                .expect("finite times")
        });
        Ok(SimReport {
            jobs: metrics,
            makespan: Duration::from_secs(self.clock),
            trace: self.trace,
        })
    }

    /// Move `Waiting` jobs whose dependencies are done into their first
    /// working phase, respecting the concurrency mode.
    fn activate_ready_jobs(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].phase != JobPhase::Waiting {
                continue;
            }
            let deps_done = self.jobs[i]
                .deps
                .iter()
                .all(|&d| self.jobs[d].phase == JobPhase::Done);
            if !deps_done {
                continue;
            }
            if self.cfg.concurrency == Concurrency::Sequential {
                // Only the earliest unfinished job may start.
                let earlier_unfinished = self.jobs[..i]
                    .iter()
                    .any(|j| j.phase != JobPhase::Done);
                if earlier_unfinished {
                    continue;
                }
            }
            let job = &mut self.jobs[i];
            job.submitted = self.clock;
            job.advance_phase(self.clock, self.cfg);
        }
    }

    /// Assign pending task templates to free slots.
    fn dispatch(&mut self) {
        let n = self.jobs.len();
        for off in 0..n {
            let i = (self.dispatch_cursor + off) % n;
            while let Some(tmpl) = self.jobs[i].pending.front() {
                if matches!(
                    self.jobs[i].phase,
                    JobPhase::Waiting | JobPhase::Done
                ) {
                    break;
                }
                let vm = match tmpl.slot {
                    SlotKind::Map => pick_vm(&self.free_map),
                    SlotKind::Reduce => pick_vm(&self.free_red),
                    SlotKind::Transfer => Some(self.tasks.len() % self.cfg.nvm),
                };
                let Some(vm) = vm else { break };
                let tmpl = self.jobs[i].pending.pop_front().expect("peeked");
                match tmpl.slot {
                    SlotKind::Map => self.free_map[vm] -= 1,
                    SlotKind::Reduce => self.free_red[vm] -= 1,
                    SlotKind::Transfer => {}
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.events.push(TaskEvent {
                        time: self.clock,
                        job: self.jobs[i].job.id,
                        vm: vm as u32,
                        slot: tmpl.slot,
                        kind: TaskEventKind::Started,
                    });
                }
                self.tasks.push(RunningTask::bind(i, vm as u32, &tmpl));
                self.jobs[i].active += 1;
            }
        }
        self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
    }

    /// Advance time to the next stage completion.
    fn step(&mut self) -> Result<(), SimError> {
        // Register flows of streaming (non-latent) stages.
        self.reg.clear_counts();
        for t in &self.tasks {
            if let Some(s) = t.current() {
                if !s.is_latent() && s.units_remaining > EPS {
                    s.register(&mut self.reg);
                }
            }
        }
        // Compute rates and the time of the earliest completion.
        self.rates.clear();
        let mut dt = f64::INFINITY;
        for t in &self.tasks {
            let s = t.current().expect("active task has a stage");
            if s.is_latent() {
                self.rates.push(0.0);
                dt = dt.min(s.fixed_remaining);
            } else if s.units_remaining <= EPS {
                self.rates.push(0.0);
                dt = 0.0;
            } else {
                let rate = s.rate(&self.reg);
                if rate <= 0.0 || rate.is_nan() {
                    return Err(SimError::Stalled { at_secs: self.clock });
                }
                self.rates.push(rate);
                dt = dt.min(s.units_remaining / rate);
            }
        }
        debug_assert!(dt.is_finite(), "no progress possible");
        // Advance all tasks by dt.
        self.clock += dt;
        for (t, &rate) in self.tasks.iter_mut().zip(self.rates.iter()) {
            let s = t.current_mut().expect("active task has a stage");
            if s.fixed_remaining > 0.0 {
                s.fixed_remaining -= dt;
                if s.fixed_remaining < EPS {
                    s.fixed_remaining = 0.0;
                }
            } else {
                s.units_remaining -= dt * rate;
                if s.units_remaining < EPS {
                    s.units_remaining = 0.0;
                }
            }
        }
        // Retire completed stages and tasks.
        let mut idx = 0;
        while idx < self.tasks.len() {
            let task = &mut self.tasks[idx];
            while task.current().is_some_and(|s| s.is_done()) {
                task.stages.pop_front();
            }
            if task.is_done() {
                let vm = task.vm as usize;
                match task.slot {
                    SlotKind::Map => self.free_map[vm] += 1,
                    SlotKind::Reduce => self.free_red[vm] += 1,
                    SlotKind::Transfer => {}
                }
                let job = task.job;
                let (slot, vm_id) = (task.slot, task.vm);
                self.tasks.swap_remove(idx);
                if let Some(trace) = self.trace.as_mut() {
                    trace.events.push(TaskEvent {
                        time: self.clock,
                        job: self.jobs[job].job.id,
                        vm: vm_id,
                        slot,
                        kind: TaskEventKind::Finished,
                    });
                }
                self.jobs[job].active -= 1;
                if self.jobs[job].phase_drained() && self.jobs[job].phase != JobPhase::Done {
                    self.jobs[job].advance_phase(self.clock, self.cfg);
                }
            } else {
                idx += 1;
            }
        }
        Ok(())
    }
}

/// VM with the most free slots, or `None` if all are exhausted.
fn pick_vm(free: &[usize]) -> Option<usize> {
    let (vm, &n) = free
        .iter()
        .enumerate()
        .max_by_key(|&(_, &n)| n)
        .expect("cluster has VMs");
    (n > 0).then_some(vm)
}

fn nan_zero(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

/// Convenience: ids of all jobs in the engine's table (test helper).
pub fn job_ids(jobs: &[JobRun]) -> Vec<JobId> {
    jobs.iter().map(|j| j.job.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::JobPlacement;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::Job;
    use cast_workload::profile::ProfileSet;

    fn cfg(nvm: usize) -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0 * nvm as f64);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), nvm, &agg).unwrap();
        c.jitter = 0.0;
        c
    }

    fn run(app: AppKind, gb: f64, tier: Tier, c: &SimConfig) -> SimReport {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run().unwrap()
    }

    #[test]
    fn grep_runtime_tracks_storage_bandwidth() {
        let c = cfg(1);
        // Grep is map-I/O bound: 30 GB at ~234 MB/s (500 GB persSSD)
        // against ~97 MB/s (500 GB persHDD): HDD should be ~2.4× slower.
        let ssd = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::Grep, 30.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (1.8..3.2).contains(&ratio),
            "expected ~2.4x slowdown, got {ratio:.2} ({} vs {})",
            ssd.makespan,
            hdd.makespan
        );
    }

    #[test]
    fn grep_map_io_estimate_close_to_bandwidth_bound() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        // Lower bound: 30 000 MB / 234 MB/s ≈ 128 s.
        let lb = 30_000.0 / 234.0;
        let got = r.makespan.secs();
        assert!(got >= lb * 0.95, "impossibly fast: {got} < {lb}");
        assert!(got <= lb * 1.6, "too slow: {got} vs bound {lb}");
    }

    #[test]
    fn kmeans_insensitive_to_tier() {
        let c = cfg(1);
        let ssd = run(AppKind::KMeans, 20.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::KMeans, 20.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (0.9..1.2).contains(&ratio),
            "CPU-bound app should not care about tier, got {ratio:.2}"
        );
    }

    #[test]
    fn ephemeral_pays_staging() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::EphSsd, &c);
        let m = &r.jobs[0];
        assert!(m.stage_in.secs() > 0.0, "must download input");
        // Grep output is tiny; upload may be near-zero but present.
        assert!(m.map.secs() > 0.0);
        // Download at 265 MB/s vs map at 733 MB/s: staging dominates.
        assert!(m.stage_in.secs() > m.map.secs());
    }

    #[test]
    fn sort_slower_than_grep_same_tier() {
        let c = cfg(1);
        let sort = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let grep = run(AppKind::Grep, 20.0, Tier::PersSsd, &c);
        assert!(
            sort.makespan.secs() > 1.5 * grep.makespan.secs(),
            "sort moves ~3-4x the bytes: {} vs {}",
            sort.makespan,
            grep.makespan
        );
    }

    #[test]
    fn more_vms_speed_up_io_bound_jobs() {
        let c1 = cfg(1);
        let c4 = cfg(4);
        let one = run(AppKind::Grep, 60.0, Tier::PersSsd, &c1);
        let four = run(AppKind::Grep, 60.0, Tier::PersSsd, &c4);
        let speedup = one.makespan.secs() / four.makespan.secs();
        assert!(
            speedup > 2.5,
            "4 VMs with 4x aggregate volume bandwidth: got {speedup:.2}x"
        );
    }

    #[test]
    fn sequential_jobs_do_not_overlap() {
        let c = cfg(1);
        let profiles = ProfileSet::defaults();
        let jobs: Vec<JobRun> = (0..2)
            .map(|i| {
                let job = Job::with_default_layout(
                    JobId(i),
                    AppKind::Grep,
                    DatasetId(i),
                    DataSize::from_gb(10.0),
                );
                JobRun::new(
                    job,
                    JobPlacement::all_on(Tier::PersSsd),
                    *profiles.get(AppKind::Grep),
                    vec![],
                )
            })
            .collect();
        let report = Engine::new(&c, jobs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn parallel_jobs_overlap_and_contend() {
        let mut c = cfg(1);
        let profiles = ProfileSet::defaults();
        let mk = |i: u32| {
            let job = Job::with_default_layout(
                JobId(i),
                AppKind::Grep,
                DatasetId(i),
                DataSize::from_gb(10.0),
            );
            JobRun::new(
                job,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            )
        };
        let seq = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        c.concurrency = Concurrency::Parallel;
        let par = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        let b = par.job(JobId(1)).unwrap();
        let a = par.job(JobId(0)).unwrap();
        assert!(
            b.started.secs() < a.finished.secs(),
            "parallel mode must overlap"
        );
        // Sharing the volume: parallel makespan close to sequential (same
        // aggregate bytes through the same bottleneck).
        let ratio = par.makespan.secs() / seq.makespan.secs();
        assert!((0.8..1.25).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dependency_ordering_enforced() {
        let mut c = cfg(1);
        c.concurrency = Concurrency::Parallel;
        let profiles = ProfileSet::defaults();
        let j0 = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(10.0),
        );
        let j1 = Job::with_default_layout(
            JobId(1),
            AppKind::Grep,
            DatasetId(1),
            DataSize::from_gb(5.0),
        );
        let runs = vec![
            JobRun::new(
                j0,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            ),
            JobRun::new(
                j1,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![0],
            ),
        ];
        let report = Engine::new(&c, runs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn fine_grained_split_straggles() {
        // A tenant splitting 6 GB 90/10 across ephSSD/persHDD provisions a
        // minimal 100 GB HDD volume (20 MB/s) for the small slice.
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(100.0);
        let mut c =
            SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        c.jitter = 0.0;
        let profiles = ProfileSet::defaults();
        let mk = |input: crate::placement::SplitPlacement| {
            let job = Job::with_default_layout(
                JobId(0),
                AppKind::Grep,
                DatasetId(0),
                DataSize::from_gb(6.0),
            );
            let mut p = JobPlacement::all_on(Tier::EphSsd);
            p.stage_in_from = None; // isolate the map phase effect
            p.stage_out_to = None;
            p.input = input;
            JobRun::new(job, p, *profiles.get(AppKind::Grep), vec![])
        };
        let all_eph = Engine::new(&c, vec![mk(crate::placement::SplitPlacement::single(Tier::EphSsd))])
            .run()
            .unwrap();
        let split = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::split(
                Tier::EphSsd,
                0.9,
                Tier::PersHdd,
            ))],
        )
        .run()
        .unwrap();
        // Even with 90% of data on the fast tier, the slow-tier tasks
        // dominate the single map wave (Fig. 5b).
        assert!(
            split.makespan.secs() > 1.5 * all_eph.makespan.secs(),
            "{} vs {}",
            split.makespan,
            all_eph.makespan
        );
    }

    #[test]
    fn stalls_on_unprovisioned_tier() {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0);
        let c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(1.0),
        );
        // persHDD has zero provisioned capacity → zero bandwidth → stall.
        let jr = JobRun::new(
            job,
            JobPlacement::all_on(Tier::PersHdd),
            *profiles.get(AppKind::Grep),
            vec![],
        );
        let err = Engine::new(&c, vec![jr]).run().unwrap_err();
        assert!(matches!(err, SimError::Stalled { .. }));
    }
}
