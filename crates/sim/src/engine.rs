//! The progress-based discrete-event engine.
//!
//! The engine owns the job table, the active task set and the resource
//! registry. Each iteration it (1) dispatches pending tasks onto free
//! slots, (2) recomputes every streaming task's rate from current resource
//! shares, (3) advances simulated time to the earliest stage completion,
//! and (4) retires finished stages/tasks, advancing job phases as they
//! drain. Rates are recomputed after every event, so contention effects —
//! a wave of 400 map tasks splitting volume bandwidth 16-ways per VM —
//! appear without any closed-form modelling.
//!
//! ## Fault injection and recovery
//!
//! When [`SimConfig::faults`] carries a non-empty
//! [`crate::fault::FaultPlan`], the engine layers recovery semantics on
//! top of the progress loop:
//!
//! * every task attempt draws — from an RNG keyed by `(plan seed, task
//!   uid, attempt)` — whether and where it fails mid-stream;
//! * failed tasks re-enqueue with exponential backoff, up to the plan's
//!   attempt budget ([`SimError::JobFailed`] beyond it);
//! * scheduled VM crashes kill resident tasks (re-enqueued at the *same*
//!   attempt — the crash was not their fault) and take the VM's slots
//!   offline until the scheduled recovery, if any;
//! * degradation windows scale volume capacities for their duration;
//! * optional Hadoop-style speculation launches a backup copy of any task
//!   streaming slower than a configured fraction of its wave's median
//!   rate; whichever copy finishes first kills the other.
//!
//! The empty plan takes none of these code paths, so fault-free
//! simulations are bit-identical with the machinery present.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cast_obs::{Collector, Counter, EventBody, Histogram};
use cast_workload::job::JobId;

use crate::config::{Concurrency, SimConfig};
use crate::error::SimError;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::{FaultSummary, JobMetrics, SimReport};
use crate::resources::{ResKind, ShareRegistry};
use crate::task::{BoundStage, RunningTask, SlotKind, TaskTemplate};
use crate::trace::{TaskEvent, TaskEventKind, Trace};
use cast_cloud::units::Duration;

/// Maximum number of engine iterations before declaring a runaway.
const EVENT_BUDGET: u64 = 50_000_000;
/// Completion tolerance for floating-point progress.
const EPS: f64 = 1e-9;
/// High bit marking the uid of a speculative backup copy.
const BACKUP_BIT: u64 = 1 << 63;
/// Cap on consecutive simulated object-store request retries per stage.
const MAX_OBJ_RETRIES: u32 = 16;
/// Engine steps between tier-contention samples on a recording collector.
const CONTENTION_STRIDE: u64 = 32;

/// Observability handles, resolved once at engine construction so the hot
/// loop never touches the registry. With a no-op collector every operation
/// is a single branch; none of them feed back into the simulation.
struct SimObs {
    col: Collector,
    started: Counter,
    finished: Counter,
    failed: Counter,
    retried: Counter,
    speculated: Counter,
    killed: Counter,
    steps: Counter,
    fault_edges: Counter,
    wave_tasks: Histogram,
}

impl SimObs {
    fn new(col: Collector) -> SimObs {
        SimObs {
            started: col.counter("sim.tasks.started"),
            finished: col.counter("sim.tasks.finished"),
            failed: col.counter("sim.tasks.failed"),
            retried: col.counter("sim.tasks.retried"),
            speculated: col.counter("sim.tasks.speculated"),
            killed: col.counter("sim.tasks.killed"),
            steps: col.counter("sim.steps"),
            fault_edges: col.counter("sim.fault.edges"),
            wave_tasks: col.histogram(
                "sim.wave_tasks",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
            ),
            col,
        }
    }

    fn task_counter(&self, kind: TaskEventKind) -> &Counter {
        match kind {
            TaskEventKind::Started => &self.started,
            TaskEventKind::Finished => &self.finished,
            TaskEventKind::Failed => &self.failed,
            TaskEventKind::Retried => &self.retried,
            TaskEventKind::Speculated => &self.speculated,
            TaskEventKind::Killed => &self.killed,
        }
    }
}

/// Span-taxonomy label of a task-lifecycle edge.
fn task_kind_label(kind: TaskEventKind) -> &'static str {
    match kind {
        TaskEventKind::Started => "started",
        TaskEventKind::Finished => "finished",
        TaskEventKind::Failed => "failed",
        TaskEventKind::Retried => "retried",
        TaskEventKind::Speculated => "speculated",
        TaskEventKind::Killed => "killed",
    }
}

/// A scheduled point where the fault plan changes the cluster.
#[derive(Debug, Clone, Copy)]
struct FaultEvent {
    at: f64,
    kind: FaultEventKind,
}

#[derive(Debug, Clone, Copy)]
enum FaultEventKind {
    Crash(u32),
    Recover(u32),
    /// A degradation window opens or closes; capacities are re-derived
    /// from scratch at every edge.
    DegradationEdge,
}

/// A failed or crash-killed task waiting out its retry backoff.
#[derive(Debug, Clone)]
struct RetryEntry {
    ready_at: f64,
    job: usize,
    uid: u64,
    attempt: u32,
    template: Box<TaskTemplate>,
}

/// Engine-side fault bookkeeping (cold when the plan is empty).
struct FaultState {
    enabled: bool,
    crashed: Vec<bool>,
    events: Vec<FaultEvent>,
    next_event: usize,
    retries: Vec<RetryEntry>,
    /// Per-job counter handing out stable task uids.
    seq: Vec<u32>,
    vm_crashes: u32,
}

impl FaultState {
    fn new(cfg: &SimConfig, njobs: usize) -> FaultState {
        let plan = &cfg.faults;
        let enabled = !plan.is_empty();
        let mut events = Vec::new();
        if enabled {
            for c in &plan.vm_crashes {
                events.push(FaultEvent {
                    at: c.at_secs,
                    kind: FaultEventKind::Crash(c.vm),
                });
                if let Some(d) = c.down_secs {
                    events.push(FaultEvent {
                        at: c.at_secs + d,
                        kind: FaultEventKind::Recover(c.vm),
                    });
                }
            }
            for w in &plan.degradations {
                for at in [w.start_secs, w.end_secs] {
                    events.push(FaultEvent {
                        at,
                        kind: FaultEventKind::DegradationEdge,
                    });
                }
            }
            events.sort_by(|a, b| a.at.total_cmp(&b.at));
        }
        FaultState {
            enabled,
            crashed: vec![false; cfg.nvm],
            events,
            next_event: 0,
            retries: Vec::new(),
            seq: vec![0; njobs],
            vm_crashes: 0,
        }
    }
}

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine<'a> {
    cfg: &'a SimConfig,
    reg: ShareRegistry,
    jobs: Vec<JobRun>,
    tasks: Vec<RunningTask>,
    rates: Vec<f64>,
    free_map: Vec<usize>,
    free_red: Vec<usize>,
    clock: f64,
    dispatch_cursor: usize,
    trace: Option<Trace>,
    fault: FaultState,
    obs: SimObs,
    steps_done: u64,
}

impl<'a> Engine<'a> {
    /// Build an engine over prepared job runs. `jobs` must be ordered so
    /// that every dependency index is smaller than the dependent's index.
    pub fn new(cfg: &'a SimConfig, jobs: Vec<JobRun>) -> Engine<'a> {
        Engine::observed(cfg, jobs, Collector::noop())
    }

    /// [`Engine::new`] with an observability collector attached. The
    /// collector only records what the engine already computes; results
    /// are bit-identical to an unobserved run.
    pub fn observed(cfg: &'a SimConfig, jobs: Vec<JobRun>, collector: Collector) -> Engine<'a> {
        let fault = FaultState::new(cfg, jobs.len());
        Engine {
            reg: ShareRegistry::new(cfg),
            jobs,
            tasks: Vec::new(),
            rates: Vec::new(),
            free_map: vec![cfg.vm.map_slots; cfg.nvm],
            free_red: vec![cfg.vm.reduce_slots; cfg.nvm],
            clock: 0.0,
            dispatch_cursor: 0,
            trace: cfg.collect_trace.then(Trace::default),
            fault,
            obs: SimObs::new(collector),
            steps_done: 0,
            cfg,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        if let Err(reason) = self.cfg.faults.validate(self.cfg.nvm) {
            return Err(SimError::InvalidFaultPlan { reason });
        }
        let mut events: u64 = 0;
        loop {
            self.process_fault_events();
            self.activate_ready_jobs();
            self.dispatch_retries();
            self.dispatch();
            self.speculate();
            if self.tasks.is_empty() {
                if self.jobs.iter().all(|j| j.phase == JobPhase::Done) {
                    break;
                }
                // No runnable work, but a retry backoff or a scheduled
                // fault event (e.g. a VM recovery) may unblock us.
                if let Some(wake) = self.next_wake() {
                    self.clock = wake;
                    events += 1;
                    if events > EVENT_BUDGET {
                        return Err(SimError::EventBudgetExhausted);
                    }
                    continue;
                }
                return Err(self.stalled_error());
            }
            self.step()?;
            events += 1;
            if events > EVENT_BUDGET {
                return Err(SimError::EventBudgetExhausted);
            }
        }
        let mut metrics: Vec<JobMetrics> = self
            .jobs
            .iter()
            .map(|j| JobMetrics {
                job: j.job.id,
                submitted: Duration::from_secs(nan_zero(j.submitted)),
                started: Duration::from_secs(nan_zero(j.started)),
                finished: Duration::from_secs(nan_zero(j.finished)),
                stage_in: Duration::from_secs(j.phase_secs[0]),
                map: Duration::from_secs(j.phase_secs[1]),
                reduce: Duration::from_secs(j.phase_secs[3]),
                stage_out: Duration::from_secs(j.phase_secs[4]),
                failures: j.failures,
                retries: j.retries,
                speculations: j.speculations,
                kills: j.kills,
            })
            .collect();
        metrics.sort_by(|a, b| a.finished.secs().total_cmp(&b.finished.secs()));
        let faults = FaultSummary {
            task_failures: self.jobs.iter().map(|j| j.failures).sum(),
            retries: self.jobs.iter().map(|j| j.retries).sum(),
            speculations: self.jobs.iter().map(|j| j.speculations).sum(),
            kills: self.jobs.iter().map(|j| j.kills).sum(),
            vm_crashes: self.fault.vm_crashes,
        };
        Ok(SimReport {
            jobs: metrics,
            makespan: Duration::from_secs(self.clock),
            faults,
            trace: self.trace,
        })
    }

    /// Move `Waiting` jobs whose dependencies are done into their first
    /// working phase, respecting the concurrency mode.
    fn activate_ready_jobs(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].phase != JobPhase::Waiting {
                continue;
            }
            let deps_done = self.jobs[i]
                .deps
                .iter()
                .all(|&d| self.jobs[d].phase == JobPhase::Done);
            if !deps_done {
                continue;
            }
            if self.cfg.concurrency == Concurrency::Sequential {
                // Only the earliest unfinished job may start.
                let earlier_unfinished = self.jobs[..i].iter().any(|j| j.phase != JobPhase::Done);
                if earlier_unfinished {
                    continue;
                }
            }
            let job = &mut self.jobs[i];
            job.submitted = self.clock;
            let phase = job.advance_phase(self.clock, self.cfg);
            if self.obs.col.enabled() {
                let name = self.jobs[i].job.app.name().to_string();
                self.obs.col.emit(
                    self.clock,
                    EventBody::JobStart {
                        job: i as u32,
                        name,
                    },
                );
                self.emit_phase(i, phase);
            }
        }
    }

    /// Emit the trace edge for job `i` entering `phase` (including the
    /// terminal `Done`, which closes the job span).
    fn emit_phase(&self, i: usize, phase: JobPhase) {
        if !self.obs.col.enabled() {
            return;
        }
        if phase == JobPhase::Done {
            let makespan = self.jobs[i].finished - self.jobs[i].submitted;
            self.obs.col.emit(
                self.clock,
                EventBody::JobEnd {
                    job: i as u32,
                    makespan,
                },
            );
        } else {
            self.obs.col.emit(
                self.clock,
                EventBody::Phase {
                    job: i as u32,
                    phase: phase.name().to_string(),
                },
            );
        }
    }

    /// Assign pending task templates to free slots.
    fn dispatch(&mut self) {
        let n = self.jobs.len();
        for off in 0..n {
            let i = (self.dispatch_cursor + off) % n;
            let mut launched: u32 = 0;
            while let Some(tmpl) = self.jobs[i].pending.front() {
                if matches!(self.jobs[i].phase, JobPhase::Waiting | JobPhase::Done) {
                    break;
                }
                let vm = match tmpl.slot {
                    SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                    SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                    SlotKind::Transfer => self.pick_transfer_vm(),
                };
                let Some(vm) = vm else { break };
                let tmpl = self.jobs[i].pending.pop_front().expect("peeked");
                match tmpl.slot {
                    SlotKind::Map => self.free_map[vm] -= 1,
                    SlotKind::Reduce => self.free_red[vm] -= 1,
                    SlotKind::Transfer => {}
                }
                self.push_trace(i, vm as u32, tmpl.slot, TaskEventKind::Started);
                let mut task = RunningTask::bind(i, vm as u32, &tmpl);
                if self.fault.enabled {
                    let seq = self.fault.seq[i];
                    self.fault.seq[i] += 1;
                    task.uid = ((i as u64) << 32) | u64::from(seq);
                    task.template = Some(Box::new(tmpl));
                    self.arm_task(&mut task);
                }
                self.tasks.push(task);
                self.jobs[i].active += 1;
                launched += 1;
            }
            if launched > 0 {
                self.obs.wave_tasks.record(f64::from(launched));
                if self.obs.col.enabled() {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Wave {
                            job: i as u32,
                            phase: self.jobs[i].phase.name().to_string(),
                            tasks: launched,
                        },
                    );
                }
            }
        }
        self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
    }

    /// Transfer streams round-robin over VMs; rotate past crashed ones.
    fn pick_transfer_vm(&self) -> Option<usize> {
        let n = self.cfg.nvm;
        let start = self.tasks.len() % n;
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&vm| !self.fault.crashed[vm])
    }

    /// Re-dispatch retry entries whose backoff has elapsed, slots
    /// permitting.
    fn dispatch_retries(&mut self) {
        if !self.fault.enabled {
            return;
        }
        let mut i = 0;
        while i < self.fault.retries.len() {
            if self.fault.retries[i].ready_at > self.clock + EPS {
                i += 1;
                continue;
            }
            let slot = self.fault.retries[i].template.slot;
            let vm = match slot {
                SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                SlotKind::Transfer => self.pick_transfer_vm(),
            };
            let Some(vm) = vm else {
                i += 1;
                continue;
            };
            let entry = self.fault.retries.remove(i);
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            self.push_trace(entry.job, vm as u32, slot, TaskEventKind::Retried);
            let mut task = RunningTask::bind(entry.job, vm as u32, &entry.template);
            task.uid = entry.uid;
            task.attempt = entry.attempt;
            task.template = Some(entry.template);
            self.arm_task(&mut task);
            self.jobs[entry.job].retries_pending -= 1;
            self.jobs[entry.job].active += 1;
            self.tasks.push(task);
        }
    }

    /// Launch speculative backups for tasks streaming far below their
    /// wave's median rate (Hadoop-style speculative execution).
    fn speculate(&mut self) {
        let thr = self.cfg.faults.speculation_threshold;
        if !self.fault.enabled || thr <= 0.0 || self.tasks.is_empty() {
            return;
        }
        // Instantaneous streaming rates under current contention.
        self.reg.clear_counts();
        for t in &self.tasks {
            if let Some(s) = t.current() {
                if !s.is_latent() && s.units_remaining > EPS {
                    s.register(&mut self.reg);
                }
            }
        }
        let rates: Vec<f64> = self
            .tasks
            .iter()
            .map(|t| match t.current() {
                Some(s) if !s.is_latent() && s.units_remaining > EPS => s.rate(&self.reg),
                _ => 0.0,
            })
            .collect();
        let mut stragglers: Vec<usize> = Vec::new();
        for (i, t) in self.tasks.iter().enumerate() {
            if rates[i] <= 0.0
                || t.speculated
                || t.backup_of.is_some()
                || t.slot == SlotKind::Transfer
                || !self.jobs[t.job].pending.is_empty()
            {
                continue;
            }
            let mut wave: Vec<f64> = self
                .tasks
                .iter()
                .zip(rates.iter())
                .filter(|(o, &r)| {
                    o.job == t.job && o.slot == t.slot && r > 0.0 && o.backup_of.is_none()
                })
                .map(|(_, &r)| r)
                .collect();
            if wave.len() < 2 {
                continue;
            }
            wave.sort_by(f64::total_cmp);
            let median = wave[wave.len() / 2];
            if rates[i] < thr * median {
                stragglers.push(i);
            }
        }
        for i in stragglers {
            let orig_vm = self.tasks[i].vm as usize;
            let slot = self.tasks[i].slot;
            let free = match slot {
                SlotKind::Map => &self.free_map,
                SlotKind::Reduce => &self.free_red,
                SlotKind::Transfer => continue,
            };
            let vm = free
                .iter()
                .enumerate()
                .filter(|&(v, &n)| n > 0 && !self.fault.crashed[v] && v != orig_vm)
                .max_by_key(|&(_, &n)| n)
                .map(|(v, _)| v);
            let Some(vm) = vm else { continue };
            let Some(tmpl) = self.tasks[i].template.clone() else {
                continue;
            };
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            let job = self.tasks[i].job;
            let orig_uid = self.tasks[i].uid;
            self.tasks[i].speculated = true;
            self.push_trace(job, vm as u32, slot, TaskEventKind::Speculated);
            let mut backup = RunningTask::bind(job, vm as u32, &tmpl);
            backup.uid = orig_uid | BACKUP_BIT;
            backup.attempt = self.tasks[i].attempt;
            backup.backup_of = Some(orig_uid);
            backup.speculated = true;
            backup.template = Some(tmpl);
            self.arm_task(&mut backup);
            self.jobs[job].speculations += 1;
            self.jobs[job].active += 1;
            self.tasks.push(backup);
        }
    }

    /// Sample this attempt's fate from its private RNG: whether (and how
    /// far in) it fails, plus simulated object-store request retries
    /// inflating fixed latencies. Deterministic in `(seed, uid, attempt)`.
    fn arm_task(&self, task: &mut RunningTask) {
        let plan = &self.cfg.faults;
        let mut rng = attempt_rng(plan.seed, task.uid, task.attempt);
        if plan.task_failure_prob > 0.0 {
            // First draw decides failure: at rate p₂ > p₁ the failing set
            // is a superset, so sweeps over intensity are coupled.
            let u: f64 = rng.gen();
            if u < plan.task_failure_prob {
                let frac: f64 = rng.gen();
                let total = task
                    .template
                    .as_deref()
                    .map(TaskTemplate::total_units)
                    .unwrap_or(0.0);
                if total > 0.0 {
                    task.doom_units = Some((frac * total).max(EPS));
                }
            }
        }
        if plan.objstore_request_failure > 0.0 {
            for s in task.stages.iter_mut() {
                if s.global.is_some() && s.fixed_remaining > 0.0 {
                    let mut extra = 0u32;
                    while extra < MAX_OBJ_RETRIES
                        && rng.gen::<f64>() < plan.objstore_request_failure
                    {
                        extra += 1;
                    }
                    // Each failed request repeats the setup latency.
                    s.fixed_remaining *= 1.0 + f64::from(extra);
                }
            }
        }
    }

    /// Apply all fault-plan events due at the current clock.
    fn process_fault_events(&mut self) {
        while let Some(&ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock + EPS {
                break;
            }
            self.fault.next_event += 1;
            self.obs.fault_edges.inc();
            if self.obs.col.enabled() {
                let (kind, vm) = match ev.kind {
                    FaultEventKind::Crash(vm) => ("crash", vm),
                    FaultEventKind::Recover(vm) => ("recover", vm),
                    FaultEventKind::DegradationEdge => ("degradation", u32::MAX),
                };
                self.obs.col.emit(
                    self.clock,
                    EventBody::Fault {
                        kind: kind.to_string(),
                        vm,
                    },
                );
            }
            match ev.kind {
                FaultEventKind::Crash(vm) => self.crash_vm(vm as usize),
                FaultEventKind::Recover(vm) => self.fault.crashed[vm as usize] = false,
                FaultEventKind::DegradationEdge => self.apply_degradations(),
            }
        }
    }

    /// Re-derive degraded capacities from the windows active right now.
    fn apply_degradations(&mut self) {
        self.reg.reset_scales();
        for w in &self.cfg.faults.degradations {
            if w.start_secs <= self.clock + EPS && self.clock < w.end_secs - EPS {
                self.reg.scale_tier(w.vm, w.tier, w.multiplier);
            }
        }
    }

    /// Take a VM offline: kill its resident tasks (re-enqueuing any
    /// without a live speculative twin) and reset its slot pools, which
    /// stay unreachable until the matching recovery event.
    fn crash_vm(&mut self, vm: usize) {
        if self.fault.crashed[vm] {
            return;
        }
        self.fault.crashed[vm] = true;
        self.fault.vm_crashes += 1;
        self.free_map[vm] = self.cfg.vm.map_slots;
        self.free_red[vm] = self.cfg.vm.reduce_slots;
        let mut idx = 0;
        while idx < self.tasks.len() {
            if self.tasks[idx].vm as usize != vm {
                idx += 1;
                continue;
            }
            let victim = self.tasks.swap_remove(idx);
            let job = victim.job;
            self.jobs[job].active -= 1;
            self.jobs[job].kills += 1;
            self.push_trace(job, victim.vm, victim.slot, TaskEventKind::Killed);
            if victim.speculated && self.twin_index(victim.uid, victim.backup_of).is_some() {
                // The surviving copy carries the work.
                continue;
            }
            let Some(template) = victim.template else {
                continue;
            };
            // Same attempt number: the crash was not the task's fault.
            self.jobs[job].retries += 1;
            self.jobs[job].retries_pending += 1;
            self.fault.retries.push(RetryEntry {
                ready_at: self.clock,
                job,
                uid: victim.uid,
                attempt: victim.attempt,
                template,
            });
        }
    }

    /// Index of the live twin (original ↔ backup) of task `uid`.
    fn twin_index(&self, uid: u64, backup_of: Option<u64>) -> Option<usize> {
        self.tasks
            .iter()
            .position(|o| backup_of == Some(o.uid) || o.backup_of == Some(uid))
    }

    /// Earliest strictly-future time at which a fault event fires or a
    /// retry becomes ready.
    fn next_wake(&self) -> Option<f64> {
        let mut wake = f64::INFINITY;
        if let Some(ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock {
                wake = wake.min(ev.at);
            }
        }
        for r in &self.fault.retries {
            if r.ready_at > self.clock {
                wake = wake.min(r.ready_at);
            }
        }
        wake.is_finite().then_some(wake)
    }

    /// Build a [`SimError::Stalled`] carrying whatever is known about the
    /// first blocked job.
    fn stalled_error(&self) -> SimError {
        let blocked = self.jobs.iter().find(|j| j.phase != JobPhase::Done);
        let (job, phase, tier) = match blocked {
            Some(j) => {
                let tier = j
                    .pending
                    .front()
                    .and_then(|t| t.stages.first())
                    .and_then(|s| s.read.map(|(t, _)| t).or(s.write.map(|(t, _)| t)))
                    .map(|t| t.name().to_string());
                (Some(j.job.id.0), Some(j.phase.name()), tier)
            }
            None => (None, None, None),
        };
        SimError::Stalled {
            at_secs: self.clock,
            job,
            phase,
            tier,
        }
    }

    fn push_trace(&mut self, job: usize, vm: u32, slot: SlotKind, kind: TaskEventKind) {
        let id = self.jobs[job].job.id;
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TaskEvent {
                time: self.clock,
                job: id,
                vm,
                slot,
                kind,
            });
        }
        self.obs.task_counter(kind).inc();
        if self.obs.col.enabled() {
            self.obs.col.emit(
                self.clock,
                EventBody::Task {
                    job: job as u32,
                    vm,
                    kind: task_kind_label(kind).to_string(),
                },
            );
        }
    }

    fn release_slot(&mut self, vm: usize, slot: SlotKind) {
        match slot {
            SlotKind::Map => self.free_map[vm] += 1,
            SlotKind::Reduce => self.free_red[vm] += 1,
            SlotKind::Transfer => {}
        }
    }

    /// Advance time to the next stage completion, scheduled fault event,
    /// or injected task failure.
    fn step(&mut self) -> Result<(), SimError> {
        // Register flows of streaming (non-latent) stages.
        self.reg.clear_counts();
        for t in &self.tasks {
            if let Some(s) = t.current() {
                if !s.is_latent() && s.units_remaining > EPS {
                    s.register(&mut self.reg);
                }
            }
        }
        self.obs.steps.inc();
        self.steps_done += 1;
        if self.obs.col.enabled() && self.steps_done % CONTENTION_STRIDE == 1 {
            for tier in cast_cloud::tier::Tier::ALL {
                let (demand, capacity) = self.reg.tier_totals(tier);
                if demand > 0.0 {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Contention {
                            tier: tier.name().to_string(),
                            demand,
                            capacity,
                        },
                    );
                }
            }
        }
        // Compute rates and the time of the earliest completion.
        let wake = self.next_wake();
        self.rates.clear();
        let mut dt = f64::INFINITY;
        for t in &self.tasks {
            let s = t.current().expect("active task has a stage");
            if s.is_latent() {
                self.rates.push(0.0);
                dt = dt.min(s.fixed_remaining);
            } else if s.units_remaining <= EPS {
                self.rates.push(0.0);
                dt = 0.0;
            } else {
                let rate = s.rate(&self.reg);
                if rate <= 0.0 || rate.is_nan() {
                    // A fully-degraded tier (e.g. a transient outage
                    // window with multiplier 0) freezes the task; a
                    // scheduled fault edge or retry wake-up may restore
                    // its bandwidth, so only a stall with no such future
                    // event is an error.
                    if wake.is_some() {
                        self.rates.push(0.0);
                        continue;
                    }
                    return Err(SimError::Stalled {
                        at_secs: self.clock,
                        job: Some(self.jobs[t.job].job.id.0),
                        phase: Some(self.jobs[t.job].phase.name()),
                        tier: stage_tier(s),
                    });
                }
                self.rates.push(rate);
                dt = dt.min(s.units_remaining / rate);
                // A doomed attempt fails partway through its stream.
                if let Some(doom) = t.doom_units {
                    dt = dt.min(doom / rate);
                }
            }
        }
        // Never step past a scheduled fault event or retry wake-up.
        if let Some(wake) = wake {
            if wake > self.clock {
                dt = dt.min(wake - self.clock);
            }
        }
        debug_assert!(dt.is_finite(), "no progress possible");
        // Advance all tasks by dt.
        self.clock += dt;
        for (t, &rate) in self.tasks.iter_mut().zip(self.rates.iter()) {
            let s = t.current_mut().expect("active task has a stage");
            if s.fixed_remaining > 0.0 {
                s.fixed_remaining -= dt;
                if s.fixed_remaining < EPS {
                    s.fixed_remaining = 0.0;
                }
            } else {
                s.units_remaining -= dt * rate;
                if s.units_remaining < EPS {
                    s.units_remaining = 0.0;
                }
                if let Some(doom) = t.doom_units.as_mut() {
                    *doom -= dt * rate;
                }
            }
        }
        // Retire failed and completed tasks. `winners` collects finished
        // tasks whose speculative twin must be killed afterwards.
        let mut winners: Vec<(u64, Option<u64>)> = Vec::new();
        let mut idx = 0;
        while idx < self.tasks.len() {
            if self.tasks[idx].doom_units.is_some_and(|d| d <= EPS) {
                self.fail_task(idx)?;
                continue;
            }
            let task = &mut self.tasks[idx];
            while task.current().is_some_and(|s| s.is_done()) {
                task.stages.pop_front();
            }
            if task.is_done() {
                let task = self.tasks.swap_remove(idx);
                self.release_slot(task.vm as usize, task.slot);
                let job = task.job;
                self.push_trace(job, task.vm, task.slot, TaskEventKind::Finished);
                self.jobs[job].active -= 1;
                if task.speculated {
                    winners.push((task.uid, task.backup_of));
                }
            } else {
                idx += 1;
            }
        }
        // Winners kill their twins.
        for (uid, backup_of) in winners {
            if let Some(k) = self.twin_index(uid, backup_of) {
                let loser = self.tasks.swap_remove(k);
                self.release_slot(loser.vm as usize, loser.slot);
                let job = loser.job;
                self.push_trace(job, loser.vm, loser.slot, TaskEventKind::Killed);
                self.jobs[job].active -= 1;
                self.jobs[job].kills += 1;
            }
        }
        // Advance any job whose phase fully drained this step.
        for i in 0..self.jobs.len() {
            let job = &mut self.jobs[i];
            if job.phase != JobPhase::Waiting && job.phase != JobPhase::Done && job.phase_drained()
            {
                let phase = job.advance_phase(self.clock, self.cfg);
                self.emit_phase(i, phase);
            }
        }
        Ok(())
    }

    /// Handle a mid-stream task failure at `idx`: schedule a retry with
    /// exponential backoff, or give up on the job past the attempt budget.
    fn fail_task(&mut self, idx: usize) -> Result<(), SimError> {
        let task = self.tasks.swap_remove(idx);
        self.release_slot(task.vm as usize, task.slot);
        let job = task.job;
        self.jobs[job].active -= 1;
        self.jobs[job].failures += 1;
        self.push_trace(job, task.vm, task.slot, TaskEventKind::Failed);
        if task.speculated && self.twin_index(task.uid, task.backup_of).is_some() {
            // The surviving copy carries the work; no retry needed.
            return Ok(());
        }
        if task.attempt >= self.cfg.faults.max_task_attempts {
            return Err(SimError::JobFailed {
                job: self.jobs[job].job.id.0,
                attempts: task.attempt,
            });
        }
        let backoff =
            self.cfg.faults.retry_backoff_secs * f64::powi(2.0, (task.attempt - 1) as i32);
        let template = task.template.expect("faulted task retains its template");
        self.jobs[job].retries += 1;
        self.jobs[job].retries_pending += 1;
        self.fault.retries.push(RetryEntry {
            ready_at: self.clock + backoff,
            job,
            uid: task.uid,
            attempt: task.attempt + 1,
            template,
        });
        Ok(())
    }
}

/// Live VM with the most free slots, or `None` if none has capacity.
fn pick_vm(free: &[usize], crashed: &[bool]) -> Option<usize> {
    free.iter()
        .enumerate()
        .filter(|&(vm, &n)| n > 0 && !crashed[vm])
        .max_by_key(|&(_, &n)| n)
        .map(|(vm, _)| vm)
}

/// The storage tier a stage streams against, for diagnostics.
fn stage_tier(s: &BoundStage) -> Option<String> {
    [s.read, s.write]
        .into_iter()
        .flatten()
        .find_map(|(key, _)| match key.kind {
            ResKind::Volume(t) => Some(t.name().to_string()),
            ResKind::Nic => None,
        })
}

/// Private RNG for one task attempt: keyed, not streamed, so runs are
/// reproducible and failure sets couple across fault intensities.
fn attempt_rng(seed: u64, uid: u64, attempt: u32) -> StdRng {
    let mut u = seed ^ 0x9e37_79b9_7f4a_7c15;
    u = u.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(uid);
    u = u
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    StdRng::seed_from_u64(u)
}

fn nan_zero(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

/// Convenience: ids of all jobs in the engine's table (test helper).
pub fn job_ids(jobs: &[JobRun]) -> Vec<JobId> {
    jobs.iter().map(|j| j.job.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DegradationWindow, FaultPlan, VmCrash};
    use crate::placement::JobPlacement;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::Job;
    use cast_workload::profile::ProfileSet;

    pub(crate) fn cfg(nvm: usize) -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0 * nvm as f64);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), nvm, &agg).unwrap();
        c.jitter = 0.0;
        c
    }

    fn run(app: AppKind, gb: f64, tier: Tier, c: &SimConfig) -> SimReport {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run().unwrap()
    }

    pub(crate) fn try_run(
        app: AppKind,
        gb: f64,
        tier: Tier,
        c: &SimConfig,
    ) -> Result<SimReport, SimError> {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run()
    }

    #[test]
    fn grep_runtime_tracks_storage_bandwidth() {
        let c = cfg(1);
        // Grep is map-I/O bound: 30 GB at ~234 MB/s (500 GB persSSD)
        // against ~97 MB/s (500 GB persHDD): HDD should be ~2.4× slower.
        let ssd = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::Grep, 30.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (1.8..3.2).contains(&ratio),
            "expected ~2.4x slowdown, got {ratio:.2} ({} vs {})",
            ssd.makespan,
            hdd.makespan
        );
    }

    #[test]
    fn grep_map_io_estimate_close_to_bandwidth_bound() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        // Lower bound: 30 000 MB / 234 MB/s ≈ 128 s.
        let lb = 30_000.0 / 234.0;
        let got = r.makespan.secs();
        assert!(got >= lb * 0.95, "impossibly fast: {got} < {lb}");
        assert!(got <= lb * 1.6, "too slow: {got} vs bound {lb}");
    }

    #[test]
    fn kmeans_insensitive_to_tier() {
        let c = cfg(1);
        let ssd = run(AppKind::KMeans, 20.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::KMeans, 20.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (0.9..1.2).contains(&ratio),
            "CPU-bound app should not care about tier, got {ratio:.2}"
        );
    }

    #[test]
    fn ephemeral_pays_staging() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::EphSsd, &c);
        let m = &r.jobs[0];
        assert!(m.stage_in.secs() > 0.0, "must download input");
        // Grep output is tiny; upload may be near-zero but present.
        assert!(m.map.secs() > 0.0);
        // Download at 265 MB/s vs map at 733 MB/s: staging dominates.
        assert!(m.stage_in.secs() > m.map.secs());
    }

    #[test]
    fn sort_slower_than_grep_same_tier() {
        let c = cfg(1);
        let sort = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let grep = run(AppKind::Grep, 20.0, Tier::PersSsd, &c);
        assert!(
            sort.makespan.secs() > 1.5 * grep.makespan.secs(),
            "sort moves ~3-4x the bytes: {} vs {}",
            sort.makespan,
            grep.makespan
        );
    }

    #[test]
    fn more_vms_speed_up_io_bound_jobs() {
        let c1 = cfg(1);
        let c4 = cfg(4);
        let one = run(AppKind::Grep, 60.0, Tier::PersSsd, &c1);
        let four = run(AppKind::Grep, 60.0, Tier::PersSsd, &c4);
        let speedup = one.makespan.secs() / four.makespan.secs();
        assert!(
            speedup > 2.5,
            "4 VMs with 4x aggregate volume bandwidth: got {speedup:.2}x"
        );
    }

    #[test]
    fn sequential_jobs_do_not_overlap() {
        let c = cfg(1);
        let profiles = ProfileSet::defaults();
        let jobs: Vec<JobRun> = (0..2)
            .map(|i| {
                let job = Job::with_default_layout(
                    JobId(i),
                    AppKind::Grep,
                    DatasetId(i),
                    DataSize::from_gb(10.0),
                );
                JobRun::new(
                    job,
                    JobPlacement::all_on(Tier::PersSsd),
                    *profiles.get(AppKind::Grep),
                    vec![],
                )
            })
            .collect();
        let report = Engine::new(&c, jobs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn parallel_jobs_overlap_and_contend() {
        let mut c = cfg(1);
        let profiles = ProfileSet::defaults();
        let mk = |i: u32| {
            let job = Job::with_default_layout(
                JobId(i),
                AppKind::Grep,
                DatasetId(i),
                DataSize::from_gb(10.0),
            );
            JobRun::new(
                job,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            )
        };
        let seq = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        c.concurrency = Concurrency::Parallel;
        let par = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        let b = par.job(JobId(1)).unwrap();
        let a = par.job(JobId(0)).unwrap();
        assert!(
            b.started.secs() < a.finished.secs(),
            "parallel mode must overlap"
        );
        // Sharing the volume: parallel makespan close to sequential (same
        // aggregate bytes through the same bottleneck).
        let ratio = par.makespan.secs() / seq.makespan.secs();
        assert!((0.8..1.25).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dependency_ordering_enforced() {
        let mut c = cfg(1);
        c.concurrency = Concurrency::Parallel;
        let profiles = ProfileSet::defaults();
        let j0 = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(10.0),
        );
        let j1 = Job::with_default_layout(
            JobId(1),
            AppKind::Grep,
            DatasetId(1),
            DataSize::from_gb(5.0),
        );
        let runs = vec![
            JobRun::new(
                j0,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            ),
            JobRun::new(
                j1,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![0],
            ),
        ];
        let report = Engine::new(&c, runs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn fine_grained_split_straggles() {
        // A tenant splitting 6 GB 90/10 across ephSSD/persHDD provisions a
        // minimal 100 GB HDD volume (20 MB/s) for the small slice.
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(100.0);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        c.jitter = 0.0;
        let profiles = ProfileSet::defaults();
        let mk = |input: crate::placement::SplitPlacement| {
            let job = Job::with_default_layout(
                JobId(0),
                AppKind::Grep,
                DatasetId(0),
                DataSize::from_gb(6.0),
            );
            let mut p = JobPlacement::all_on(Tier::EphSsd);
            p.stage_in_from = None; // isolate the map phase effect
            p.stage_out_to = None;
            p.input = input;
            JobRun::new(job, p, *profiles.get(AppKind::Grep), vec![])
        };
        let all_eph = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::single(Tier::EphSsd))],
        )
        .run()
        .unwrap();
        let split = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::split(
                Tier::EphSsd,
                0.9,
                Tier::PersHdd,
            ))],
        )
        .run()
        .unwrap();
        // Even with 90% of data on the fast tier, the slow-tier tasks
        // dominate the single map wave (Fig. 5b).
        assert!(
            split.makespan.secs() > 1.5 * all_eph.makespan.secs(),
            "{} vs {}",
            split.makespan,
            all_eph.makespan
        );
    }

    #[test]
    fn stalls_on_unprovisioned_tier() {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0);
        let c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(1.0),
        );
        // persHDD has zero provisioned capacity → zero bandwidth → stall.
        let jr = JobRun::new(
            job,
            JobPlacement::all_on(Tier::PersHdd),
            *profiles.get(AppKind::Grep),
            vec![],
        );
        let err = Engine::new(&c, vec![jr]).run().unwrap_err();
        match err {
            SimError::Stalled {
                job, phase, tier, ..
            } => {
                assert_eq!(job, Some(0));
                assert_eq!(phase, Some("map"));
                assert_eq!(tier.as_deref(), Some("persHDD"));
            }
            other => panic!("expected enriched stall, got {other:?}"),
        }
    }

    // ---- fault injection & recovery ----

    #[test]
    fn empty_plan_is_bit_identical_regardless_of_seed() {
        let c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        let mut reseeded = cfg(1);
        reseeded.faults = FaultPlan {
            seed: 0xdead_beef,
            retry_backoff_secs: 99.0,
            ..FaultPlan::default()
        };
        assert!(reseeded.faults.is_empty());
        let again = run(AppKind::Grep, 10.0, Tier::PersSsd, &reseeded);
        assert_eq!(baseline, again);
        assert!(again.faults.is_quiet());
    }

    #[test]
    fn deterministic_under_faults() {
        let mut c = cfg(2);
        c.faults = FaultPlan::with_task_failures(0.3);
        c.collect_trace = true;
        let a = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        let b = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        assert_eq!(a, b, "same plan + seed must be bit-identical");
        assert!(a.faults.task_failures > 0, "p=0.3 should hit some tasks");
    }

    #[test]
    fn task_failures_are_retried_to_completion() {
        let mut c = cfg(1);
        c.collect_trace = true;
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            // High failure rate with a budget deep enough that no task
            // plausibly exhausts it (0.5⁸ ≈ 0.4 %).
            max_task_attempts: 8,
            ..FaultPlan::with_task_failures(0.5)
        };
        let faulted = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(faulted.faults.task_failures > 0);
        // Without crashes or speculation every failure schedules a retry.
        assert_eq!(faulted.faults.retries, faulted.faults.task_failures);
        assert!(
            faulted.makespan.secs() > baseline.makespan.secs(),
            "re-executed work must cost time: {} vs {}",
            faulted.makespan,
            baseline.makespan
        );
        let trace = faulted.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Failed),
            faulted.faults.task_failures as usize
        );
        assert_eq!(
            trace.count(TaskEventKind::Retried),
            faulted.faults.retries as usize
        );
        // Per-job counters roll up to the summary.
        let m = &faulted.jobs[0];
        assert_eq!(m.failures, faulted.faults.task_failures);
        assert_eq!(m.retries, faulted.faults.retries);
    }

    #[test]
    fn failure_sweep_trends_upward() {
        // Strict monotonicity is not a theorem under bandwidth sharing (a
        // failed task frees its share mid-wave, and its retry later runs
        // uncontended), so allow sub-percent dips while requiring the
        // overall degradation trend.
        let mut makespans = Vec::new();
        for p in [0.0, 0.1, 0.3, 0.6] {
            let mut c = cfg(1);
            c.faults = FaultPlan {
                max_task_attempts: 16,
                ..FaultPlan::with_task_failures(p)
            };
            makespans.push(run(AppKind::Grep, 5.0, Tier::PersSsd, &c).makespan.secs());
        }
        for w in makespans.windows(2) {
            assert!(w[1] >= 0.99 * w[0], "big makespan drop: {makespans:?}");
        }
        assert!(
            makespans[3] > 1.1 * makespans[0],
            "60% failures must cost real time: {makespans:?}"
        );
    }

    #[test]
    fn vm_crash_finishes_via_reexecution() {
        let mut c = cfg(2);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.collect_trace = true;
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: None, // never recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c)
            .expect("crash must be survivable, not a stall");
        assert_eq!(r.faults.vm_crashes, 1);
        assert!(r.faults.kills > 0, "resident tasks must be killed");
        assert!(r.faults.retries > 0, "killed tasks must be re-executed");
        let trace = r.trace.as_ref().unwrap();
        assert!(trace.count(TaskEventKind::Killed) > 0);
        assert!(trace.count(TaskEventKind::Retried) > 0);
        assert!(
            r.makespan.secs() > baseline.makespan.secs(),
            "half the cluster is gone: {} vs {}",
            r.makespan,
            baseline.makespan
        );
        // Nothing ran on the dead VM after the crash.
        assert!(trace
            .events
            .iter()
            .filter(|e| e.time > 5.0 + 1e-9 && e.kind.opens())
            .all(|e| e.vm != 0));
    }

    #[test]
    fn crashed_vm_recovery_restores_capacity() {
        let mut c = cfg(2);
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: Some(20.0),
            }],
            ..FaultPlan::default()
        };
        c.collect_trace = true;
        let r = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let trace = r.trace.as_ref().unwrap();
        // Work lands on VM 0 again after recovery at t=25.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.vm == 0 && e.time > 25.0 && e.kind.opens()),
            "recovered VM must take tasks again"
        );
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            task_failure_prob: 1.0,
            max_task_attempts: 2,
            retry_backoff_secs: 0.5,
            ..FaultPlan::default()
        };
        let err = try_run(AppKind::Grep, 2.0, Tier::PersSsd, &c).unwrap_err();
        assert_eq!(
            err,
            SimError::JobFailed {
                job: 0,
                attempts: 2
            }
        );
    }

    #[test]
    fn degradation_window_slows_the_job() {
        let mut c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let degraded = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(
            degraded.makespan.secs() > 1.5 * baseline.makespan.secs(),
            "quartered volume bandwidth must hurt an I/O-bound job: {} vs {}",
            degraded.makespan,
            baseline.makespan
        );
        // A window that closes before the run ends costs less than the
        // permanent one.
        let mut brief = cfg(1);
        brief.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 10.0,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let transient = run(AppKind::Grep, 10.0, Tier::PersSsd, &brief);
        assert!(transient.makespan.secs() < degraded.makespan.secs());
        assert!(transient.makespan.secs() > baseline.makespan.secs() - 1e-6);
    }

    #[test]
    fn speculation_rescues_degraded_vm_stragglers() {
        // VM 0's volume crawls at 5% speed; tasks placed there straggle.
        let slow_vm = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: Some(0),
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.05,
            }],
            ..FaultPlan::default()
        };
        let mut without = cfg(2);
        without.faults = slow_vm.clone();
        let stuck = run(AppKind::Grep, 2.0, Tier::PersSsd, &without);
        let mut with = cfg(2);
        with.collect_trace = true;
        with.faults = FaultPlan {
            speculation_threshold: 0.5,
            ..slow_vm
        };
        let rescued = run(AppKind::Grep, 2.0, Tier::PersSsd, &with);
        assert!(rescued.faults.speculations > 0, "backups must launch");
        assert!(rescued.faults.kills > 0, "a race must have a loser");
        assert!(
            rescued.makespan.secs() < 0.9 * stuck.makespan.secs(),
            "speculation must beat waiting on the slow VM: {} vs {}",
            rescued.makespan,
            stuck.makespan
        );
        let trace = rescued.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Speculated),
            rescued.faults.speculations as usize
        );
    }
}

#[cfg(test)]
mod review_probe {
    use super::tests::*;
    use crate::fault::{DegradationWindow, FaultPlan};
    use cast_cloud::tier::Tier;
    use cast_workload::apps::AppKind;

    #[test]
    fn transient_full_outage_window() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 5.0,
                end_secs: 10.0,
                multiplier: 0.0, // full outage for 5s, then recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        eprintln!(
            "RESULT: {:?}",
            r.as_ref().map(|x| x.makespan).map_err(|e| e.to_string())
        );
        assert!(r.is_ok(), "transient outage should be survivable");
    }
}
