//! The event-driven discrete-event engine.
//!
//! The engine owns the job table, the active task set and the resource
//! registry. Work per event is proportional to the number of *affected*
//! flows, not the number of active tasks:
//!
//! * **Incremental share rates** — every streaming stage registers
//!   persistent flows in the [`ShareRegistry`]; when a resource's load or
//!   capacity changes, only the tasks with a flow on that resource are
//!   recomputed (the registry's dirty-set drives this).
//! * **Completion heap** — each task's predicted completion (or doom
//!   point) sits in a lazy-invalidation binary min-heap. Rate changes
//!   re-push a fresh entry under a new version; stale entries are
//!   discarded on pop. Scheduled fault events and retry wake-ups are
//!   sentinel entries in the same heap.
//! * **Lazy task advancement** — a task records `(anchor clock, rate)`
//!   and materializes its remaining units only when its rate changes, it
//!   completes, it fails, or speculation samples it. Between rate changes
//!   no per-event bookkeeping touches it.
//!
//! The pre-overhaul stepper that recomputed every rate and advanced every
//! task on every event survives as [`crate::reference::ReferenceEngine`]
//! (behind the `reference-engine` feature) and serves as the equivalence
//! oracle: both engines agree within 1e-6 relative on makespan and
//! per-job phase times across randomized workloads, placements and fault
//! plans (`tests/engine_equivalence.rs`). Decision points — dispatch
//! order, VM picks, fault arming, speculation policy — are kept in
//! lockstep between the two implementations; edit them together.
//!
//! ## Fault injection and recovery
//!
//! When [`SimConfig::faults`] carries a non-empty
//! [`crate::fault::FaultPlan`], the engine layers recovery semantics on
//! top of the event loop:
//!
//! * every task attempt draws — from an RNG keyed by `(plan seed, task
//!   uid, attempt)` — whether and where it fails mid-stream;
//! * failed tasks re-enqueue with exponential backoff, up to the plan's
//!   attempt budget ([`SimError::JobFailed`] beyond it);
//! * scheduled VM crashes kill resident tasks (re-enqueued at the *same*
//!   attempt — the crash was not their fault) and take the VM's slots
//!   offline until the scheduled recovery, if any;
//! * degradation windows scale volume capacities for their duration;
//! * optional Hadoop-style speculation launches a backup copy of any task
//!   streaming slower than a configured fraction of its wave's median
//!   rate; whichever copy finishes first kills the other.
//!
//! The empty plan takes none of these code paths, so fault-free
//! simulations are bit-identical with the machinery present.

use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cast_obs::{Collector, Counter, EventBody, Histogram};
use cast_workload::job::JobId;

use crate::config::{Concurrency, SimConfig};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::{FaultSummary, JobMetrics, SimReport};
use crate::resources::{FlowHandle, ResKind, ShareRegistry};
use crate::task::{BoundStage, RunningTask, SlotKind, TaskTemplate};
use crate::trace::{TaskEvent, TaskEventKind, Trace};
use cast_cloud::units::Duration;

/// Completion tolerance for floating-point progress.
pub(crate) const EPS: f64 = 1e-9;
/// High bit marking the uid of a speculative backup copy.
pub(crate) const BACKUP_BIT: u64 = 1 << 63;
/// Cap on consecutive simulated object-store request retries per stage.
pub(crate) const MAX_OBJ_RETRIES: u32 = 16;
/// Engine steps between tier-contention samples on a recording collector.
pub(crate) const CONTENTION_STRIDE: u64 = 32;

/// Sentinel task id for heap entries that only wake the clock (scheduled
/// fault events, retry backoffs). Always valid; carries no task work.
const WAKE_TASK: u32 = u32::MAX;

/// Observability handles, resolved once at engine construction so the hot
/// loop never touches the registry. With a no-op collector every operation
/// is a single branch; none of them feed back into the simulation.
pub(crate) struct SimObs {
    pub(crate) col: Collector,
    pub(crate) started: Counter,
    pub(crate) finished: Counter,
    pub(crate) failed: Counter,
    pub(crate) retried: Counter,
    pub(crate) speculated: Counter,
    pub(crate) killed: Counter,
    pub(crate) steps: Counter,
    pub(crate) fault_edges: Counter,
    pub(crate) wave_tasks: Histogram,
}

impl SimObs {
    pub(crate) fn new(col: Collector) -> SimObs {
        SimObs {
            started: col.counter("sim.tasks.started"),
            finished: col.counter("sim.tasks.finished"),
            failed: col.counter("sim.tasks.failed"),
            retried: col.counter("sim.tasks.retried"),
            speculated: col.counter("sim.tasks.speculated"),
            killed: col.counter("sim.tasks.killed"),
            steps: col.counter("sim.steps"),
            fault_edges: col.counter("sim.fault.edges"),
            wave_tasks: col.histogram(
                "sim.wave_tasks",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
            ),
            col,
        }
    }

    pub(crate) fn task_counter(&self, kind: TaskEventKind) -> &Counter {
        match kind {
            TaskEventKind::Started => &self.started,
            TaskEventKind::Finished => &self.finished,
            TaskEventKind::Failed => &self.failed,
            TaskEventKind::Retried => &self.retried,
            TaskEventKind::Speculated => &self.speculated,
            TaskEventKind::Killed => &self.killed,
        }
    }
}

/// Span-taxonomy label of a task-lifecycle edge.
pub(crate) fn task_kind_label(kind: TaskEventKind) -> &'static str {
    match kind {
        TaskEventKind::Started => "started",
        TaskEventKind::Finished => "finished",
        TaskEventKind::Failed => "failed",
        TaskEventKind::Retried => "retried",
        TaskEventKind::Speculated => "speculated",
        TaskEventKind::Killed => "killed",
    }
}

/// A scheduled point where the fault plan changes the cluster.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultEvent {
    pub(crate) at: f64,
    pub(crate) kind: FaultEventKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultEventKind {
    Crash(u32),
    Recover(u32),
    /// A degradation window opens or closes; capacities are re-derived
    /// from scratch at every edge.
    DegradationEdge,
}

/// A failed or crash-killed task waiting out its retry backoff.
#[derive(Debug, Clone)]
pub(crate) struct RetryEntry {
    pub(crate) ready_at: f64,
    pub(crate) job: usize,
    pub(crate) uid: u64,
    pub(crate) attempt: u32,
    pub(crate) template: Box<TaskTemplate>,
}

/// Engine-side fault bookkeeping (cold when the plan is empty).
pub(crate) struct FaultState {
    pub(crate) enabled: bool,
    pub(crate) crashed: Vec<bool>,
    pub(crate) events: Vec<FaultEvent>,
    pub(crate) next_event: usize,
    pub(crate) retries: Vec<RetryEntry>,
    /// Per-job counter handing out stable task uids.
    pub(crate) seq: Vec<u32>,
    pub(crate) vm_crashes: u32,
}

impl FaultState {
    pub(crate) fn new(cfg: &SimConfig, njobs: usize) -> FaultState {
        let plan = &cfg.faults;
        let enabled = !plan.is_empty();
        let mut events = Vec::new();
        if enabled {
            for c in &plan.vm_crashes {
                events.push(FaultEvent {
                    at: c.at_secs,
                    kind: FaultEventKind::Crash(c.vm),
                });
                if let Some(d) = c.down_secs {
                    events.push(FaultEvent {
                        at: c.at_secs + d,
                        kind: FaultEventKind::Recover(c.vm),
                    });
                }
            }
            for w in &plan.degradations {
                for at in [w.start_secs, w.end_secs] {
                    events.push(FaultEvent {
                        at,
                        kind: FaultEventKind::DegradationEdge,
                    });
                }
            }
            events.sort_by(|a, b| a.at.total_cmp(&b.at));
        }
        FaultState {
            enabled,
            crashed: vec![false; cfg.nvm],
            events,
            next_event: 0,
            retries: Vec::new(),
            seq: vec![0; njobs],
            vm_crashes: 0,
        }
    }
}

/// Execution statistics alongside a [`SimReport`]; see
/// [`Engine::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Engine steps (discrete events) processed.
    pub steps: u64,
}

/// One completion-heap entry: a predicted task milestone (stage/latency
/// completion or doom point) or, with `task == WAKE_TASK`, a bare
/// clock wake-up. Ordered as a min-heap on `(time, task)`.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: f64,
    task: u32,
    version: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &HeapEntry) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest time
        // (ties broken by task index for determinism).
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Per-task incremental state, kept index-parallel to the engine's task
/// vector (swap-removed in lockstep).
#[derive(Debug, Clone)]
struct TaskAux {
    /// Streaming rate in units/s the task has progressed at since
    /// `anchor` (0 while latent, frozen, or awaiting its first refresh).
    rate: f64,
    /// Clock at which `units_remaining`/`fixed_remaining` were last
    /// materialized.
    anchor: f64,
    /// Predicted time of the task's next milestone (∞ when frozen).
    predicted: f64,
    /// Version stamped into the task's live heap entry; bumping it
    /// invalidates all previous entries. Globally monotonic, so stale
    /// entries can never collide with a reused task slot.
    version: u64,
    /// Registered flow handles of the current stage, positionally
    /// matching [`BoundStage::flow_parts`].
    flows: [Option<FlowHandle>; 4],
    /// Whether the current stage's flows are registered.
    registered: bool,
}

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine<'a> {
    cfg: &'a SimConfig,
    reg: ShareRegistry,
    jobs: Vec<JobRun>,
    tasks: Vec<RunningTask>,
    aux: Vec<TaskAux>,
    heap: BinaryHeap<HeapEntry>,
    next_version: u64,
    /// Per-task dedup flags for the dirty drain (transient, all false
    /// outside [`Engine::flush_dirty`]).
    dirty_flags: Vec<bool>,
    dirty_tasks: Vec<u32>,
    /// Scratch: entries due in the current step.
    due: Vec<HeapEntry>,
    /// Scratch: finished speculated tasks whose twin must be killed.
    winners: Vec<(u64, Option<u64>)>,
    /// Jobs touched by a retire/fail/kill since the last phase check.
    affected_jobs: Vec<u32>,
    affected_flags: Vec<bool>,
    /// Jobs with undispatched templates, in index order.
    pending_jobs: BTreeSet<usize>,
    /// Set when a job reaches `Done` (re-runs dependency activation).
    jobs_changed: bool,
    dispatch_scratch: Vec<usize>,
    /// Scratch for speculation sampling.
    spec_rates: Vec<f64>,
    stragglers: Vec<usize>,
    wave_scratch: Vec<f64>,
    free_map: Vec<usize>,
    free_red: Vec<usize>,
    clock: f64,
    dispatch_cursor: usize,
    trace: Option<Trace>,
    fault: FaultState,
    obs: SimObs,
    steps_done: u64,
}

impl<'a> Engine<'a> {
    /// Build an engine over prepared job runs. `jobs` must be ordered so
    /// that every dependency index is smaller than the dependent's index.
    pub fn new(cfg: &'a SimConfig, jobs: Vec<JobRun>) -> Engine<'a> {
        Engine::observed(cfg, jobs, Collector::noop())
    }

    /// [`Engine::new`] with an observability collector attached. The
    /// collector only records what the engine already computes; results
    /// are bit-identical to an unobserved run.
    pub fn observed(cfg: &'a SimConfig, jobs: Vec<JobRun>, collector: Collector) -> Engine<'a> {
        let fault = FaultState::new(cfg, jobs.len());
        let njobs = jobs.len();
        Engine {
            reg: ShareRegistry::new(cfg),
            jobs,
            tasks: Vec::new(),
            aux: Vec::new(),
            heap: BinaryHeap::new(),
            next_version: 0,
            dirty_flags: Vec::new(),
            dirty_tasks: Vec::new(),
            due: Vec::new(),
            winners: Vec::new(),
            affected_jobs: Vec::new(),
            affected_flags: vec![false; njobs],
            pending_jobs: BTreeSet::new(),
            jobs_changed: true,
            dispatch_scratch: Vec::new(),
            spec_rates: Vec::new(),
            stragglers: Vec::new(),
            wave_scratch: Vec::new(),
            free_map: vec![cfg.vm.map_slots; cfg.nvm],
            free_red: vec![cfg.vm.reduce_slots; cfg.nvm],
            clock: 0.0,
            dispatch_cursor: 0,
            trace: cfg.collect_trace.then(Trace::default),
            fault,
            obs: SimObs::new(collector),
            steps_done: 0,
            cfg,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with_stats().map(|(report, _)| report)
    }

    /// [`Engine::run`], also returning execution statistics (step count,
    /// for events/sec benchmarking).
    pub fn run_with_stats(mut self) -> Result<(SimReport, EngineStats), SimError> {
        if let Err(reason) = self.cfg.faults.validate(self.cfg.nvm) {
            return Err(SimError::InvalidFaultPlan { reason });
        }
        // Every scheduled fault event is a wake-up the clock must land on.
        for k in 0..self.fault.events.len() {
            let at = self.fault.events[k].at;
            self.push_wake(at);
        }
        let budget = self.cfg.event_budget;
        let mut events: u64 = 0;
        loop {
            self.process_fault_events();
            if self.jobs_changed {
                self.jobs_changed = false;
                self.activate_ready_jobs();
            }
            self.dispatch_retries();
            self.dispatch();
            self.speculate()?;
            if self.tasks.is_empty() {
                if self.jobs.iter().all(|j| j.phase == JobPhase::Done) {
                    break;
                }
                // No runnable work, but a retry backoff or a scheduled
                // fault event (e.g. a VM recovery) may unblock us.
                if let Some(wake) = self.next_wake() {
                    self.clock = wake;
                    events += 1;
                    if events > budget {
                        return Err(self.budget_error(events));
                    }
                    continue;
                }
                return Err(self.stalled_error());
            }
            self.step()?;
            events += 1;
            if events > budget {
                return Err(self.budget_error(events));
            }
        }
        let mut metrics: Vec<JobMetrics> = self
            .jobs
            .iter()
            .map(|j| JobMetrics {
                job: j.job.id,
                submitted: Duration::from_secs(nan_zero(j.submitted)),
                started: Duration::from_secs(nan_zero(j.started)),
                finished: Duration::from_secs(nan_zero(j.finished)),
                stage_in: Duration::from_secs(j.phase_secs[0]),
                map: Duration::from_secs(j.phase_secs[1]),
                reduce: Duration::from_secs(j.phase_secs[3]),
                stage_out: Duration::from_secs(j.phase_secs[4]),
                failures: j.failures,
                retries: j.retries,
                speculations: j.speculations,
                kills: j.kills,
            })
            .collect();
        metrics.sort_by(|a, b| a.finished.secs().total_cmp(&b.finished.secs()));
        let faults = FaultSummary {
            task_failures: self.jobs.iter().map(|j| j.failures).sum(),
            retries: self.jobs.iter().map(|j| j.retries).sum(),
            speculations: self.jobs.iter().map(|j| j.speculations).sum(),
            kills: self.jobs.iter().map(|j| j.kills).sum(),
            vm_crashes: self.fault.vm_crashes,
        };
        let report = SimReport {
            jobs: metrics,
            makespan: Duration::from_secs(self.clock),
            faults,
            trace: self.trace,
        };
        Ok((report, EngineStats { steps: events }))
    }

    fn budget_error(&self, steps: u64) -> SimError {
        SimError::EventBudgetExhausted {
            at_secs: self.clock,
            steps,
            active_tasks: self.tasks.len(),
            active_jobs: self
                .jobs
                .iter()
                .filter(|j| j.phase != JobPhase::Done)
                .count(),
        }
    }

    // ---- incremental bookkeeping ----

    /// Push a fresh heap entry for task `idx` at `time`, recording `rate`
    /// as the rate it will stream at until then. Invalidates all previous
    /// entries for the task.
    fn schedule(&mut self, idx: usize, time: f64, rate: f64) {
        self.next_version += 1;
        let v = self.next_version;
        let a = &mut self.aux[idx];
        a.rate = rate;
        a.predicted = time;
        a.version = v;
        self.heap.push(HeapEntry {
            time,
            task: idx as u32,
            version: v,
        });
    }

    /// Mark task `idx` as having no scheduled milestone (frozen, or
    /// awaiting its first rate from the next dirty flush).
    fn invalidate(&mut self, idx: usize) {
        self.next_version += 1;
        let a = &mut self.aux[idx];
        a.rate = 0.0;
        a.predicted = f64::INFINITY;
        a.version = self.next_version;
    }

    fn push_wake(&mut self, time: f64) {
        self.heap.push(HeapEntry {
            time,
            task: WAKE_TASK,
            version: 0,
        });
    }

    fn entry_valid(&self, e: &HeapEntry) -> bool {
        e.task == WAKE_TASK
            || ((e.task as usize) < self.aux.len()
                && self.aux[e.task as usize].version == e.version)
    }

    /// Bring task `idx`'s progress up to the current clock using the rate
    /// it has streamed at since its anchor.
    fn materialize(&mut self, idx: usize) {
        let a = &mut self.aux[idx];
        let dtime = self.clock - a.anchor;
        a.anchor = self.clock;
        if dtime <= 0.0 {
            return;
        }
        let rate = a.rate;
        let t = &mut self.tasks[idx];
        let Some(s) = t.current_mut() else { return };
        if s.fixed_remaining > 0.0 {
            s.fixed_remaining -= dtime;
            if s.fixed_remaining < EPS {
                s.fixed_remaining = 0.0;
            }
        } else if rate > 0.0 {
            s.units_remaining -= dtime * rate;
            if s.units_remaining < EPS {
                s.units_remaining = 0.0;
            }
            if let Some(doom) = t.doom_units.as_mut() {
                *doom -= dtime * rate;
            }
        }
    }

    /// Register the current stage's flows (positional with
    /// [`BoundStage::flow_parts`]); marks the touched resources dirty.
    fn register_stage(&mut self, idx: usize) {
        let parts = self.tasks[idx]
            .current()
            .expect("streaming stage")
            .flow_parts();
        for (k, part) in parts.into_iter().enumerate() {
            if let Some((key, ratio)) = part {
                if ratio > 0.0 {
                    self.aux[idx].flows[k] = Some(self.reg.register_flow(key, ratio, idx as u32));
                }
            }
        }
        self.aux[idx].registered = true;
    }

    /// Unregister the current stage's flows, applying swap-remove fix-ups
    /// to whichever task's handle moved.
    fn unregister_stage(&mut self, idx: usize) {
        for h in 0..4 {
            if let Some(handle) = self.aux[idx].flows[h].take() {
                if let Some(m) = self.reg.unregister_flow(handle) {
                    let owner = m.task as usize;
                    for f in self.aux[owner].flows.iter_mut().flatten() {
                        if f.res == m.res && f.pos == m.from {
                            f.pos = m.to;
                            break;
                        }
                    }
                }
            }
        }
        self.aux[idx].registered = false;
    }

    /// Remove task `idx` (swap-remove, aux kept in lockstep), returning
    /// the task and — when another task was moved into the freed slot —
    /// that task's former index so callers can fix any reference to it.
    fn remove_task(&mut self, idx: usize) -> (RunningTask, Option<usize>) {
        if self.aux[idx].registered {
            self.unregister_stage(idx);
        }
        let task = self.tasks.swap_remove(idx);
        self.aux.swap_remove(idx);
        self.dirty_flags.swap_remove(idx);
        let old_last = self.tasks.len();
        if idx < old_last {
            // The task formerly at `old_last` now lives at `idx`: re-point
            // its registered flows and re-key its heap entry under a fresh
            // version (its old entries die by index/version mismatch).
            if self.aux[idx].registered {
                for h in 0..4 {
                    if let Some(handle) = self.aux[idx].flows[h] {
                        self.reg.retarget_flow(handle, idx as u32);
                    }
                }
            }
            self.next_version += 1;
            let v = self.next_version;
            self.aux[idx].version = v;
            let predicted = self.aux[idx].predicted;
            if predicted.is_finite() {
                self.heap.push(HeapEntry {
                    time: predicted,
                    task: idx as u32,
                    version: v,
                });
            }
            (task, Some(old_last))
        } else {
            (task, None)
        }
    }

    /// Register aux state and the first milestone for the task just
    /// pushed onto the task vector.
    fn track_new_task(&mut self) {
        let idx = self.tasks.len() - 1;
        self.aux.push(TaskAux {
            rate: 0.0,
            anchor: self.clock,
            predicted: f64::INFINITY,
            version: 0,
            flows: [None; 4],
            registered: false,
        });
        self.dirty_flags.push(false);
        let (latent, fixed, tiny, has_stage) = match self.tasks[idx].current() {
            Some(s) => (
                s.is_latent(),
                s.fixed_remaining,
                s.units_remaining <= EPS,
                true,
            ),
            None => (false, 0.0, true, false),
        };
        if !has_stage || (!latent && tiny) {
            // Nothing (or nothing measurable) to do: due immediately.
            self.schedule(idx, self.clock, 0.0);
        } else if latent {
            self.schedule(idx, self.clock + fixed, 0.0);
        } else {
            // Streaming: rate and milestone arrive at the next dirty
            // flush, triggered by this very registration.
            self.register_stage(idx);
            self.invalidate(idx);
        }
    }

    /// Recompute every task whose resources changed since the last flush.
    /// Returns the stall error when a frozen task has no future wake-up.
    fn flush_dirty(&mut self) -> Result<(), SimError> {
        if !self.reg.has_dirty() {
            return Ok(());
        }
        {
            let Engine {
                reg,
                dirty_flags,
                dirty_tasks,
                ..
            } = self;
            reg.drain_dirty(|t| {
                let flag = &mut dirty_flags[t as usize];
                if !*flag {
                    *flag = true;
                    dirty_tasks.push(t);
                }
            });
        }
        let wake_exists = self.next_wake().is_some();
        let mut k = 0;
        while k < self.dirty_tasks.len() {
            let i = self.dirty_tasks[k] as usize;
            self.dirty_flags[i] = false;
            self.refresh_task(i, wake_exists)?;
            k += 1;
        }
        self.dirty_tasks.clear();
        Ok(())
    }

    /// Materialize task `i` and recompute its rate and predicted
    /// milestone from current resource shares.
    fn refresh_task(&mut self, i: usize, wake_exists: bool) -> Result<(), SimError> {
        self.materialize(i);
        let (latent, fixed, units, doom) = {
            let t = &self.tasks[i];
            let Some(s) = t.current() else {
                return Ok(()); // stageless; already scheduled due-now
            };
            (
                s.is_latent(),
                s.fixed_remaining,
                s.units_remaining,
                t.doom_units,
            )
        };
        if latent {
            self.schedule(i, self.clock + fixed, 0.0);
            return Ok(());
        }
        if units <= EPS {
            self.schedule(i, self.clock, 0.0);
            return Ok(());
        }
        let rate = self.tasks[i].current().expect("streaming").rate(&self.reg);
        if rate <= 0.0 || rate.is_nan() {
            // A fully-degraded tier (e.g. a transient outage window with
            // multiplier 0) freezes the task; a scheduled fault edge or
            // retry wake-up may restore its bandwidth, so only a stall
            // with no such future event is an error.
            if !wake_exists {
                let t = &self.tasks[i];
                return Err(SimError::Stalled {
                    at_secs: self.clock,
                    job: Some(self.jobs[t.job].job.id.0),
                    phase: Some(self.jobs[t.job].phase.name()),
                    tier: stage_tier(t.current().expect("streaming")),
                });
            }
            self.invalidate(i);
            return Ok(());
        }
        let mut dt = units / rate;
        if let Some(d) = doom {
            dt = dt.min(d.max(0.0) / rate);
        }
        self.schedule(i, self.clock + dt, rate);
        Ok(())
    }

    /// Drop invalidated entries when they dominate the heap.
    fn maybe_compact_heap(&mut self) {
        let live = self.tasks.len() + self.fault.retries.len() + 8;
        if self.heap.len() > 64 && self.heap.len() > 4 * live {
            let mut v = std::mem::take(&mut self.heap).into_vec();
            v.retain(|e| {
                e.task == WAKE_TASK
                    || ((e.task as usize) < self.aux.len()
                        && self.aux[e.task as usize].version == e.version)
            });
            self.heap = BinaryHeap::from(v);
        }
    }

    fn push_affected(&mut self, job: usize) {
        if !self.affected_flags[job] {
            self.affected_flags[job] = true;
            self.affected_jobs.push(job as u32);
        }
    }

    // ---- job lifecycle ----

    /// Move `Waiting` jobs whose dependencies are done into their first
    /// working phase, respecting the concurrency mode. Only called when a
    /// job reached `Done` since the last check (dependency/sequencing
    /// conditions cannot change otherwise).
    fn activate_ready_jobs(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].phase != JobPhase::Waiting {
                continue;
            }
            let deps_done = self.jobs[i]
                .deps
                .iter()
                .all(|&d| self.jobs[d].phase == JobPhase::Done);
            if !deps_done {
                continue;
            }
            if self.cfg.concurrency == Concurrency::Sequential {
                // Only the earliest unfinished job may start.
                let earlier_unfinished = self.jobs[..i].iter().any(|j| j.phase != JobPhase::Done);
                if earlier_unfinished {
                    continue;
                }
            }
            let job = &mut self.jobs[i];
            job.submitted = self.clock;
            let phase = job.advance_phase(self.clock, self.cfg);
            if phase != JobPhase::Done && !self.jobs[i].pending.is_empty() {
                self.pending_jobs.insert(i);
            }
            if self.obs.col.enabled() {
                let name = self.jobs[i].job.app.name().to_string();
                self.obs.col.emit(
                    self.clock,
                    EventBody::JobStart {
                        job: i as u32,
                        name,
                    },
                );
                self.emit_phase(i, phase);
            }
        }
    }

    /// Emit the trace edge for job `i` entering `phase` (including the
    /// terminal `Done`, which closes the job span).
    fn emit_phase(&self, i: usize, phase: JobPhase) {
        if !self.obs.col.enabled() {
            return;
        }
        if phase == JobPhase::Done {
            let makespan = self.jobs[i].finished - self.jobs[i].submitted;
            self.obs.col.emit(
                self.clock,
                EventBody::JobEnd {
                    job: i as u32,
                    makespan,
                },
            );
        } else {
            self.obs.col.emit(
                self.clock,
                EventBody::Phase {
                    job: i as u32,
                    phase: phase.name().to_string(),
                },
            );
        }
    }

    /// Advance the phase of every job a retire/fail/kill touched this
    /// step, once its phase fully drained. Runs at the end of [`step`] so
    /// phase edges are stamped at the advanced clock, exactly like the
    /// reference stepper's end-of-step drain scan.
    fn check_affected_jobs(&mut self) {
        let mut k = 0;
        while k < self.affected_jobs.len() {
            let i = self.affected_jobs[k] as usize;
            k += 1;
            self.affected_flags[i] = false;
            let job = &mut self.jobs[i];
            if job.phase == JobPhase::Waiting || job.phase == JobPhase::Done || !job.phase_drained()
            {
                continue;
            }
            let phase = job.advance_phase(self.clock, self.cfg);
            self.emit_phase(i, phase);
            if phase == JobPhase::Done {
                self.jobs_changed = true;
                self.pending_jobs.remove(&i);
            } else if !self.jobs[i].pending.is_empty() {
                self.pending_jobs.insert(i);
            }
        }
        self.affected_jobs.clear();
    }

    // ---- dispatch ----

    /// Assign pending task templates to free slots. Visits only jobs with
    /// undispatched templates, in the same cursor rotation the reference
    /// stepper scans with.
    fn dispatch(&mut self) {
        let n = self.jobs.len();
        if self.pending_jobs.is_empty() {
            self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
            return;
        }
        self.dispatch_scratch.clear();
        let cursor = self.dispatch_cursor;
        self.dispatch_scratch
            .extend(self.pending_jobs.range(cursor..).copied());
        self.dispatch_scratch
            .extend(self.pending_jobs.range(..cursor).copied());
        for k in 0..self.dispatch_scratch.len() {
            let i = self.dispatch_scratch[k];
            let mut launched: u32 = 0;
            while let Some(tmpl) = self.jobs[i].pending.front() {
                if matches!(self.jobs[i].phase, JobPhase::Waiting | JobPhase::Done) {
                    break;
                }
                let vm = match tmpl.slot {
                    SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                    SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                    SlotKind::Transfer => self.pick_transfer_vm(),
                };
                let Some(vm) = vm else { break };
                let tmpl = self.jobs[i].pending.pop_front().expect("peeked");
                match tmpl.slot {
                    SlotKind::Map => self.free_map[vm] -= 1,
                    SlotKind::Reduce => self.free_red[vm] -= 1,
                    SlotKind::Transfer => {}
                }
                self.push_trace(i, vm as u32, tmpl.slot, TaskEventKind::Started);
                let mut task = RunningTask::bind(i, vm as u32, &tmpl);
                if self.fault.enabled {
                    let seq = self.fault.seq[i];
                    self.fault.seq[i] += 1;
                    task.uid = ((i as u64) << 32) | u64::from(seq);
                    task.template = Some(Box::new(tmpl));
                    self.arm_task(&mut task);
                }
                self.tasks.push(task);
                self.track_new_task();
                self.jobs[i].active += 1;
                launched += 1;
            }
            if launched > 0 {
                self.obs.wave_tasks.record(f64::from(launched));
                if self.obs.col.enabled() {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Wave {
                            job: i as u32,
                            phase: self.jobs[i].phase.name().to_string(),
                            tasks: launched,
                        },
                    );
                }
            }
            if self.jobs[i].pending.is_empty() {
                self.pending_jobs.remove(&i);
            }
        }
        self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
    }

    /// Transfer streams round-robin over VMs; rotate past crashed ones.
    fn pick_transfer_vm(&self) -> Option<usize> {
        let n = self.cfg.nvm;
        let start = self.tasks.len() % n;
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&vm| !self.fault.crashed[vm])
    }

    /// Re-dispatch retry entries whose backoff has elapsed, slots
    /// permitting.
    fn dispatch_retries(&mut self) {
        if !self.fault.enabled || self.fault.retries.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.fault.retries.len() {
            if self.fault.retries[i].ready_at > self.clock + EPS {
                i += 1;
                continue;
            }
            let slot = self.fault.retries[i].template.slot;
            let vm = match slot {
                SlotKind::Map => pick_vm(&self.free_map, &self.fault.crashed),
                SlotKind::Reduce => pick_vm(&self.free_red, &self.fault.crashed),
                SlotKind::Transfer => self.pick_transfer_vm(),
            };
            let Some(vm) = vm else {
                i += 1;
                continue;
            };
            let entry = self.fault.retries.remove(i);
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            self.push_trace(entry.job, vm as u32, slot, TaskEventKind::Retried);
            let mut task = RunningTask::bind(entry.job, vm as u32, &entry.template);
            task.uid = entry.uid;
            task.attempt = entry.attempt;
            task.template = Some(entry.template);
            self.arm_task(&mut task);
            self.jobs[entry.job].retries_pending -= 1;
            self.jobs[entry.job].active += 1;
            self.tasks.push(task);
            self.track_new_task();
        }
    }

    /// Launch speculative backups for tasks streaming far below their
    /// wave's median rate (Hadoop-style speculative execution). Uses the
    /// cached per-task rates (flushed first) instead of re-registering
    /// the whole active set like the reference stepper.
    fn speculate(&mut self) -> Result<(), SimError> {
        let thr = self.cfg.faults.speculation_threshold;
        if !self.fault.enabled || thr <= 0.0 || self.tasks.is_empty() {
            return Ok(());
        }
        self.flush_dirty()?;
        self.spec_rates.clear();
        for i in 0..self.tasks.len() {
            let r = match self.tasks[i].current() {
                Some(s) if !s.is_latent() && s.units_remaining > EPS => self.aux[i].rate,
                _ => 0.0,
            };
            self.spec_rates.push(r);
        }
        self.stragglers.clear();
        for i in 0..self.tasks.len() {
            let (job, slot, speculated, is_backup) = {
                let t = &self.tasks[i];
                (t.job, t.slot, t.speculated, t.backup_of.is_some())
            };
            if self.spec_rates[i] <= 0.0
                || speculated
                || is_backup
                || slot == SlotKind::Transfer
                || !self.jobs[job].pending.is_empty()
            {
                continue;
            }
            self.wave_scratch.clear();
            for k in 0..self.tasks.len() {
                let o = &self.tasks[k];
                if o.job == job
                    && o.slot == slot
                    && self.spec_rates[k] > 0.0
                    && o.backup_of.is_none()
                {
                    self.wave_scratch.push(self.spec_rates[k]);
                }
            }
            if self.wave_scratch.len() < 2 {
                continue;
            }
            self.wave_scratch.sort_by(f64::total_cmp);
            let median = self.wave_scratch[self.wave_scratch.len() / 2];
            if self.spec_rates[i] < thr * median {
                self.stragglers.push(i);
            }
        }
        for si in 0..self.stragglers.len() {
            let i = self.stragglers[si];
            let orig_vm = self.tasks[i].vm as usize;
            let slot = self.tasks[i].slot;
            let free = match slot {
                SlotKind::Map => &self.free_map,
                SlotKind::Reduce => &self.free_red,
                SlotKind::Transfer => continue,
            };
            let vm = free
                .iter()
                .enumerate()
                .filter(|&(v, &n)| n > 0 && !self.fault.crashed[v] && v != orig_vm)
                .max_by_key(|&(_, &n)| n)
                .map(|(v, _)| v);
            let Some(vm) = vm else { continue };
            let Some(tmpl) = self.tasks[i].template.clone() else {
                continue;
            };
            match slot {
                SlotKind::Map => self.free_map[vm] -= 1,
                SlotKind::Reduce => self.free_red[vm] -= 1,
                SlotKind::Transfer => {}
            }
            let job = self.tasks[i].job;
            let orig_uid = self.tasks[i].uid;
            self.tasks[i].speculated = true;
            self.push_trace(job, vm as u32, slot, TaskEventKind::Speculated);
            let mut backup = RunningTask::bind(job, vm as u32, &tmpl);
            backup.uid = orig_uid | BACKUP_BIT;
            backup.attempt = self.tasks[i].attempt;
            backup.backup_of = Some(orig_uid);
            backup.speculated = true;
            backup.template = Some(tmpl);
            self.arm_task(&mut backup);
            self.jobs[job].speculations += 1;
            self.jobs[job].active += 1;
            self.tasks.push(backup);
            self.track_new_task();
        }
        Ok(())
    }

    /// Sample this attempt's fate from its private RNG; see
    /// [`arm_task_with`] for the policy.
    fn arm_task(&self, task: &mut RunningTask) {
        let plan = &self.cfg.faults;
        let mut rng = attempt_rng(plan.seed, task.uid, task.attempt);
        arm_task_with(plan, &mut rng, task);
    }

    // ---- fault machinery ----

    /// Apply all fault-plan events due at the current clock.
    fn process_fault_events(&mut self) {
        while let Some(&ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock + EPS {
                break;
            }
            self.fault.next_event += 1;
            self.obs.fault_edges.inc();
            if self.obs.col.enabled() {
                let (kind, vm) = match ev.kind {
                    FaultEventKind::Crash(vm) => ("crash", vm),
                    FaultEventKind::Recover(vm) => ("recover", vm),
                    FaultEventKind::DegradationEdge => ("degradation", u32::MAX),
                };
                self.obs.col.emit(
                    self.clock,
                    EventBody::Fault {
                        kind: kind.to_string(),
                        vm,
                    },
                );
            }
            match ev.kind {
                FaultEventKind::Crash(vm) => self.crash_vm(vm as usize),
                FaultEventKind::Recover(vm) => self.fault.crashed[vm as usize] = false,
                FaultEventKind::DegradationEdge => self.apply_degradations(),
            }
        }
    }

    /// Re-derive degraded capacities from the windows active right now.
    /// The registry marks every resource whose capacity actually changes,
    /// so affected tasks are refreshed at the next flush.
    fn apply_degradations(&mut self) {
        self.reg.reset_scales();
        for w in &self.cfg.faults.degradations {
            if w.start_secs <= self.clock + EPS && self.clock < w.end_secs - EPS {
                self.reg.scale_tier(w.vm, w.tier, w.multiplier);
            }
        }
    }

    /// Take a VM offline: kill its resident tasks (re-enqueuing any
    /// without a live speculative twin) and reset its slot pools, which
    /// stay unreachable until the matching recovery event.
    fn crash_vm(&mut self, vm: usize) {
        if self.fault.crashed[vm] {
            return;
        }
        self.fault.crashed[vm] = true;
        self.fault.vm_crashes += 1;
        self.free_map[vm] = self.cfg.vm.map_slots;
        self.free_red[vm] = self.cfg.vm.reduce_slots;
        let mut idx = 0;
        while idx < self.tasks.len() {
            if self.tasks[idx].vm as usize != vm {
                idx += 1;
                continue;
            }
            let (victim, _) = self.remove_task(idx);
            let job = victim.job;
            self.jobs[job].active -= 1;
            self.jobs[job].kills += 1;
            self.push_trace(job, victim.vm, victim.slot, TaskEventKind::Killed);
            self.push_affected(job);
            if victim.speculated && self.twin_index(victim.uid, victim.backup_of).is_some() {
                // The surviving copy carries the work.
                continue;
            }
            let Some(template) = victim.template else {
                continue;
            };
            // Same attempt number: the crash was not the task's fault.
            self.jobs[job].retries += 1;
            self.jobs[job].retries_pending += 1;
            self.fault.retries.push(RetryEntry {
                ready_at: self.clock,
                job,
                uid: victim.uid,
                attempt: victim.attempt,
                template,
            });
        }
    }

    /// Index of the live twin (original ↔ backup) of task `uid`.
    fn twin_index(&self, uid: u64, backup_of: Option<u64>) -> Option<usize> {
        self.tasks
            .iter()
            .position(|o| backup_of == Some(o.uid) || o.backup_of == Some(uid))
    }

    /// Earliest strictly-future time at which a fault event fires or a
    /// retry becomes ready.
    fn next_wake(&self) -> Option<f64> {
        let mut wake = f64::INFINITY;
        if let Some(ev) = self.fault.events.get(self.fault.next_event) {
            if ev.at > self.clock {
                wake = wake.min(ev.at);
            }
        }
        for r in &self.fault.retries {
            if r.ready_at > self.clock {
                wake = wake.min(r.ready_at);
            }
        }
        wake.is_finite().then_some(wake)
    }

    /// Build a [`SimError::Stalled`] carrying whatever is known about the
    /// first blocked job.
    fn stalled_error(&self) -> SimError {
        let blocked = self.jobs.iter().find(|j| j.phase != JobPhase::Done);
        let (job, phase, tier) = match blocked {
            Some(j) => {
                let tier = j
                    .pending
                    .front()
                    .and_then(|t| t.stages.first())
                    .and_then(|s| s.read.map(|(t, _)| t).or(s.write.map(|(t, _)| t)))
                    .map(|t| t.name().to_string());
                (Some(j.job.id.0), Some(j.phase.name()), tier)
            }
            None => (None, None, None),
        };
        SimError::Stalled {
            at_secs: self.clock,
            job,
            phase,
            tier,
        }
    }

    /// Stall diagnosis when the heap has no milestone left but tasks
    /// remain: every survivor is frozen with no wake-up; report the first
    /// (the reference's per-step scan does the same).
    fn frozen_stall_error(&self) -> SimError {
        for (t, a) in self.tasks.iter().zip(self.aux.iter()) {
            if let Some(s) = t.current() {
                if !s.is_latent() && a.rate <= 0.0 {
                    return SimError::Stalled {
                        at_secs: self.clock,
                        job: Some(self.jobs[t.job].job.id.0),
                        phase: Some(self.jobs[t.job].phase.name()),
                        tier: stage_tier(s),
                    };
                }
            }
        }
        self.stalled_error()
    }

    fn push_trace(&mut self, job: usize, vm: u32, slot: SlotKind, kind: TaskEventKind) {
        let id = self.jobs[job].job.id;
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TaskEvent {
                time: self.clock,
                job: id,
                vm,
                slot,
                kind,
            });
        }
        self.obs.task_counter(kind).inc();
        if self.obs.col.enabled() {
            self.obs.col.emit(
                self.clock,
                EventBody::Task {
                    job: job as u32,
                    vm,
                    kind: task_kind_label(kind).to_string(),
                },
            );
        }
    }

    fn release_slot(&mut self, vm: usize, slot: SlotKind) {
        match slot {
            SlotKind::Map => self.free_map[vm] += 1,
            SlotKind::Reduce => self.free_red[vm] += 1,
            SlotKind::Transfer => {}
        }
    }

    // ---- the event step ----

    /// Advance time to the next predicted milestone and process every
    /// task due there. O(affected flows), not O(active tasks).
    fn step(&mut self) -> Result<(), SimError> {
        self.flush_dirty()?;
        self.maybe_compact_heap();
        let t_next = loop {
            match self.heap.peek() {
                None => return Err(self.frozen_stall_error()),
                Some(e) if !self.entry_valid(e) => {
                    self.heap.pop();
                }
                Some(e) => break e.time,
            }
        };
        let t_next = t_next.max(self.clock);
        self.obs.steps.inc();
        self.steps_done += 1;
        if self.obs.col.enabled() && self.steps_done % CONTENTION_STRIDE == 1 {
            for tier in cast_cloud::tier::Tier::ALL {
                let (demand, capacity) = self.reg.tier_totals(tier);
                if demand > 0.0 {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Contention {
                            tier: tier.name().to_string(),
                            demand,
                            capacity,
                        },
                    );
                }
            }
        }
        self.clock = t_next;
        // Drain every entry due within the completion tolerance. Whether
        // a drained task actually finished is decided by materializing
        // it — a candidate with more than EPS units left is re-scheduled,
        // which reproduces the reference stepper's units-space clamp.
        self.due.clear();
        while let Some(&e) = self.heap.peek() {
            if e.time > t_next + EPS {
                break;
            }
            self.heap.pop();
            if e.task == WAKE_TASK {
                continue; // clock has landed on the wake; loop top acts
            }
            if self.entry_valid(&e) {
                self.due.push(e);
            }
        }
        self.process_due()?;
        self.check_affected_jobs();
        Ok(())
    }

    /// Process the due batch in ascending task-index order, mirroring the
    /// reference stepper's retire scan (including its swap-remove
    /// revisit: a due task moved into a freed slot is processed next).
    fn process_due(&mut self) -> Result<(), SimError> {
        if self.due.is_empty() {
            return Ok(());
        }
        self.due.sort_unstable_by_key(|e| e.task);
        self.winners.clear();
        let mut k = 0;
        while k < self.due.len() {
            let idx = self.due[k].task as usize;
            k += 1;
            if idx >= self.tasks.len() {
                continue;
            }
            if let Some(from) = self.process_due_task(idx)? {
                if let Some(rel) = self.due[k..].iter().position(|e| e.task as usize == from) {
                    let j = k + rel;
                    self.due[j].task = idx as u32;
                    self.due.swap(k, j);
                }
            }
        }
        // Winners kill their twins (after the scan, like the reference).
        for wi in 0..self.winners.len() {
            let (uid, backup_of) = self.winners[wi];
            if let Some(t) = self.twin_index(uid, backup_of) {
                let (loser, _) = self.remove_task(t);
                self.release_slot(loser.vm as usize, loser.slot);
                let job = loser.job;
                self.push_trace(job, loser.vm, loser.slot, TaskEventKind::Killed);
                self.jobs[job].active -= 1;
                self.jobs[job].kills += 1;
                self.push_affected(job);
            }
        }
        Ok(())
    }

    /// Handle one due task: materialize it, then fail, retire, or
    /// re-schedule it. Returns the former index of a task that was
    /// swap-moved into `idx`, if any.
    fn process_due_task(&mut self, idx: usize) -> Result<Option<usize>, SimError> {
        self.materialize(idx);
        if self.tasks[idx].doom_units.is_some_and(|d| d <= EPS) {
            return self.fail_task(idx);
        }
        loop {
            let done = self.tasks[idx].current().is_some_and(|s| s.is_done());
            if !done {
                break;
            }
            if self.aux[idx].registered {
                self.unregister_stage(idx);
            }
            self.tasks[idx].stages.pop_front();
        }
        if self.tasks[idx].is_done() {
            let (task, moved) = self.remove_task(idx);
            self.release_slot(task.vm as usize, task.slot);
            let job = task.job;
            self.push_trace(job, task.vm, task.slot, TaskEventKind::Finished);
            self.jobs[job].active -= 1;
            if task.speculated {
                self.winners.push((task.uid, task.backup_of));
            }
            self.push_affected(job);
            return Ok(moved);
        }
        // Not finished: schedule the next milestone of the (possibly new)
        // current stage.
        let s = *self.tasks[idx].current().expect("not done");
        if s.is_latent() {
            self.schedule(idx, self.clock + s.fixed_remaining, 0.0);
        } else if !self.aux[idx].registered {
            // A fresh streaming stage: its rate (and milestone) arrive at
            // the next dirty flush, triggered by this registration.
            self.register_stage(idx);
            self.invalidate(idx);
        } else {
            // Still mid-stream (the candidate had > EPS units left after
            // materializing): re-schedule at the current rate.
            let rate = self.aux[idx].rate;
            if rate > 0.0 {
                let mut dt = s.units_remaining / rate;
                if let Some(d) = self.tasks[idx].doom_units {
                    dt = dt.min(d.max(0.0) / rate);
                }
                self.schedule(idx, self.clock + dt, rate);
            } else {
                self.invalidate(idx);
            }
        }
        Ok(None)
    }

    /// Handle a mid-stream task failure at `idx`: schedule a retry with
    /// exponential backoff, or give up on the job past the attempt
    /// budget. Returns the swap-move fix-up like [`Engine::remove_task`].
    fn fail_task(&mut self, idx: usize) -> Result<Option<usize>, SimError> {
        let (task, moved) = self.remove_task(idx);
        self.release_slot(task.vm as usize, task.slot);
        let job = task.job;
        self.jobs[job].active -= 1;
        self.jobs[job].failures += 1;
        self.push_trace(job, task.vm, task.slot, TaskEventKind::Failed);
        self.push_affected(job);
        if task.speculated && self.twin_index(task.uid, task.backup_of).is_some() {
            // The surviving copy carries the work; no retry needed.
            return Ok(moved);
        }
        if task.attempt >= self.cfg.faults.max_task_attempts {
            return Err(SimError::JobFailed {
                job: self.jobs[job].job.id.0,
                attempts: task.attempt,
            });
        }
        let backoff =
            self.cfg.faults.retry_backoff_secs * f64::powi(2.0, (task.attempt - 1) as i32);
        let template = task.template.expect("faulted task retains its template");
        self.jobs[job].retries += 1;
        self.jobs[job].retries_pending += 1;
        let ready_at = self.clock + backoff;
        if ready_at > self.clock {
            self.push_wake(ready_at);
        }
        self.fault.retries.push(RetryEntry {
            ready_at,
            job,
            uid: task.uid,
            attempt: task.attempt + 1,
            template,
        });
        Ok(moved)
    }
}

/// Live VM with the most free slots, or `None` if none has capacity.
pub(crate) fn pick_vm(free: &[usize], crashed: &[bool]) -> Option<usize> {
    free.iter()
        .enumerate()
        .filter(|&(vm, &n)| n > 0 && !crashed[vm])
        .max_by_key(|&(_, &n)| n)
        .map(|(vm, _)| vm)
}

/// The storage tier a stage streams against, for diagnostics.
pub(crate) fn stage_tier(s: &BoundStage) -> Option<String> {
    [s.read, s.write]
        .into_iter()
        .flatten()
        .find_map(|(key, _)| match key.kind {
            ResKind::Volume(t) => Some(t.name().to_string()),
            ResKind::Nic => None,
        })
}

/// Sample one attempt's fate from its private RNG: whether (and how far
/// in) it fails, plus simulated object-store request retries inflating
/// fixed latencies. Deterministic in `(seed, uid, attempt)`; shared by
/// both engines so fault draws stay in lockstep.
pub(crate) fn arm_task_with(plan: &FaultPlan, rng: &mut StdRng, task: &mut RunningTask) {
    if plan.task_failure_prob > 0.0 {
        // First draw decides failure: at rate p₂ > p₁ the failing set
        // is a superset, so sweeps over intensity are coupled.
        let u: f64 = rng.gen();
        if u < plan.task_failure_prob {
            let frac: f64 = rng.gen();
            let total = task
                .template
                .as_deref()
                .map(TaskTemplate::total_units)
                .unwrap_or(0.0);
            if total > 0.0 {
                task.doom_units = Some((frac * total).max(EPS));
            }
        }
    }
    if plan.objstore_request_failure > 0.0 {
        for s in task.stages.iter_mut() {
            if s.global.is_some() && s.fixed_remaining > 0.0 {
                let mut extra = 0u32;
                while extra < MAX_OBJ_RETRIES && rng.gen::<f64>() < plan.objstore_request_failure {
                    extra += 1;
                }
                // Each failed request repeats the setup latency.
                s.fixed_remaining *= 1.0 + f64::from(extra);
            }
        }
    }
}

/// Private RNG for one task attempt: keyed, not streamed, so runs are
/// reproducible and failure sets couple across fault intensities.
pub(crate) fn attempt_rng(seed: u64, uid: u64, attempt: u32) -> StdRng {
    let mut u = seed ^ 0x9e37_79b9_7f4a_7c15;
    u = u.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(uid);
    u = u
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    StdRng::seed_from_u64(u)
}

pub(crate) fn nan_zero(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

/// Convenience: ids of all jobs in the engine's table (test helper).
pub fn job_ids(jobs: &[JobRun]) -> Vec<JobId> {
    jobs.iter().map(|j| j.job.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DegradationWindow, FaultPlan, VmCrash};
    use crate::placement::JobPlacement;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::Job;
    use cast_workload::profile::ProfileSet;

    pub(crate) fn cfg(nvm: usize) -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0 * nvm as f64);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), nvm, &agg).unwrap();
        c.jitter = 0.0;
        c
    }

    fn run(app: AppKind, gb: f64, tier: Tier, c: &SimConfig) -> SimReport {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run().unwrap()
    }

    pub(crate) fn try_run(
        app: AppKind,
        gb: f64,
        tier: Tier,
        c: &SimConfig,
    ) -> Result<SimReport, SimError> {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run()
    }

    #[test]
    fn grep_runtime_tracks_storage_bandwidth() {
        let c = cfg(1);
        // Grep is map-I/O bound: 30 GB at ~234 MB/s (500 GB persSSD)
        // against ~97 MB/s (500 GB persHDD): HDD should be ~2.4× slower.
        let ssd = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::Grep, 30.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (1.8..3.2).contains(&ratio),
            "expected ~2.4x slowdown, got {ratio:.2} ({} vs {})",
            ssd.makespan,
            hdd.makespan
        );
    }

    #[test]
    fn grep_map_io_estimate_close_to_bandwidth_bound() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        // Lower bound: 30 000 MB / 234 MB/s ≈ 128 s.
        let lb = 30_000.0 / 234.0;
        let got = r.makespan.secs();
        assert!(got >= lb * 0.95, "impossibly fast: {got} < {lb}");
        assert!(got <= lb * 1.6, "too slow: {got} vs bound {lb}");
    }

    #[test]
    fn kmeans_insensitive_to_tier() {
        let c = cfg(1);
        let ssd = run(AppKind::KMeans, 20.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::KMeans, 20.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (0.9..1.2).contains(&ratio),
            "CPU-bound app should not care about tier, got {ratio:.2}"
        );
    }

    #[test]
    fn ephemeral_pays_staging() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::EphSsd, &c);
        let m = &r.jobs[0];
        assert!(m.stage_in.secs() > 0.0, "must download input");
        // Grep output is tiny; upload may be near-zero but present.
        assert!(m.map.secs() > 0.0);
        // Download at 265 MB/s vs map at 733 MB/s: staging dominates.
        assert!(m.stage_in.secs() > m.map.secs());
    }

    #[test]
    fn sort_slower_than_grep_same_tier() {
        let c = cfg(1);
        let sort = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let grep = run(AppKind::Grep, 20.0, Tier::PersSsd, &c);
        assert!(
            sort.makespan.secs() > 1.5 * grep.makespan.secs(),
            "sort moves ~3-4x the bytes: {} vs {}",
            sort.makespan,
            grep.makespan
        );
    }

    #[test]
    fn more_vms_speed_up_io_bound_jobs() {
        let c1 = cfg(1);
        let c4 = cfg(4);
        let one = run(AppKind::Grep, 60.0, Tier::PersSsd, &c1);
        let four = run(AppKind::Grep, 60.0, Tier::PersSsd, &c4);
        let speedup = one.makespan.secs() / four.makespan.secs();
        assert!(
            speedup > 2.5,
            "4 VMs with 4x aggregate volume bandwidth: got {speedup:.2}x"
        );
    }

    #[test]
    fn sequential_jobs_do_not_overlap() {
        let c = cfg(1);
        let profiles = ProfileSet::defaults();
        let jobs: Vec<JobRun> = (0..2)
            .map(|i| {
                let job = Job::with_default_layout(
                    JobId(i),
                    AppKind::Grep,
                    DatasetId(i),
                    DataSize::from_gb(10.0),
                );
                JobRun::new(
                    job,
                    JobPlacement::all_on(Tier::PersSsd),
                    *profiles.get(AppKind::Grep),
                    vec![],
                )
            })
            .collect();
        let report = Engine::new(&c, jobs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn parallel_jobs_overlap_and_contend() {
        let mut c = cfg(1);
        let profiles = ProfileSet::defaults();
        let mk = |i: u32| {
            let job = Job::with_default_layout(
                JobId(i),
                AppKind::Grep,
                DatasetId(i),
                DataSize::from_gb(10.0),
            );
            JobRun::new(
                job,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            )
        };
        let seq = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        c.concurrency = Concurrency::Parallel;
        let par = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        let b = par.job(JobId(1)).unwrap();
        let a = par.job(JobId(0)).unwrap();
        assert!(
            b.started.secs() < a.finished.secs(),
            "parallel mode must overlap"
        );
        // Sharing the volume: parallel makespan close to sequential (same
        // aggregate bytes through the same bottleneck).
        let ratio = par.makespan.secs() / seq.makespan.secs();
        assert!((0.8..1.25).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dependency_ordering_enforced() {
        let mut c = cfg(1);
        c.concurrency = Concurrency::Parallel;
        let profiles = ProfileSet::defaults();
        let j0 = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(10.0),
        );
        let j1 = Job::with_default_layout(
            JobId(1),
            AppKind::Grep,
            DatasetId(1),
            DataSize::from_gb(5.0),
        );
        let runs = vec![
            JobRun::new(
                j0,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            ),
            JobRun::new(
                j1,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![0],
            ),
        ];
        let report = Engine::new(&c, runs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn fine_grained_split_straggles() {
        // A tenant splitting 6 GB 90/10 across ephSSD/persHDD provisions a
        // minimal 100 GB HDD volume (20 MB/s) for the small slice.
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(100.0);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        c.jitter = 0.0;
        let profiles = ProfileSet::defaults();
        let mk = |input: crate::placement::SplitPlacement| {
            let job = Job::with_default_layout(
                JobId(0),
                AppKind::Grep,
                DatasetId(0),
                DataSize::from_gb(6.0),
            );
            let mut p = JobPlacement::all_on(Tier::EphSsd);
            p.stage_in_from = None; // isolate the map phase effect
            p.stage_out_to = None;
            p.input = input;
            JobRun::new(job, p, *profiles.get(AppKind::Grep), vec![])
        };
        let all_eph = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::single(Tier::EphSsd))],
        )
        .run()
        .unwrap();
        let split = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::split(
                Tier::EphSsd,
                0.9,
                Tier::PersHdd,
            ))],
        )
        .run()
        .unwrap();
        // Even with 90% of data on the fast tier, the slow-tier tasks
        // dominate the single map wave (Fig. 5b).
        assert!(
            split.makespan.secs() > 1.5 * all_eph.makespan.secs(),
            "{} vs {}",
            split.makespan,
            all_eph.makespan
        );
    }

    #[test]
    fn stalls_on_unprovisioned_tier() {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0);
        let c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(1.0),
        );
        // persHDD has zero provisioned capacity → zero bandwidth → stall.
        let jr = JobRun::new(
            job,
            JobPlacement::all_on(Tier::PersHdd),
            *profiles.get(AppKind::Grep),
            vec![],
        );
        let err = Engine::new(&c, vec![jr]).run().unwrap_err();
        match err {
            SimError::Stalled {
                job, phase, tier, ..
            } => {
                assert_eq!(job, Some(0));
                assert_eq!(phase, Some("map"));
                assert_eq!(tier.as_deref(), Some("persHDD"));
            }
            other => panic!("expected enriched stall, got {other:?}"),
        }
    }

    // ---- fault injection & recovery ----

    #[test]
    fn empty_plan_is_bit_identical_regardless_of_seed() {
        let c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        let mut reseeded = cfg(1);
        reseeded.faults = FaultPlan {
            seed: 0xdead_beef,
            retry_backoff_secs: 99.0,
            ..FaultPlan::default()
        };
        assert!(reseeded.faults.is_empty());
        let again = run(AppKind::Grep, 10.0, Tier::PersSsd, &reseeded);
        assert_eq!(baseline, again);
        assert!(again.faults.is_quiet());
    }

    #[test]
    fn deterministic_under_faults() {
        let mut c = cfg(2);
        c.faults = FaultPlan::with_task_failures(0.3);
        c.collect_trace = true;
        let a = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        let b = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        assert_eq!(a, b, "same plan + seed must be bit-identical");
        assert!(a.faults.task_failures > 0, "p=0.3 should hit some tasks");
    }

    #[test]
    fn task_failures_are_retried_to_completion() {
        let mut c = cfg(1);
        c.collect_trace = true;
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            // High failure rate with a budget deep enough that no task
            // plausibly exhausts it (0.5⁸ ≈ 0.4 %).
            max_task_attempts: 8,
            ..FaultPlan::with_task_failures(0.5)
        };
        let faulted = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(faulted.faults.task_failures > 0);
        // Without crashes or speculation every failure schedules a retry.
        assert_eq!(faulted.faults.retries, faulted.faults.task_failures);
        assert!(
            faulted.makespan.secs() > baseline.makespan.secs(),
            "re-executed work must cost time: {} vs {}",
            faulted.makespan,
            baseline.makespan
        );
        let trace = faulted.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Failed),
            faulted.faults.task_failures as usize
        );
        assert_eq!(
            trace.count(TaskEventKind::Retried),
            faulted.faults.retries as usize
        );
        // Per-job counters roll up to the summary.
        let m = &faulted.jobs[0];
        assert_eq!(m.failures, faulted.faults.task_failures);
        assert_eq!(m.retries, faulted.faults.retries);
    }

    #[test]
    fn failure_sweep_trends_upward() {
        // Strict monotonicity is not a theorem under bandwidth sharing (a
        // failed task frees its share mid-wave, and its retry later runs
        // uncontended), so allow sub-percent dips while requiring the
        // overall degradation trend.
        let mut makespans = Vec::new();
        for p in [0.0, 0.1, 0.3, 0.6] {
            let mut c = cfg(1);
            c.faults = FaultPlan {
                max_task_attempts: 16,
                ..FaultPlan::with_task_failures(p)
            };
            makespans.push(run(AppKind::Grep, 5.0, Tier::PersSsd, &c).makespan.secs());
        }
        for w in makespans.windows(2) {
            assert!(w[1] >= 0.99 * w[0], "big makespan drop: {makespans:?}");
        }
        assert!(
            makespans[3] > 1.1 * makespans[0],
            "60% failures must cost real time: {makespans:?}"
        );
    }

    #[test]
    fn vm_crash_finishes_via_reexecution() {
        let mut c = cfg(2);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.collect_trace = true;
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: None, // never recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c)
            .expect("crash must be survivable, not a stall");
        assert_eq!(r.faults.vm_crashes, 1);
        assert!(r.faults.kills > 0, "resident tasks must be killed");
        assert!(r.faults.retries > 0, "killed tasks must be re-executed");
        let trace = r.trace.as_ref().unwrap();
        assert!(trace.count(TaskEventKind::Killed) > 0);
        assert!(trace.count(TaskEventKind::Retried) > 0);
        assert!(
            r.makespan.secs() > baseline.makespan.secs(),
            "half the cluster is gone: {} vs {}",
            r.makespan,
            baseline.makespan
        );
        // Nothing ran on the dead VM after the crash.
        assert!(trace
            .events
            .iter()
            .filter(|e| e.time > 5.0 + 1e-9 && e.kind.opens())
            .all(|e| e.vm != 0));
    }

    #[test]
    fn crashed_vm_recovery_restores_capacity() {
        let mut c = cfg(2);
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: Some(20.0),
            }],
            ..FaultPlan::default()
        };
        c.collect_trace = true;
        let r = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let trace = r.trace.as_ref().unwrap();
        // Work lands on VM 0 again after recovery at t=25.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.vm == 0 && e.time > 25.0 && e.kind.opens()),
            "recovered VM must take tasks again"
        );
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            task_failure_prob: 1.0,
            max_task_attempts: 2,
            retry_backoff_secs: 0.5,
            ..FaultPlan::default()
        };
        let err = try_run(AppKind::Grep, 2.0, Tier::PersSsd, &c).unwrap_err();
        assert_eq!(
            err,
            SimError::JobFailed {
                job: 0,
                attempts: 2
            }
        );
    }

    #[test]
    fn degradation_window_slows_the_job() {
        let mut c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let degraded = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(
            degraded.makespan.secs() > 1.5 * baseline.makespan.secs(),
            "quartered volume bandwidth must hurt an I/O-bound job: {} vs {}",
            degraded.makespan,
            baseline.makespan
        );
        // A window that closes before the run ends costs less than the
        // permanent one.
        let mut brief = cfg(1);
        brief.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 10.0,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let transient = run(AppKind::Grep, 10.0, Tier::PersSsd, &brief);
        assert!(transient.makespan.secs() < degraded.makespan.secs());
        assert!(transient.makespan.secs() > baseline.makespan.secs() - 1e-6);
    }

    #[test]
    fn speculation_rescues_degraded_vm_stragglers() {
        // VM 0's volume crawls at 5% speed; tasks placed there straggle.
        let slow_vm = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: Some(0),
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.05,
            }],
            ..FaultPlan::default()
        };
        let mut without = cfg(2);
        without.faults = slow_vm.clone();
        let stuck = run(AppKind::Grep, 2.0, Tier::PersSsd, &without);
        let mut with = cfg(2);
        with.collect_trace = true;
        with.faults = FaultPlan {
            speculation_threshold: 0.5,
            ..slow_vm
        };
        let rescued = run(AppKind::Grep, 2.0, Tier::PersSsd, &with);
        assert!(rescued.faults.speculations > 0, "backups must launch");
        assert!(rescued.faults.kills > 0, "a race must have a loser");
        assert!(
            rescued.makespan.secs() < 0.9 * stuck.makespan.secs(),
            "speculation must beat waiting on the slow VM: {} vs {}",
            rescued.makespan,
            stuck.makespan
        );
        let trace = rescued.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Speculated),
            rescued.faults.speculations as usize
        );
    }

    #[test]
    fn vm_crash_at_time_zero_runs_entirely_on_survivors() {
        // The crash edge fires before any task is placed: nothing to
        // kill, but the dead VM must never take work and the job must
        // still finish on the survivor.
        let mut c = cfg(2);
        c.collect_trace = true;
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 0.0,
                down_secs: None,
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c)
            .expect("a boot-time crash must be survivable");
        assert_eq!(r.faults.vm_crashes, 1);
        assert_eq!(r.faults.kills, 0, "no resident tasks to kill at t=0");
        let trace = r.trace.as_ref().unwrap();
        assert!(
            trace
                .events
                .iter()
                .filter(|e| e.kind.opens())
                .all(|e| e.vm != 0),
            "dead-from-boot VM must never open a task"
        );
        // One VM doing all the work is slower than two.
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &cfg(2));
        assert!(r.makespan.secs() > baseline.makespan.secs());
    }

    #[test]
    fn zero_duration_degradation_window_is_inert() {
        // start == end validates (the plan may be machine-generated) but
        // is never active: both edges fire at the same instant and the
        // active-window predicate is empty between them.
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &cfg(1));
        let mut c = cfg(1);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 5.0,
                end_secs: 5.0,
                multiplier: 0.0,
            }],
            ..FaultPlan::default()
        };
        let r = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert_eq!(
            r.makespan.secs(),
            baseline.makespan.secs(),
            "a zero-duration window must not perturb the schedule"
        );
    }

    #[test]
    fn overlapping_same_tier_windows_compose_multiplicatively() {
        let mk = |windows: Vec<DegradationWindow>| {
            let mut c = cfg(1);
            c.faults = FaultPlan {
                degradations: windows,
                ..FaultPlan::default()
            };
            run(AppKind::Grep, 10.0, Tier::PersSsd, &c).makespan.secs()
        };
        let half = |mult: f64| DegradationWindow {
            vm: None,
            tier: Tier::PersSsd,
            start_secs: 0.0,
            end_secs: 1e9,
            multiplier: mult,
        };
        let single = mk(vec![half(0.5)]);
        let overlapped = mk(vec![half(0.5), half(0.5)]);
        let quartered = mk(vec![half(0.25)]);
        assert!(
            overlapped > single,
            "two overlapping windows must hurt more than one: {overlapped} vs {single}"
        );
        // Overlap composes multiplicatively: 0.5 × 0.5 ≡ one 0.25 window.
        assert!(
            (overlapped - quartered).abs() <= 1e-9 * quartered,
            "0.5 x 0.5 overlap must equal a single 0.25 window: \
             {overlapped} vs {quartered}"
        );
    }
}

#[cfg(test)]
mod review_probe {
    use super::tests::*;
    use crate::fault::{DegradationWindow, FaultPlan};
    use cast_cloud::tier::Tier;
    use cast_workload::apps::AppKind;

    #[test]
    fn transient_full_outage_window() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 5.0,
                end_secs: 10.0,
                multiplier: 0.0, // full outage for 5s, then recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        eprintln!(
            "RESULT: {:?}",
            r.as_ref().map(|x| x.makespan).map_err(|e| e.to_string())
        );
        assert!(r.is_ok(), "transient outage should be survivable");
    }
}
