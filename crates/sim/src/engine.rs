//! The event-driven discrete-event engine.
//!
//! The engine owns the job table, the active task set and the resource
//! registry. Work per event is proportional to the number of *affected*
//! flows, not the number of active tasks:
//!
//! * **Incremental share rates** — every streaming stage registers
//!   persistent flows in the [`ShareRegistry`]; when a resource's load or
//!   capacity changes, only the tasks with a flow on that resource are
//!   recomputed (the registry's dirty-set drives this). A task whose
//!   recomputed rate is bit-equal to its current rate keeps its heap
//!   entry untouched.
//! * **Completion heap** — each task's predicted completion (or doom
//!   point) sits in an *indexed* binary min-heap (`TaskHeap`): the
//!   task table stores each entry's heap position, so a rate change
//!   re-keys the existing entry in place (one sift) and task removal
//!   deletes it outright. The heap holds exactly one entry per
//!   scheduled task — no stale entries, no validity checks on pop, no
//!   compaction passes. Scheduled fault events and retry wake-ups live
//!   in a small separate wake heap of bare timestamps.
//! * **Lazy task advancement** — a task records `(anchor clock, rate)`
//!   and materializes its remaining units only when its rate changes, it
//!   completes, it fails, or speculation samples it. Between rate changes
//!   no per-event bookkeeping touches it.
//!
//! ## Data-oriented hot state
//!
//! Per-task state is struct-of-arrays (`soa::TaskTable`): flat
//! index-parallel columns addressed by dense indices, with the current
//! stage's remaining work and pre-resolved resource indices mirrored into
//! hot columns so a rate refresh reads four contiguous arrays instead of
//! chasing per-task pointers. Task templates are interned in a
//! reference-counted arena (`soa::TemplateArena`) — dispatch
//! moves them out of the job queue once; retries and speculative backups
//! share by id instead of cloning boxes. Stage buffers, retry slots and
//! every per-run scratch vector live in an [`EngineScratch`] that can be
//! reused across runs ([`Engine::with_scratch`]), so repeated simulation
//! of the same catalog allocates nothing in steady state
//! ([`EngineStats::scratch_reallocs`] proves it).
//!
//! The pre-overhaul stepper that recomputed every rate and advanced every
//! task on every event survives as [`crate::reference::ReferenceEngine`]
//! (behind the `reference-engine` feature) and serves as the equivalence
//! oracle: both engines agree within 1e-6 relative on makespan and
//! per-job phase times across randomized workloads, placements and fault
//! plans (`tests/engine_equivalence.rs`). Decision points — dispatch
//! order, VM picks, fault arming, speculation policy — are kept in
//! lockstep between the two implementations; edit them together.
//!
//! ## Fault injection and recovery
//!
//! When [`SimConfig::faults`] carries a non-empty
//! [`crate::fault::FaultPlan`], the engine layers recovery semantics on
//! top of the event loop:
//!
//! * every task attempt draws — from an RNG keyed by `(plan seed, task
//!   uid, attempt)` — whether and where it fails mid-stream;
//! * failed tasks re-enqueue with exponential backoff, up to the plan's
//!   attempt budget ([`SimError::JobFailed`] beyond it);
//! * scheduled VM crashes kill resident tasks (re-enqueued at the *same*
//!   attempt — the crash was not their fault) and take the VM's slots
//!   offline until the scheduled recovery, if any;
//! * degradation windows scale volume capacities for their duration;
//! * optional Hadoop-style speculation launches a backup copy of any task
//!   streaming slower than a configured fraction of its wave's median
//!   rate; whichever copy finishes first kills the other.
//!
//! The empty plan takes none of these code paths, so fault-free
//! simulations are bit-identical with the machinery present.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cast_obs::{Collector, Counter, EventBody, Histogram};
use cast_workload::job::JobId;

use crate::config::{Concurrency, SimConfig};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::jobrun::{JobPhase, JobRun};
use crate::metrics::{FaultSummary, JobMetrics, SimReport};
use crate::resources::{ResKind, ShareRegistry};
use crate::soa::{
    TaskTable, TemplateArena, NO_DOOM, NO_HEAP, NO_POS, NO_RES, NO_TEMPLATE, NO_TWIN,
};
#[cfg(feature = "reference-engine")]
use crate::task::RunningTask;
use crate::task::{bind_spec, BoundStage, SlotKind, TaskTemplate};
use crate::trace::{TaskEvent, TaskEventKind, Trace};
use cast_cloud::units::Duration;

/// Completion tolerance for floating-point progress.
pub(crate) const EPS: f64 = 1e-9;
/// High bit marking the uid of a speculative backup copy.
pub(crate) const BACKUP_BIT: u64 = 1 << 63;
/// Cap on consecutive simulated object-store request retries per stage.
pub(crate) const MAX_OBJ_RETRIES: u32 = 16;
/// Engine steps between tier-contention samples on a recording collector.
pub(crate) const CONTENTION_STRIDE: u64 = 32;

/// Observability handles, resolved once at engine construction so the hot
/// loop never touches the registry. With a no-op collector every operation
/// is a single branch; none of them feed back into the simulation.
pub(crate) struct SimObs {
    pub(crate) col: Collector,
    pub(crate) started: Counter,
    pub(crate) finished: Counter,
    pub(crate) failed: Counter,
    pub(crate) retried: Counter,
    pub(crate) speculated: Counter,
    pub(crate) killed: Counter,
    pub(crate) steps: Counter,
    pub(crate) fault_edges: Counter,
    pub(crate) wave_tasks: Histogram,
}

impl SimObs {
    pub(crate) fn new(col: Collector) -> SimObs {
        SimObs {
            started: col.counter("sim.tasks.started"),
            finished: col.counter("sim.tasks.finished"),
            failed: col.counter("sim.tasks.failed"),
            retried: col.counter("sim.tasks.retried"),
            speculated: col.counter("sim.tasks.speculated"),
            killed: col.counter("sim.tasks.killed"),
            steps: col.counter("sim.steps"),
            fault_edges: col.counter("sim.fault.edges"),
            wave_tasks: col.histogram(
                "sim.wave_tasks",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
            ),
            col,
        }
    }

    pub(crate) fn task_counter(&self, kind: TaskEventKind) -> &Counter {
        match kind {
            TaskEventKind::Started => &self.started,
            TaskEventKind::Finished => &self.finished,
            TaskEventKind::Failed => &self.failed,
            TaskEventKind::Retried => &self.retried,
            TaskEventKind::Speculated => &self.speculated,
            TaskEventKind::Killed => &self.killed,
        }
    }
}

/// Span-taxonomy label of a task-lifecycle edge.
pub(crate) fn task_kind_label(kind: TaskEventKind) -> &'static str {
    match kind {
        TaskEventKind::Started => "started",
        TaskEventKind::Finished => "finished",
        TaskEventKind::Failed => "failed",
        TaskEventKind::Retried => "retried",
        TaskEventKind::Speculated => "speculated",
        TaskEventKind::Killed => "killed",
    }
}

/// A scheduled point where the fault plan changes the cluster.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultEvent {
    pub(crate) at: f64,
    pub(crate) kind: FaultEventKind,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultEventKind {
    Crash(u32),
    Recover(u32),
    /// A degradation window opens or closes; capacities are re-derived
    /// from scratch at every edge.
    DegradationEdge,
}

/// A failed or crash-killed task waiting out its retry backoff.
/// Arena-backed: `tid` holds one reference on the shared template, so a
/// retry allocates nothing.
#[derive(Debug, Clone, Copy)]
struct RetrySlot {
    ready_at: f64,
    job: u32,
    uid: u64,
    attempt: u32,
    tid: u32,
}

/// A failed or crash-killed task waiting out its retry backoff
/// (reference stepper's boxed form).
#[cfg(feature = "reference-engine")]
#[derive(Debug, Clone)]
pub(crate) struct RetryEntry {
    pub(crate) ready_at: f64,
    pub(crate) job: usize,
    pub(crate) uid: u64,
    pub(crate) attempt: u32,
    pub(crate) template: Box<TaskTemplate>,
}

/// Engine-side fault bookkeeping for the reference stepper (the
/// event-driven engine keeps the same state inside [`EngineScratch`]).
#[cfg(feature = "reference-engine")]
pub(crate) struct FaultState {
    pub(crate) enabled: bool,
    pub(crate) crashed: Vec<bool>,
    pub(crate) events: Vec<FaultEvent>,
    pub(crate) next_event: usize,
    pub(crate) retries: Vec<RetryEntry>,
    /// Per-job counter handing out stable task uids.
    pub(crate) seq: Vec<u32>,
    pub(crate) vm_crashes: u32,
}

#[cfg(feature = "reference-engine")]
impl FaultState {
    pub(crate) fn new(cfg: &SimConfig, njobs: usize) -> FaultState {
        let mut events = Vec::new();
        let enabled = !cfg.faults.is_empty();
        if enabled {
            build_fault_events(&cfg.faults, &mut events);
        }
        FaultState {
            enabled,
            crashed: vec![false; cfg.nvm],
            events,
            next_event: 0,
            retries: Vec::new(),
            seq: vec![0; njobs],
            vm_crashes: 0,
        }
    }
}

/// Fill `events` with the plan's scheduled edges, sorted by time.
pub(crate) fn build_fault_events(plan: &FaultPlan, events: &mut Vec<FaultEvent>) {
    for c in &plan.vm_crashes {
        events.push(FaultEvent {
            at: c.at_secs,
            kind: FaultEventKind::Crash(c.vm),
        });
        if let Some(d) = c.down_secs {
            events.push(FaultEvent {
                at: c.at_secs + d,
                kind: FaultEventKind::Recover(c.vm),
            });
        }
    }
    for w in &plan.degradations {
        for at in [w.start_secs, w.end_secs] {
            events.push(FaultEvent {
                at,
                kind: FaultEventKind::DegradationEdge,
            });
        }
    }
    events.sort_by(|a, b| a.at.total_cmp(&b.at));
}

/// Execution statistics alongside a [`SimReport`]; see
/// [`Engine::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Engine steps (discrete events) processed.
    pub steps: u64,
    /// Stale heap entries discarded. Structurally zero since the
    /// completion heap became indexed (entries are re-keyed or removed in
    /// place, never invalidated); kept so benchmark JSON stays comparable
    /// across engine generations and as a regression tripwire should lazy
    /// invalidation ever return.
    pub heap_stale_popped: u64,
    /// Wake sentinel entries pushed (fault edges at start-of-run, retry
    /// backoffs as they are scheduled).
    pub wake_entries_allocated: u64,
    /// Dirty-set drains that actually recomputed at least one flow
    /// (batched: one drain per clock advance covers every resource that
    /// changed in that event).
    pub dirty_drain_batches: u64,
    /// Internal buffers that had to grow during this run's scratch
    /// preparation. Zero when the engine reused a scratch last sized for
    /// an equal-or-larger catalog ([`Engine::with_scratch`]).
    pub scratch_reallocs: u64,
}

/// Outcome of a bounded run segment ([`Engine::run_until`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// The horizon was reached with work still in flight; the engine is
    /// live and can be advanced further, snapshotted, or forked.
    Running,
    /// Every job reached `Done`; call [`Engine::finish`] for the report.
    Done,
}

/// Indexed binary min-heap of predicted task milestones, keyed
/// `(time, task)` — earliest time first, ties broken by the smaller
/// task index for determinism. The task table's `heap_pos` column names
/// the slot each task's entry occupies (maintained by every sift), so
/// [`TaskHeap::set`] is an in-place re-key and [`TaskHeap::remove`] a
/// positional delete: at most one entry per task ever exists, and every
/// entry in the heap is live. The position column is passed in by the
/// caller (`&mut table.heap_pos`) to keep the borrows disjoint.
#[derive(Default)]
struct TaskHeap {
    v: Vec<(f64, u32)>,
}

/// Hand-written so `clone_from` reuses the entry buffer on the
/// snapshot/fork resume path.
impl Clone for TaskHeap {
    fn clone(&self) -> Self {
        TaskHeap { v: self.v.clone() }
    }

    fn clone_from(&mut self, src: &Self) {
        self.v.clone_from(&src.v);
    }
}

impl TaskHeap {
    #[inline]
    fn less(a: (f64, u32), b: (f64, u32)) -> bool {
        match a.0.total_cmp(&b.0) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a.1 < b.1,
        }
    }

    fn clear(&mut self) {
        self.v.clear();
    }

    #[inline]
    fn peek(&self) -> Option<(f64, u32)> {
        self.v.first().copied()
    }

    /// Insert task `t` at key `time`, or re-key its existing entry.
    fn set(&mut self, pos: &mut [u32], t: u32, time: f64) {
        let p = pos[t as usize];
        let i = if p == NO_HEAP {
            let i = self.v.len();
            self.v.push((time, t));
            pos[t as usize] = i as u32;
            i
        } else {
            self.v[p as usize].0 = time;
            p as usize
        };
        let i = self.sift_up(pos, i);
        self.sift_down(pos, i);
    }

    /// Delete task `t`'s entry, if it has one.
    fn remove(&mut self, pos: &mut [u32], t: u32) {
        let p = pos[t as usize];
        if p == NO_HEAP {
            return;
        }
        pos[t as usize] = NO_HEAP;
        let i = p as usize;
        let last = self.v.len() - 1;
        if i == last {
            self.v.pop();
            return;
        }
        self.v.swap(i, last);
        self.v.pop();
        pos[self.v[i].1 as usize] = i as u32;
        let i = self.sift_up(pos, i);
        self.sift_down(pos, i);
    }

    /// Pop the earliest entry.
    fn pop(&mut self, pos: &mut [u32]) -> Option<(f64, u32)> {
        let top = self.peek()?;
        self.remove(pos, top.1);
        Some(top)
    }

    /// Rename the task an entry refers to (after a table swap-remove
    /// moved the task to a new index). The key is unchanged but the
    /// tie-break component is, so re-sift to keep the invariant exact.
    fn retag(&mut self, pos: &mut [u32], p: u32, t: u32) {
        let i = p as usize;
        self.v[i].1 = t;
        pos[t as usize] = p;
        let i = self.sift_up(pos, i);
        self.sift_down(pos, i);
    }

    fn sift_up(&mut self, pos: &mut [u32], mut i: usize) -> usize {
        while i > 0 {
            let parent = (i - 1) / 2;
            if !Self::less(self.v[i], self.v[parent]) {
                break;
            }
            self.v.swap(i, parent);
            pos[self.v[i].1 as usize] = i as u32;
            i = parent;
        }
        pos[self.v[i].1 as usize] = i as u32;
        i
    }

    fn sift_down(&mut self, pos: &mut [u32], mut i: usize) {
        let n = self.v.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let c = if r < n && Self::less(self.v[r], self.v[l]) {
                r
            } else {
                l
            };
            if !Self::less(self.v[c], self.v[i]) {
                break;
            }
            self.v.swap(i, c);
            pos[self.v[i].1 as usize] = i as u32;
            i = c;
        }
        pos[self.v[i].1 as usize] = i as u32;
    }
}

/// Bare clock wake-up (scheduled fault event, retry backoff) in the
/// wake heap. Ordering reversed so `BinaryHeap` pops the earliest.
#[derive(PartialEq, Clone, Copy)]
struct Wake(f64);

impl Eq for Wake {}
impl PartialOrd for Wake {
    fn partial_cmp(&self, other: &Wake) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Wake {
    fn cmp(&self, other: &Wake) -> Ordering {
        other.0.total_cmp(&self.0)
    }
}

/// Everything the engine allocates that can outlive a run: the resource
/// registry, the SoA task table, the template arena, pooled stage
/// buffers, the completion heap and every scratch vector. Owned by the
/// engine by default; pass one explicitly via [`Engine::with_scratch`]
/// to amortize allocation across repeated runs (annealer scoring loops,
/// benchmark reps). Preparation is in-place: buffers are cleared, not
/// dropped, and [`EngineStats::scratch_reallocs`] counts the ones that
/// had to grow.
pub struct EngineScratch {
    reg: ShareRegistry,
    table: TaskTable,
    arena: TemplateArena,
    buf_pool: Vec<Vec<BoundStage>>,
    heap: TaskHeap,
    /// Pending bare clock wake-ups, separate from task milestones.
    wakes: BinaryHeap<Wake>,
    dirty_tasks: Vec<u32>,
    /// Task ids drained as due at the current step.
    due: Vec<u32>,
    /// Finished speculated tasks whose twin must be killed:
    /// `(uid, backup_of)` with [`NO_TWIN`] sentinels.
    winners: Vec<(u64, u64)>,
    affected_jobs: Vec<u32>,
    affected_flags: Vec<bool>,
    /// Sorted indices of jobs with undispatched templates. A sorted vec
    /// beats a `BTreeSet` here: dispatch snapshots it every event, and two
    /// `memcpy`s of a small `u32` slice cost less than one B-tree walk.
    pending_jobs: Vec<u32>,
    /// Slot kind of each job's front pending template — a dense mirror so
    /// saturated dispatch can skip a job without touching its (cold)
    /// `JobRun` and template deque. Maintained at the two places the
    /// front can change: `advance_phase` refills and dispatch pops.
    front_slot: Vec<SlotKind>,
    dispatch_scratch: Vec<u32>,
    spec_rates: Vec<f64>,
    stragglers: Vec<usize>,
    wave_scratch: Vec<f64>,
    free_map: Vec<usize>,
    free_red: Vec<usize>,
    /// Total free map/reduce slots on non-crashed VMs — the O(1)
    /// saturation check that lets dispatch skip slot-pool lookups when
    /// no slot can possibly be granted.
    avail_map: usize,
    avail_red: usize,
    /// Lazy max-heaps of `(free slots, vm)` — O(log n) replacements for
    /// the O(n) most-free-VM scan [`pick_vm`] does on every launch. An
    /// entry is stale once the VM's count changed or the VM crashed;
    /// stale tops are discarded on pop, exactly like the completion
    /// heap. Tuple order ties on the higher VM index, matching
    /// `max_by_key`'s last-max-wins.
    slot_heap_map: BinaryHeap<(u32, u32)>,
    slot_heap_red: BinaryHeap<(u32, u32)>,
    crashed: Vec<bool>,
    /// Per-job counter handing out stable task uids.
    seq: Vec<u32>,
    retries: Vec<RetrySlot>,
    fault_events: Vec<FaultEvent>,
    reallocs: u64,
}

fn fit<T: Copy>(v: &mut Vec<T>, n: usize, x: T, grown: &mut u64) {
    if v.capacity() < n {
        *grown += 1;
    }
    v.clear();
    v.resize(n, x);
}

impl EngineScratch {
    /// An empty scratch; the engine provisions it per run.
    pub fn new() -> EngineScratch {
        EngineScratch {
            reg: ShareRegistry::empty(),
            table: TaskTable::default(),
            arena: TemplateArena::default(),
            buf_pool: Vec::new(),
            heap: TaskHeap::default(),
            wakes: BinaryHeap::new(),
            dirty_tasks: Vec::new(),
            due: Vec::new(),
            winners: Vec::new(),
            affected_jobs: Vec::new(),
            affected_flags: Vec::new(),
            pending_jobs: Vec::new(),
            front_slot: Vec::new(),
            dispatch_scratch: Vec::new(),
            spec_rates: Vec::new(),
            stragglers: Vec::new(),
            wave_scratch: Vec::new(),
            free_map: Vec::new(),
            free_red: Vec::new(),
            avail_map: 0,
            avail_red: 0,
            slot_heap_map: BinaryHeap::new(),
            slot_heap_red: BinaryHeap::new(),
            crashed: Vec::new(),
            seq: Vec::new(),
            retries: Vec::new(),
            fault_events: Vec::new(),
            reallocs: 0,
        }
    }

    /// Size and clear everything for a run over `cfg` with `njobs` jobs,
    /// reusing existing allocations wherever possible.
    fn prepare(&mut self, cfg: &SimConfig, njobs: usize) {
        let mut grown = self.reg.reset_for(cfg);
        self.table.clear_into(&mut self.buf_pool);
        self.arena.clear();
        self.heap.clear();
        self.wakes.clear();
        self.dirty_tasks.clear();
        self.due.clear();
        self.winners.clear();
        self.affected_jobs.clear();
        fit(&mut self.affected_flags, njobs, false, &mut grown);
        self.pending_jobs.clear();
        fit(&mut self.front_slot, njobs, SlotKind::Map, &mut grown);
        self.dispatch_scratch.clear();
        self.spec_rates.clear();
        self.stragglers.clear();
        self.wave_scratch.clear();
        fit(&mut self.free_map, cfg.nvm, cfg.vm.map_slots, &mut grown);
        fit(&mut self.free_red, cfg.nvm, cfg.vm.reduce_slots, &mut grown);
        self.avail_map = cfg.nvm * cfg.vm.map_slots;
        self.avail_red = cfg.nvm * cfg.vm.reduce_slots;
        for (heap, slots) in [
            (&mut self.slot_heap_map, cfg.vm.map_slots),
            (&mut self.slot_heap_red, cfg.vm.reduce_slots),
        ] {
            if heap.capacity() < cfg.nvm {
                grown += 1;
            }
            heap.clear();
            if slots > 0 {
                heap.extend((0..cfg.nvm).map(|vm| (slots as u32, vm as u32)));
            }
        }
        fit(&mut self.crashed, cfg.nvm, false, &mut grown);
        fit(&mut self.seq, njobs, 0, &mut grown);
        self.retries.clear();
        self.fault_events.clear();
        if !cfg.faults.is_empty() {
            build_fault_events(&cfg.faults, &mut self.fault_events);
        }
        self.reallocs = grown;
    }
}

impl Default for EngineScratch {
    fn default() -> EngineScratch {
        EngineScratch::new()
    }
}

/// Hand-written so `clone_from` reuses every buffer: restoring a
/// snapshot into a previously-sized scratch ([`EngineSnapshot::fork_with_scratch`])
/// allocates nothing. `BinaryHeap`'s own `clone_from` already forwards to
/// the backing vector's.
impl Clone for EngineScratch {
    fn clone(&self) -> Self {
        let mut s = EngineScratch::new();
        s.clone_from(self);
        s
    }

    fn clone_from(&mut self, src: &Self) {
        self.reg.clone_from(&src.reg);
        self.table.clone_from(&src.table);
        self.arena.clone_from(&src.arena);
        self.buf_pool.truncate(src.buf_pool.len());
        for (dst, s) in self.buf_pool.iter_mut().zip(&src.buf_pool) {
            dst.clone_from(s);
        }
        for s in &src.buf_pool[self.buf_pool.len()..] {
            self.buf_pool.push(s.clone());
        }
        self.heap.clone_from(&src.heap);
        self.wakes.clone_from(&src.wakes);
        self.dirty_tasks.clone_from(&src.dirty_tasks);
        self.due.clone_from(&src.due);
        self.winners.clone_from(&src.winners);
        self.affected_jobs.clone_from(&src.affected_jobs);
        self.affected_flags.clone_from(&src.affected_flags);
        self.pending_jobs.clone_from(&src.pending_jobs);
        self.front_slot.clone_from(&src.front_slot);
        self.dispatch_scratch.clone_from(&src.dispatch_scratch);
        self.spec_rates.clone_from(&src.spec_rates);
        self.stragglers.clone_from(&src.stragglers);
        self.wave_scratch.clone_from(&src.wave_scratch);
        self.free_map.clone_from(&src.free_map);
        self.free_red.clone_from(&src.free_red);
        self.avail_map = src.avail_map;
        self.avail_red = src.avail_red;
        self.slot_heap_map.clone_from(&src.slot_heap_map);
        self.slot_heap_red.clone_from(&src.slot_heap_red);
        self.crashed.clone_from(&src.crashed);
        self.seq.clone_from(&src.seq);
        self.retries.clone_from(&src.retries);
        self.fault_events.clone_from(&src.fault_events);
        self.reallocs = src.reallocs;
    }
}

/// Owned-or-borrowed scratch; both deref to [`EngineScratch`] so the hot
/// path is identical.
enum ScratchRef<'a> {
    Owned(Box<EngineScratch>),
    Borrowed(&'a mut EngineScratch),
}

impl std::ops::Deref for ScratchRef<'_> {
    type Target = EngineScratch;
    #[inline]
    fn deref(&self) -> &EngineScratch {
        match self {
            ScratchRef::Owned(b) => b,
            ScratchRef::Borrowed(r) => r,
        }
    }
}

impl std::ops::DerefMut for ScratchRef<'_> {
    #[inline]
    fn deref_mut(&mut self) -> &mut EngineScratch {
        match self {
            ScratchRef::Owned(b) => b,
            ScratchRef::Borrowed(r) => r,
        }
    }
}

/// What [`Engine::remove_task`] hands back about the removed task.
struct Removed {
    job: usize,
    vm: u32,
    slot: SlotKind,
    uid: u64,
    attempt: u32,
    backup_of: u64,
    speculated: bool,
    /// Arena template id; the removed task's reference transfers to the
    /// caller, who must release it or hand it to a retry slot.
    tid: u32,
    /// Former index of a task swap-moved into the freed slot, if any.
    moved: Option<usize>,
}

/// Version stamp carried by every [`EngineSnapshot`]; bumped when the
/// captured state inventory changes shape.
pub const SNAPSHOT_VERSION: u32 = 1;

/// An owned, opaque copy of a live simulation's complete state, taken
/// with [`Engine::snapshot`]. Independent of the source engine's
/// lifetime (it owns its own `SimConfig` and job runs) and `Send + Sync`,
/// so one snapshot can be shared across a worker pool and forked once
/// per candidate plan ([`crate::par::run_indexed`]).
///
/// Captured: the clock, the SoA task table and template arena, the
/// completion and wake heaps, the `ShareRegistry` (flows, loads,
/// degradation scales), VM slot pools and slot heaps, per-job RNG
/// streams and uid counters, retry backlog, fault cursors, and every
/// determinism-relevant scalar (dispatch cursor, done-prefix watermark,
/// event/budget counters). Not captured: the observability collector —
/// each fork attaches its own (default: no-op).
pub struct EngineSnapshot {
    version: u32,
    cfg: SimConfig,
    jobs: Vec<JobRun>,
    state: Box<EngineScratch>,
    jobs_changed: bool,
    clock: f64,
    dispatch_cursor: usize,
    done_prefix: usize,
    trace: Option<Trace>,
    fault_enabled: bool,
    next_fault_event: usize,
    vm_crashes: u32,
    started: bool,
    events: u64,
    steps_done: u64,
    heap_stale_popped: u64,
    wake_entries_allocated: u64,
    dirty_drain_batches: u64,
}

impl EngineSnapshot {
    /// Format version of this snapshot.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Simulated time the snapshot was taken at.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The configuration the captured run executes under.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The captured job runs (placements, phases, progress counters).
    pub fn jobs(&self) -> &[JobRun] {
        &self.jobs
    }

    /// Restore the snapshot into `st` and return a live engine. All
    /// fork flavors funnel through here.
    fn fork_into<'s>(&'s self, collector: Collector, st: ScratchRef<'s>) -> Engine<'s> {
        Engine {
            cfg: &self.cfg,
            st,
            jobs: self.jobs.clone(),
            jobs_changed: self.jobs_changed,
            clock: self.clock,
            dispatch_cursor: self.dispatch_cursor,
            done_prefix: self.done_prefix,
            trace: self.trace.clone(),
            fault_enabled: self.fault_enabled,
            next_fault_event: self.next_fault_event,
            vm_crashes: self.vm_crashes,
            obs: SimObs::new(collector),
            started: self.started,
            events: self.events,
            steps_done: self.steps_done,
            heap_stale_popped: self.heap_stale_popped,
            wake_entries_allocated: self.wake_entries_allocated,
            dirty_drain_batches: self.dirty_drain_batches,
        }
    }

    /// Fork a fresh engine resuming from the captured state. Each fork
    /// is fully independent; the snapshot can be forked any number of
    /// times. Running a fork to completion is bit-identical to the
    /// source engine having run uninterrupted (with the same
    /// post-snapshot decisions).
    pub fn fork(&self) -> Engine<'_> {
        self.fork_into(
            Collector::noop(),
            ScratchRef::Owned(Box::new((*self.state).clone())),
        )
    }

    /// [`EngineSnapshot::fork`] with an observability collector
    /// attached.
    pub fn fork_observed(&self, collector: Collector) -> Engine<'_> {
        self.fork_into(
            collector,
            ScratchRef::Owned(Box::new((*self.state).clone())),
        )
    }

    /// [`EngineSnapshot::fork`] restoring into caller-owned scratch —
    /// the zero-allocation resume path: restoring into a scratch that
    /// previously held a same-or-larger run reuses every buffer.
    pub fn fork_with_scratch<'s>(&'s self, scratch: &'s mut EngineScratch) -> Engine<'s> {
        scratch.clone_from(&self.state);
        self.fork_into(Collector::noop(), ScratchRef::Borrowed(scratch))
    }
}

/// The simulation engine. Construct with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine<'a> {
    cfg: &'a SimConfig,
    st: ScratchRef<'a>,
    jobs: Vec<JobRun>,
    /// Set when a job reaches `Done` (re-runs dependency activation).
    jobs_changed: bool,
    clock: f64,
    dispatch_cursor: usize,
    /// Length of the prefix of `jobs` that is entirely `Done`. Jobs only
    /// move monotonically into `Done`, so this never retreats; it turns
    /// sequential-mode activation's "any earlier job unfinished?" scan
    /// into an O(1) comparison (the scan is O(done-prefix) per waiting
    /// job, which goes quadratic-in-jobs on long sequential backlogs).
    done_prefix: usize,
    trace: Option<Trace>,
    fault_enabled: bool,
    next_fault_event: usize,
    vm_crashes: u32,
    obs: SimObs,
    /// Whether start-of-run work (fault-plan validation, fault-edge
    /// wake-ups) has happened; [`Engine::run_until`] makes runs
    /// resumable, so it must happen exactly once.
    started: bool,
    /// Events processed so far, counted against the budget across
    /// [`Engine::run_until`] segments.
    events: u64,
    steps_done: u64,
    heap_stale_popped: u64,
    wake_entries_allocated: u64,
    dirty_drain_batches: u64,
}

impl<'a> Engine<'a> {
    /// Build an engine over prepared job runs. `jobs` must be ordered so
    /// that every dependency index is smaller than the dependent's index.
    pub fn new(cfg: &'a SimConfig, jobs: Vec<JobRun>) -> Engine<'a> {
        Engine::observed(cfg, jobs, Collector::noop())
    }

    /// [`Engine::new`] with an observability collector attached. The
    /// collector only records what the engine already computes; results
    /// are bit-identical to an unobserved run.
    pub fn observed(cfg: &'a SimConfig, jobs: Vec<JobRun>, collector: Collector) -> Engine<'a> {
        let mut st = Box::new(EngineScratch::new());
        st.prepare(cfg, jobs.len());
        Engine::build(cfg, jobs, collector, ScratchRef::Owned(st))
    }

    /// [`Engine::new`] reusing caller-owned scratch state. Results are
    /// bit-identical to a fresh engine; repeated runs over the same (or a
    /// smaller) catalog do zero re-allocation
    /// ([`EngineStats::scratch_reallocs`]).
    pub fn with_scratch(
        cfg: &'a SimConfig,
        jobs: Vec<JobRun>,
        scratch: &'a mut EngineScratch,
    ) -> Engine<'a> {
        Engine::observed_with_scratch(cfg, jobs, Collector::noop(), scratch)
    }

    /// [`Engine::observed`] reusing caller-owned scratch state.
    pub fn observed_with_scratch(
        cfg: &'a SimConfig,
        jobs: Vec<JobRun>,
        collector: Collector,
        scratch: &'a mut EngineScratch,
    ) -> Engine<'a> {
        scratch.prepare(cfg, jobs.len());
        Engine::build(cfg, jobs, collector, ScratchRef::Borrowed(scratch))
    }

    fn build(
        cfg: &'a SimConfig,
        jobs: Vec<JobRun>,
        collector: Collector,
        st: ScratchRef<'a>,
    ) -> Engine<'a> {
        Engine {
            st,
            jobs,
            jobs_changed: true,
            clock: 0.0,
            dispatch_cursor: 0,
            done_prefix: 0,
            trace: cfg.collect_trace.then(Trace::default),
            fault_enabled: !cfg.faults.is_empty(),
            next_fault_event: 0,
            vm_crashes: 0,
            obs: SimObs::new(collector),
            started: false,
            events: 0,
            steps_done: 0,
            heap_stale_popped: 0,
            wake_entries_allocated: 0,
            dirty_drain_batches: 0,
            cfg,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.run_with_stats().map(|(report, _)| report)
    }

    /// [`Engine::run`], also returning execution statistics (step count,
    /// for events/sec benchmarking, plus heap/allocation health
    /// counters).
    pub fn run_with_stats(self) -> Result<(SimReport, EngineStats), SimError> {
        self.finish()
    }

    /// Start-of-run work, exactly once per engine (or fork) regardless of
    /// how the run is segmented into [`Engine::run_until`] calls.
    fn ensure_started(&mut self) -> Result<(), SimError> {
        if self.started {
            return Ok(());
        }
        if let Err(reason) = self.cfg.faults.validate(self.cfg.nvm) {
            return Err(SimError::InvalidFaultPlan { reason });
        }
        // Every scheduled fault event is a wake-up the clock must land on.
        for k in 0..self.st.fault_events.len() {
            let at = self.st.fault_events[k].at;
            self.push_wake(at);
        }
        self.started = true;
        Ok(())
    }

    /// Count one event against the budget.
    #[inline]
    fn bump_events(&mut self) -> Result<(), SimError> {
        self.events += 1;
        if self.events > self.cfg.event_budget {
            return Err(self.budget_error(self.events));
        }
        Ok(())
    }

    /// One full scheduling round: fault edges, job activation, retry and
    /// fresh dispatch, speculation, then a single clock advance. Returns
    /// `true` once every job is `Done`. This is the engine's atomic unit
    /// with respect to snapshot/fork — decision state such as the
    /// dispatch cursor (which rotates once per round even with nothing to
    /// dispatch) is never captured mid-update, so a run segmented at any
    /// round boundary is bit-identical to an uninterrupted one.
    fn step_once(&mut self) -> Result<bool, SimError> {
        self.process_fault_events();
        if self.jobs_changed {
            self.jobs_changed = false;
            self.activate_ready_jobs();
        }
        self.dispatch_retries();
        self.dispatch();
        self.speculate()?;
        if self.st.table.is_empty() {
            if self.jobs.iter().all(|j| j.phase == JobPhase::Done) {
                return Ok(true);
            }
            // No runnable work, but a retry backoff or a scheduled
            // fault event (e.g. a VM recovery) may unblock us.
            if let Some(wake) = self.next_wake() {
                self.clock = wake;
                self.bump_events()?;
                return Ok(false);
            }
            return Err(self.stalled_error());
        }
        self.step()?;
        self.bump_events()?;
        Ok(false)
    }

    /// Advance the simulation until the clock reaches `horizon` (the
    /// round that crosses it completes in full) or the workload
    /// finishes, whichever comes first. The engine stays live either
    /// way: snapshot it, fork candidates, keep running. Event budget
    /// and error semantics are identical to [`Engine::run`] — a run
    /// segmented into `run_until` slices is bit-identical to an
    /// uninterrupted one.
    pub fn run_until(&mut self, horizon: f64) -> Result<RunState, SimError> {
        self.ensure_started()?;
        while self.clock < horizon {
            if self.step_once()? {
                return Ok(RunState::Done);
            }
        }
        Ok(RunState::Running)
    }

    /// Run whatever remains to completion and produce the report plus
    /// execution statistics. Counters cover the whole run, including any
    /// prior [`Engine::run_until`] segments (and, on a fork, the parent's
    /// pre-snapshot work).
    pub fn finish(mut self) -> Result<(SimReport, EngineStats), SimError> {
        self.ensure_started()?;
        while !self.step_once()? {}
        let mut metrics: Vec<JobMetrics> = self
            .jobs
            .iter()
            .map(|j| JobMetrics {
                job: j.job.id,
                submitted: Duration::from_secs(nan_zero(j.submitted)),
                started: Duration::from_secs(nan_zero(j.started)),
                finished: Duration::from_secs(nan_zero(j.finished)),
                stage_in: Duration::from_secs(j.phase_secs[0]),
                map: Duration::from_secs(j.phase_secs[1]),
                reduce: Duration::from_secs(j.phase_secs[3]),
                stage_out: Duration::from_secs(j.phase_secs[4]),
                failures: j.failures,
                retries: j.retries,
                speculations: j.speculations,
                kills: j.kills,
            })
            .collect();
        metrics.sort_by(|a, b| a.finished.secs().total_cmp(&b.finished.secs()));
        let faults = FaultSummary {
            task_failures: self.jobs.iter().map(|j| j.failures).sum(),
            retries: self.jobs.iter().map(|j| j.retries).sum(),
            speculations: self.jobs.iter().map(|j| j.speculations).sum(),
            kills: self.jobs.iter().map(|j| j.kills).sum(),
            vm_crashes: self.vm_crashes,
        };
        let report = SimReport {
            jobs: metrics,
            makespan: Duration::from_secs(self.clock),
            faults,
            trace: self.trace,
        };
        let stats = EngineStats {
            steps: self.events,
            heap_stale_popped: self.heap_stale_popped,
            wake_entries_allocated: self.wake_entries_allocated,
            dirty_drain_batches: self.dirty_drain_batches,
            scratch_reallocs: self.st.reallocs,
        };
        Ok((report, stats))
    }

    // ---- snapshot / fork ----

    /// Capture the complete simulation state — clock, task table, heaps,
    /// share registry, slot pools, per-job RNG streams, fault cursors —
    /// as an owned, engine-lifetime-independent [`EngineSnapshot`]. Cost
    /// is O(live state). The engine keeps running; snapshot at a replan
    /// point, fork one candidate per plan, and keep the live run as the
    /// incumbent.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            jobs: self.jobs.clone(),
            state: Box::new((*self.st).clone()),
            jobs_changed: self.jobs_changed,
            clock: self.clock,
            dispatch_cursor: self.dispatch_cursor,
            done_prefix: self.done_prefix,
            trace: self.trace.clone(),
            fault_enabled: self.fault_enabled,
            next_fault_event: self.next_fault_event,
            vm_crashes: self.vm_crashes,
            started: self.started,
            events: self.events,
            steps_done: self.steps_done,
            heap_stale_popped: self.heap_stale_popped,
            wake_entries_allocated: self.wake_entries_allocated,
            dirty_drain_batches: self.dirty_drain_batches,
        }
    }

    /// Fork an independent engine continuing from this one's current
    /// state (shorthand for `snapshot` + fork when the snapshot itself
    /// is not needed). The fork owns its state; running it does not
    /// perturb the original.
    pub fn fork(&self) -> Engine<'a> {
        Engine {
            cfg: self.cfg,
            st: ScratchRef::Owned(Box::new((*self.st).clone())),
            jobs: self.jobs.clone(),
            jobs_changed: self.jobs_changed,
            clock: self.clock,
            dispatch_cursor: self.dispatch_cursor,
            done_prefix: self.done_prefix,
            trace: self.trace.clone(),
            fault_enabled: self.fault_enabled,
            next_fault_event: self.next_fault_event,
            vm_crashes: self.vm_crashes,
            obs: SimObs::new(self.obs.col.clone()),
            started: self.started,
            events: self.events,
            steps_done: self.steps_done,
            heap_stale_popped: self.heap_stale_popped,
            wake_entries_allocated: self.wake_entries_allocated,
            dirty_drain_batches: self.dirty_drain_batches,
        }
    }

    /// Current simulated time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// The engine's job runs (placements, phases, progress counters).
    pub fn jobs(&self) -> &[JobRun] {
        &self.jobs
    }

    /// Swap the placement of a still-[`JobPhase::Waiting`] job — the
    /// what-if lever for candidate-plan scoring on a fork. Waiting jobs
    /// have generated no task templates yet, so the swap is exact: the
    /// fork behaves as if the job had been prepared with this placement
    /// from the start. Jobs past `Waiting` have work derived from their
    /// old placement in flight and cannot be redirected.
    pub fn set_placement(
        &mut self,
        job: usize,
        placement: crate::placement::JobPlacement,
    ) -> Result<(), SimError> {
        if self.jobs[job].phase != JobPhase::Waiting {
            return Err(SimError::PlacementLocked {
                job: self.jobs[job].job.id.0,
                phase: self.jobs[job].phase.name(),
            });
        }
        self.jobs[job].placement = placement;
        Ok(())
    }

    fn budget_error(&self, steps: u64) -> SimError {
        SimError::EventBudgetExhausted {
            at_secs: self.clock,
            steps,
            active_tasks: self.st.table.len(),
            active_jobs: self
                .jobs
                .iter()
                .filter(|j| j.phase != JobPhase::Done)
                .count(),
        }
    }

    // ---- incremental bookkeeping ----

    /// Set (or re-key) task `idx`'s milestone to `time`, recording `rate`
    /// as the rate it will stream at until then.
    fn schedule(&mut self, idx: usize, time: f64, rate: f64) {
        let st = &mut *self.st;
        st.table.rate[idx] = rate;
        st.table.predicted[idx] = time;
        st.heap.set(&mut st.table.heap_pos, idx as u32, time);
    }

    /// Mark task `idx` as having no scheduled milestone (frozen, or
    /// awaiting its first rate from the next dirty flush).
    fn invalidate(&mut self, idx: usize) {
        let st = &mut *self.st;
        st.table.rate[idx] = 0.0;
        st.table.predicted[idx] = f64::INFINITY;
        st.heap.remove(&mut st.table.heap_pos, idx as u32);
    }

    fn push_wake(&mut self, time: f64) {
        self.wake_entries_allocated += 1;
        self.st.wakes.push(Wake(time));
    }

    /// Bring task `idx`'s progress up to the current clock using the rate
    /// it has streamed at since its anchor.
    fn materialize(&mut self, idx: usize) {
        let clock = self.clock;
        let t = &mut self.st.table;
        let dtime = clock - t.anchor[idx];
        t.anchor[idx] = clock;
        if dtime <= 0.0 || !t.has_stage(idx) {
            return;
        }
        if t.fixed[idx] > 0.0 {
            t.fixed[idx] -= dtime;
            if t.fixed[idx] < EPS {
                t.fixed[idx] = 0.0;
            }
        } else {
            let rate = t.rate[idx];
            if rate > 0.0 {
                t.units[idx] -= dtime * rate;
                if t.units[idx] < EPS {
                    t.units[idx] = 0.0;
                }
                // NO_DOOM (+∞) stays +∞ under subtraction: the sentinel
                // needs no branch.
                t.doom[idx] -= dtime * rate;
            }
        }
    }

    /// Register the current stage's flows (positional with
    /// [`BoundStage::flow_parts`]); marks the touched resources dirty.
    fn register_stage(&mut self, idx: usize) {
        let st = &mut *self.st;
        let res = st.table.part_res[idx];
        let w = st.table.part_w[idx];
        let mut pos = [NO_POS; 4];
        for (k, p) in pos.iter_mut().enumerate() {
            if res[k] != NO_RES {
                *p = st.reg.register_flow_at(res[k], w[k], idx as u32);
            }
        }
        st.table.flow_pos[idx] = pos;
        st.table.registered[idx] = true;
    }

    /// Unregister the current stage's flows, applying swap-remove fix-ups
    /// to whichever task's flow position moved.
    fn unregister_stage(&mut self, idx: usize) {
        let st = &mut *self.st;
        for h in 0..4 {
            let pos = st.table.flow_pos[idx][h];
            if pos == NO_POS {
                continue;
            }
            st.table.flow_pos[idx][h] = NO_POS;
            let res = st.table.part_res[idx][h];
            if let Some(m) = st.reg.unregister_flow_at(res, pos) {
                let owner = m.task as usize;
                let ores = &st.table.part_res[owner];
                let opos = &mut st.table.flow_pos[owner];
                for f in 0..4 {
                    if ores[f] == m.res && opos[f] == m.from {
                        opos[f] = m.to;
                        break;
                    }
                }
            }
        }
        st.table.registered[idx] = false;
    }

    /// Remove task `idx` (swap-remove, all columns in lockstep),
    /// returning its identity and — when another task was moved into the
    /// freed slot — that task's former index so callers can fix any
    /// reference to it. The removed task's template reference transfers
    /// to the caller.
    fn remove_task(&mut self, idx: usize) -> Removed {
        if self.st.table.registered[idx] {
            self.unregister_stage(idx);
        }
        let st = &mut *self.st;
        let t = &st.table;
        let mut r = Removed {
            job: t.job[idx] as usize,
            vm: t.vm[idx],
            slot: t.slot[idx],
            uid: t.uid[idx],
            attempt: t.attempt[idx],
            backup_of: t.backup_of[idx],
            speculated: t.speculated[idx],
            tid: t.template[idx],
            moved: None,
        };
        st.heap.remove(&mut st.table.heap_pos, idx as u32);
        let mut buf = st.table.swap_remove(idx);
        buf.clear();
        st.buf_pool.push(buf);
        let old_last = st.table.len();
        if idx < old_last {
            // The task formerly at `old_last` now lives at `idx`: re-point
            // its registered flows and rename its heap entry (the swap
            // moved its `heap_pos` along with the other columns).
            if st.table.registered[idx] {
                for h in 0..4 {
                    let pos = st.table.flow_pos[idx][h];
                    if pos != NO_POS {
                        st.reg
                            .retarget_flow_at(st.table.part_res[idx][h], pos, idx as u32);
                    }
                }
            }
            let p = st.table.heap_pos[idx];
            if p != NO_HEAP {
                st.heap.retag(&mut st.table.heap_pos, p, idx as u32);
            }
            r.moved = Some(old_last);
        }
        r
    }

    /// Drop one template-arena reference (no-op for templateless tasks).
    fn release_tid(&mut self, tid: u32) {
        if tid != NO_TEMPLATE {
            self.st.arena.release(tid);
        }
    }

    /// Push a new task into the table and schedule its first milestone.
    #[allow(clippy::too_many_arguments)]
    fn spawn_task(
        &mut self,
        job: usize,
        vm: u32,
        slot: SlotKind,
        uid: u64,
        attempt: u32,
        backup_of: u64,
        speculated: bool,
        tid: u32,
        buf: Vec<BoundStage>,
        doom: f64,
    ) {
        let clock = self.clock;
        let st = &mut *self.st;
        let idx = st.table.push(
            job, vm, slot, uid, attempt, backup_of, speculated, doom, tid, buf, clock,
        );
        let (has_stage, latent, fixed, tiny) = if st.table.nstages[idx] > 0 {
            let reg = &st.reg;
            st.table.load_stage(idx, |key| reg.res_index(key));
            (
                true,
                st.table.fixed[idx] > 0.0,
                st.table.fixed[idx],
                st.table.units[idx] <= EPS,
            )
        } else {
            (false, false, 0.0, true)
        };
        if !has_stage || (!latent && tiny) {
            // Nothing (or nothing measurable) to do: due immediately.
            self.schedule(idx, clock, 0.0);
        } else if latent {
            self.schedule(idx, clock + fixed, 0.0);
        } else {
            // Streaming: rate and milestone arrive at the next dirty
            // flush, triggered by this very registration.
            self.register_stage(idx);
            self.invalidate(idx);
        }
    }

    /// Recompute every task whose resources changed since the last flush.
    /// One drain covers all resources dirtied in the current clock
    /// advance. Returns the stall error when a frozen task has no future
    /// wake-up.
    fn flush_dirty(&mut self) -> Result<(), SimError> {
        if !self.st.reg.has_dirty() {
            return Ok(());
        }
        self.dirty_drain_batches += 1;
        {
            let EngineScratch {
                reg,
                table,
                dirty_tasks,
                ..
            } = &mut *self.st;
            reg.drain_dirty(|t| {
                let flag = &mut table.dirty[t as usize];
                if !*flag {
                    *flag = true;
                    dirty_tasks.push(t);
                }
            });
        }
        let wake_exists = self.next_wake().is_some();
        let mut k = 0;
        while k < self.st.dirty_tasks.len() {
            let i = self.st.dirty_tasks[k] as usize;
            self.st.table.dirty[i] = false;
            self.refresh_task(i, wake_exists)?;
            k += 1;
        }
        self.st.dirty_tasks.clear();
        Ok(())
    }

    /// Recompute task `i`'s rate from the precomputed resource-index
    /// mirror; if unchanged, its heap entry is already exact and nothing
    /// further happens. Otherwise materialize and re-schedule.
    fn refresh_task(&mut self, i: usize, wake_exists: bool) -> Result<(), SimError> {
        // Same f64::min sequence as BoundStage::rate (cap, then read,
        // write, net, global) — bit-identical by construction.
        let rate = {
            let st = &*self.st;
            let res = &st.table.part_res[i];
            let mut rate = st.table.cap[i];
            for &r in res.iter() {
                if r != NO_RES {
                    rate = rate.min(st.reg.unit_rate_at(r));
                }
            }
            // Fast path: a registered mid-stream task whose rate did not
            // change keeps its milestone — skipping the re-materialize
            // avoids both the float churn and a redundant heap push.
            if rate > 0.0
                && rate == st.table.rate[i]
                && st.table.registered[i]
                && st.table.predicted[i].is_finite()
            {
                return Ok(());
            }
            rate
        };
        self.materialize(i);
        let (has_stage, fixed, units, doom) = {
            let t = &self.st.table;
            if !t.has_stage(i) {
                return Ok(()); // stageless; already scheduled due-now
            }
            (true, t.fixed[i], t.units[i], t.doom[i])
        };
        debug_assert!(has_stage);
        if fixed > 0.0 {
            self.schedule(i, self.clock + fixed, 0.0);
            return Ok(());
        }
        if units <= EPS {
            self.schedule(i, self.clock, 0.0);
            return Ok(());
        }
        if rate <= 0.0 || rate.is_nan() {
            // A fully-degraded tier (e.g. a transient outage window with
            // multiplier 0) freezes the task; a scheduled fault edge or
            // retry wake-up may restore its bandwidth, so only a stall
            // with no such future event is an error.
            if !wake_exists {
                let t = &self.st.table;
                let job = t.job[i] as usize;
                return Err(SimError::Stalled {
                    at_secs: self.clock,
                    job: Some(self.jobs[job].job.id.0),
                    phase: Some(self.jobs[job].phase.name()),
                    tier: t.bound_stage(i).and_then(stage_tier),
                });
            }
            self.invalidate(i);
            return Ok(());
        }
        let mut dt = units / rate;
        // NO_DOOM (+∞) makes the clamp a no-op without a branch.
        dt = dt.min(doom.max(0.0) / rate);
        self.schedule(i, self.clock + dt, rate);
        Ok(())
    }

    fn push_affected(&mut self, job: usize) {
        let st = &mut *self.st;
        if !st.affected_flags[job] {
            st.affected_flags[job] = true;
            st.affected_jobs.push(job as u32);
        }
    }

    // ---- job lifecycle ----

    /// Move `Waiting` jobs whose dependencies are done into their first
    /// working phase, respecting the concurrency mode. Only called when a
    /// job reached `Done` since the last check (dependency/sequencing
    /// conditions cannot change otherwise).
    fn activate_ready_jobs(&mut self) {
        for i in 0..self.jobs.len() {
            if self.jobs[i].phase != JobPhase::Waiting {
                continue;
            }
            let deps_done = self.jobs[i]
                .deps
                .iter()
                .all(|&d| self.jobs[d].phase == JobPhase::Done);
            if !deps_done {
                continue;
            }
            if self.cfg.concurrency == Concurrency::Sequential {
                // Only the earliest unfinished job may start: advance the
                // watermark over the done prefix (covers jobs that went
                // straight to `Done` earlier in this same pass), then the
                // original "any earlier job unfinished?" scan collapses
                // to one comparison.
                while self.done_prefix < i && self.jobs[self.done_prefix].phase == JobPhase::Done {
                    self.done_prefix += 1;
                }
                if self.done_prefix < i {
                    continue;
                }
            }
            let job = &mut self.jobs[i];
            job.submitted = self.clock;
            let phase = job.advance_phase(self.clock, self.cfg);
            if phase != JobPhase::Done && !self.jobs[i].pending.is_empty() {
                self.st.front_slot[i] = self.jobs[i].pending.front().expect("nonempty").slot;
                pending_insert(&mut self.st.pending_jobs, i);
            }
            if self.obs.col.enabled() {
                let name = self.jobs[i].job.app.name().to_string();
                self.obs.col.emit(
                    self.clock,
                    EventBody::JobStart {
                        job: i as u32,
                        name,
                    },
                );
                self.emit_phase(i, phase);
            }
        }
    }

    /// Emit the trace edge for job `i` entering `phase` (including the
    /// terminal `Done`, which closes the job span).
    fn emit_phase(&self, i: usize, phase: JobPhase) {
        if !self.obs.col.enabled() {
            return;
        }
        if phase == JobPhase::Done {
            let makespan = self.jobs[i].finished - self.jobs[i].submitted;
            self.obs.col.emit(
                self.clock,
                EventBody::JobEnd {
                    job: i as u32,
                    makespan,
                },
            );
        } else {
            self.obs.col.emit(
                self.clock,
                EventBody::Phase {
                    job: i as u32,
                    phase: phase.name().to_string(),
                },
            );
        }
    }

    /// Advance the phase of every job a retire/fail/kill touched this
    /// step, once its phase fully drained. Runs at the end of [`step`] so
    /// phase edges are stamped at the advanced clock, exactly like the
    /// reference stepper's end-of-step drain scan.
    fn check_affected_jobs(&mut self) {
        let mut k = 0;
        while k < self.st.affected_jobs.len() {
            let i = self.st.affected_jobs[k] as usize;
            k += 1;
            self.st.affected_flags[i] = false;
            let job = &mut self.jobs[i];
            if job.phase == JobPhase::Waiting || job.phase == JobPhase::Done || !job.phase_drained()
            {
                continue;
            }
            let phase = job.advance_phase(self.clock, self.cfg);
            self.emit_phase(i, phase);
            if phase == JobPhase::Done {
                self.jobs_changed = true;
                pending_remove(&mut self.st.pending_jobs, i);
            } else if !self.jobs[i].pending.is_empty() {
                self.st.front_slot[i] = self.jobs[i].pending.front().expect("nonempty").slot;
                pending_insert(&mut self.st.pending_jobs, i);
            }
        }
        self.st.affected_jobs.clear();
    }

    // ---- dispatch ----

    /// Assign pending task templates to free slots. Visits only jobs with
    /// undispatched templates, in the same cursor rotation the reference
    /// stepper scans with.
    fn dispatch(&mut self) {
        let n = self.jobs.len();
        if self.st.pending_jobs.is_empty() {
            self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
            return;
        }
        {
            let st = &mut *self.st;
            st.dispatch_scratch.clear();
            let cursor = self.dispatch_cursor as u32;
            let start = st.pending_jobs.partition_point(|&j| j < cursor);
            st.dispatch_scratch
                .extend_from_slice(&st.pending_jobs[start..]);
            st.dispatch_scratch
                .extend_from_slice(&st.pending_jobs[..start]);
        }
        for k in 0..self.st.dispatch_scratch.len() {
            let i = self.st.dispatch_scratch[k] as usize;
            // Cheap pre-check on the mirror: a job whose next template
            // needs a slot kind with nothing available would launch
            // nothing — identical outcome to visiting it.
            match self.st.front_slot[i] {
                SlotKind::Map if self.st.avail_map == 0 => {
                    continue;
                }
                SlotKind::Reduce if self.st.avail_red == 0 => {
                    continue;
                }
                _ => {}
            }
            let mut launched: u32 = 0;
            while let Some(tmpl) = self.jobs[i].pending.front() {
                if matches!(self.jobs[i].phase, JobPhase::Waiting | JobPhase::Done) {
                    break;
                }
                // `avail_*` is exactly "a pick would succeed": both count
                // free slots on non-crashed VMs. The O(1) check keeps a
                // slot-saturated dispatch from touching the heaps per
                // pending job per event.
                let vm = match tmpl.slot {
                    SlotKind::Map if self.st.avail_map == 0 => None,
                    SlotKind::Reduce if self.st.avail_red == 0 => None,
                    SlotKind::Map => {
                        let st = &mut *self.st;
                        pick_slot(&mut st.slot_heap_map, &st.free_map, &st.crashed)
                    }
                    SlotKind::Reduce => {
                        let st = &mut *self.st;
                        pick_slot(&mut st.slot_heap_red, &st.free_red, &st.crashed)
                    }
                    SlotKind::Transfer => self.pick_transfer_vm(),
                };
                let Some(vm) = vm else { break };
                let tmpl = self.jobs[i].pending.pop_front().expect("peeked");
                if let Some(next) = self.jobs[i].pending.front() {
                    self.st.front_slot[i] = next.slot;
                }
                {
                    let st = &mut *self.st;
                    match tmpl.slot {
                        SlotKind::Map => {
                            st.free_map[vm] -= 1;
                            st.avail_map -= 1;
                            bump_slot_heap(&mut st.slot_heap_map, &st.free_map, vm);
                        }
                        SlotKind::Reduce => {
                            st.free_red[vm] -= 1;
                            st.avail_red -= 1;
                            bump_slot_heap(&mut st.slot_heap_red, &st.free_red, vm);
                        }
                        SlotKind::Transfer => {}
                    }
                }
                let slot = tmpl.slot;
                self.push_trace(i, vm as u32, slot, TaskEventKind::Started);
                let mut buf = bind_template(&mut self.st.buf_pool, vm as u32, &tmpl);
                let (mut uid, mut tid, mut doom) = (0u64, NO_TEMPLATE, NO_DOOM);
                if self.fault_enabled {
                    let seq = self.st.seq[i];
                    self.st.seq[i] += 1;
                    uid = ((i as u64) << 32) | u64::from(seq);
                    let plan = &self.cfg.faults;
                    let mut rng = attempt_rng(plan.seed, uid, 1);
                    doom = arm_stages_with(plan, &mut rng, tmpl.total_units(), &mut buf);
                    tid = self.st.arena.insert(tmpl);
                }
                self.spawn_task(i, vm as u32, slot, uid, 1, NO_TWIN, false, tid, buf, doom);
                self.jobs[i].active += 1;
                launched += 1;
            }
            if launched > 0 {
                self.obs.wave_tasks.record(f64::from(launched));
                if self.obs.col.enabled() {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Wave {
                            job: i as u32,
                            phase: self.jobs[i].phase.name().to_string(),
                            tasks: launched,
                        },
                    );
                }
            }
            if self.jobs[i].pending.is_empty() {
                pending_remove(&mut self.st.pending_jobs, i);
            }
        }
        self.dispatch_cursor = (self.dispatch_cursor + 1) % n.max(1);
    }

    /// Transfer streams round-robin over VMs; rotate past crashed ones.
    fn pick_transfer_vm(&self) -> Option<usize> {
        let n = self.cfg.nvm;
        let start = self.st.table.len() % n;
        (0..n)
            .map(|off| (start + off) % n)
            .find(|&vm| !self.st.crashed[vm])
    }

    /// Re-dispatch retry entries whose backoff has elapsed, slots
    /// permitting.
    fn dispatch_retries(&mut self) {
        if !self.fault_enabled || self.st.retries.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.st.retries.len() {
            if self.st.retries[i].ready_at > self.clock + EPS {
                i += 1;
                continue;
            }
            let slot = self.st.arena.get(self.st.retries[i].tid).slot;
            let vm = match slot {
                SlotKind::Map if self.st.avail_map == 0 => None,
                SlotKind::Reduce if self.st.avail_red == 0 => None,
                SlotKind::Map => {
                    let st = &mut *self.st;
                    pick_slot(&mut st.slot_heap_map, &st.free_map, &st.crashed)
                }
                SlotKind::Reduce => {
                    let st = &mut *self.st;
                    pick_slot(&mut st.slot_heap_red, &st.free_red, &st.crashed)
                }
                SlotKind::Transfer => self.pick_transfer_vm(),
            };
            let Some(vm) = vm else {
                i += 1;
                continue;
            };
            let entry = self.st.retries.remove(i);
            {
                let st = &mut *self.st;
                match slot {
                    SlotKind::Map => {
                        st.free_map[vm] -= 1;
                        st.avail_map -= 1;
                        bump_slot_heap(&mut st.slot_heap_map, &st.free_map, vm);
                    }
                    SlotKind::Reduce => {
                        st.free_red[vm] -= 1;
                        st.avail_red -= 1;
                        bump_slot_heap(&mut st.slot_heap_red, &st.free_red, vm);
                    }
                    SlotKind::Transfer => {}
                }
            }
            let job = entry.job as usize;
            self.push_trace(job, vm as u32, slot, TaskEventKind::Retried);
            let mut buf = {
                let st = &mut *self.st;
                bind_template(&mut st.buf_pool, vm as u32, st.arena.get(entry.tid))
            };
            let plan = &self.cfg.faults;
            let mut rng = attempt_rng(plan.seed, entry.uid, entry.attempt);
            let total = self.st.arena.get(entry.tid).total_units();
            let doom = arm_stages_with(plan, &mut rng, total, &mut buf);
            self.jobs[job].retries_pending -= 1;
            self.jobs[job].active += 1;
            // The retry slot's template reference transfers to the task.
            self.spawn_task(
                job,
                vm as u32,
                slot,
                entry.uid,
                entry.attempt,
                NO_TWIN,
                false,
                entry.tid,
                buf,
                doom,
            );
        }
    }

    /// Launch speculative backups for tasks streaming far below their
    /// wave's median rate (Hadoop-style speculative execution). Uses the
    /// cached per-task rates (flushed first) instead of re-registering
    /// the whole active set like the reference stepper.
    fn speculate(&mut self) -> Result<(), SimError> {
        let thr = self.cfg.faults.speculation_threshold;
        if !self.fault_enabled || thr <= 0.0 || self.st.table.is_empty() {
            return Ok(());
        }
        self.flush_dirty()?;
        {
            let st = &mut *self.st;
            let t = &st.table;
            st.spec_rates.clear();
            for i in 0..t.len() {
                let streaming = t.has_stage(i) && t.fixed[i] <= 0.0 && t.units[i] > EPS;
                st.spec_rates.push(if streaming { t.rate[i] } else { 0.0 });
            }
            st.stragglers.clear();
            for i in 0..t.len() {
                let job = t.job[i] as usize;
                if st.spec_rates[i] <= 0.0
                    || t.speculated[i]
                    || t.backup_of[i] != NO_TWIN
                    || t.slot[i] == SlotKind::Transfer
                    || !self.jobs[job].pending.is_empty()
                {
                    continue;
                }
                st.wave_scratch.clear();
                for k in 0..t.len() {
                    if t.job[k] as usize == job
                        && t.slot[k] == t.slot[i]
                        && st.spec_rates[k] > 0.0
                        && t.backup_of[k] == NO_TWIN
                    {
                        st.wave_scratch.push(st.spec_rates[k]);
                    }
                }
                if st.wave_scratch.len() < 2 {
                    continue;
                }
                st.wave_scratch.sort_by(f64::total_cmp);
                let median = st.wave_scratch[st.wave_scratch.len() / 2];
                if st.spec_rates[i] < thr * median {
                    st.stragglers.push(i);
                }
            }
        }
        for si in 0..self.st.stragglers.len() {
            let i = self.st.stragglers[si];
            let orig_vm = self.st.table.vm[i] as usize;
            let slot = self.st.table.slot[i];
            let vm = {
                let st = &mut *self.st;
                match slot {
                    SlotKind::Map => pick_slot_excluding(
                        &mut st.slot_heap_map,
                        &st.free_map,
                        &st.crashed,
                        orig_vm,
                    ),
                    SlotKind::Reduce => pick_slot_excluding(
                        &mut st.slot_heap_red,
                        &st.free_red,
                        &st.crashed,
                        orig_vm,
                    ),
                    SlotKind::Transfer => continue,
                }
            };
            let Some(vm) = vm else { continue };
            let tid = self.st.table.template[i];
            if tid == NO_TEMPLATE {
                continue;
            }
            {
                let st = &mut *self.st;
                match slot {
                    SlotKind::Map => {
                        st.free_map[vm] -= 1;
                        st.avail_map -= 1;
                        bump_slot_heap(&mut st.slot_heap_map, &st.free_map, vm);
                    }
                    SlotKind::Reduce => {
                        st.free_red[vm] -= 1;
                        st.avail_red -= 1;
                        bump_slot_heap(&mut st.slot_heap_red, &st.free_red, vm);
                    }
                    SlotKind::Transfer => {}
                }
            }
            let job = self.st.table.job[i] as usize;
            let orig_uid = self.st.table.uid[i];
            let attempt = self.st.table.attempt[i];
            self.st.table.speculated[i] = true;
            self.push_trace(job, vm as u32, slot, TaskEventKind::Speculated);
            let mut buf = {
                let st = &mut *self.st;
                st.arena.retain(tid);
                bind_template(&mut st.buf_pool, vm as u32, st.arena.get(tid))
            };
            let plan = &self.cfg.faults;
            let uid = orig_uid | BACKUP_BIT;
            let mut rng = attempt_rng(plan.seed, uid, attempt);
            let total = self.st.arena.get(tid).total_units();
            let doom = arm_stages_with(plan, &mut rng, total, &mut buf);
            self.jobs[job].speculations += 1;
            self.jobs[job].active += 1;
            self.spawn_task(
                job, vm as u32, slot, uid, attempt, orig_uid, true, tid, buf, doom,
            );
        }
        Ok(())
    }

    // ---- fault machinery ----

    /// Apply all fault-plan events due at the current clock.
    fn process_fault_events(&mut self) {
        while let Some(&ev) = self.st.fault_events.get(self.next_fault_event) {
            if ev.at > self.clock + EPS {
                break;
            }
            self.next_fault_event += 1;
            self.obs.fault_edges.inc();
            if self.obs.col.enabled() {
                let (kind, vm) = match ev.kind {
                    FaultEventKind::Crash(vm) => ("crash", vm),
                    FaultEventKind::Recover(vm) => ("recover", vm),
                    FaultEventKind::DegradationEdge => ("degradation", u32::MAX),
                };
                self.obs.col.emit(
                    self.clock,
                    EventBody::Fault {
                        kind: kind.to_string(),
                        vm,
                    },
                );
            }
            match ev.kind {
                FaultEventKind::Crash(vm) => self.crash_vm(vm as usize),
                FaultEventKind::Recover(vm) => {
                    let st = &mut *self.st;
                    let vm = vm as usize;
                    st.crashed[vm] = false;
                    st.avail_map += st.free_map[vm];
                    st.avail_red += st.free_red[vm];
                    // The VM's pre-crash heap entries were consumed as
                    // stale (or mask-invalidated); restore its presence.
                    bump_slot_heap(&mut st.slot_heap_map, &st.free_map, vm);
                    bump_slot_heap(&mut st.slot_heap_red, &st.free_red, vm);
                }
                FaultEventKind::DegradationEdge => self.apply_degradations(),
            }
        }
    }

    /// Re-derive degraded capacities from the windows active right now.
    /// The registry marks every resource whose capacity actually changes,
    /// so affected tasks are refreshed at the next flush.
    fn apply_degradations(&mut self) {
        self.st.reg.reset_scales();
        for w in &self.cfg.faults.degradations {
            if w.start_secs <= self.clock + EPS && self.clock < w.end_secs - EPS {
                self.st.reg.scale_tier(w.vm, w.tier, w.multiplier);
            }
        }
    }

    /// Take a VM offline: kill its resident tasks (re-enqueuing any
    /// without a live speculative twin) and reset its slot pools, which
    /// stay unreachable until the matching recovery event.
    fn crash_vm(&mut self, vm: usize) {
        if self.st.crashed[vm] {
            return;
        }
        self.st.crashed[vm] = true;
        self.vm_crashes += 1;
        // The VM's remaining free slots leave the available pool; its
        // pools reset to full but stay unreachable while crashed.
        self.st.avail_map -= self.st.free_map[vm];
        self.st.avail_red -= self.st.free_red[vm];
        self.st.free_map[vm] = self.cfg.vm.map_slots;
        self.st.free_red[vm] = self.cfg.vm.reduce_slots;
        let mut idx = 0;
        while idx < self.st.table.len() {
            if self.st.table.vm[idx] as usize != vm {
                idx += 1;
                continue;
            }
            let victim = self.remove_task(idx);
            let job = victim.job;
            self.jobs[job].active -= 1;
            self.jobs[job].kills += 1;
            self.push_trace(job, victim.vm, victim.slot, TaskEventKind::Killed);
            self.push_affected(job);
            if victim.speculated && self.twin_index(victim.uid, victim.backup_of).is_some() {
                // The surviving copy carries the work.
                self.release_tid(victim.tid);
                continue;
            }
            if victim.tid == NO_TEMPLATE {
                continue;
            }
            // Same attempt number: the crash was not the task's fault.
            self.jobs[job].retries += 1;
            self.jobs[job].retries_pending += 1;
            self.st.retries.push(RetrySlot {
                ready_at: self.clock,
                job: job as u32,
                uid: victim.uid,
                attempt: victim.attempt,
                tid: victim.tid,
            });
        }
    }

    /// Index of the live twin (original ↔ backup) of task `uid`.
    fn twin_index(&self, uid: u64, backup_of: u64) -> Option<usize> {
        let t = &self.st.table;
        (0..t.len()).find(|&k| backup_of == t.uid[k] || t.backup_of[k] == uid)
    }

    /// Earliest strictly-future time at which a fault event fires or a
    /// retry becomes ready.
    fn next_wake(&self) -> Option<f64> {
        let mut wake = f64::INFINITY;
        if let Some(ev) = self.st.fault_events.get(self.next_fault_event) {
            if ev.at > self.clock {
                wake = wake.min(ev.at);
            }
        }
        for r in &self.st.retries {
            if r.ready_at > self.clock {
                wake = wake.min(r.ready_at);
            }
        }
        wake.is_finite().then_some(wake)
    }

    /// Build a [`SimError::Stalled`] carrying whatever is known about the
    /// first blocked job.
    fn stalled_error(&self) -> SimError {
        let blocked = self.jobs.iter().find(|j| j.phase != JobPhase::Done);
        let (job, phase, tier) = match blocked {
            Some(j) => {
                let tier = j
                    .pending
                    .front()
                    .and_then(|t| t.stages.first())
                    .and_then(|s| s.read.map(|(t, _)| t).or(s.write.map(|(t, _)| t)))
                    .map(|t| t.name().to_string());
                (Some(j.job.id.0), Some(j.phase.name()), tier)
            }
            None => (None, None, None),
        };
        SimError::Stalled {
            at_secs: self.clock,
            job,
            phase,
            tier,
        }
    }

    /// Stall diagnosis when the heap has no milestone left but tasks
    /// remain: every survivor is frozen with no wake-up; report the first
    /// (the reference's per-step scan does the same).
    fn frozen_stall_error(&self) -> SimError {
        let t = &self.st.table;
        for i in 0..t.len() {
            if t.has_stage(i) && t.fixed[i] <= 0.0 && t.rate[i] <= 0.0 {
                let job = t.job[i] as usize;
                return SimError::Stalled {
                    at_secs: self.clock,
                    job: Some(self.jobs[job].job.id.0),
                    phase: Some(self.jobs[job].phase.name()),
                    tier: t.bound_stage(i).and_then(stage_tier),
                };
            }
        }
        self.stalled_error()
    }

    fn push_trace(&mut self, job: usize, vm: u32, slot: SlotKind, kind: TaskEventKind) {
        let id = self.jobs[job].job.id;
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TaskEvent {
                time: self.clock,
                job: id,
                vm,
                slot,
                kind,
            });
        }
        self.obs.task_counter(kind).inc();
        if self.obs.col.enabled() {
            self.obs.col.emit(
                self.clock,
                EventBody::Task {
                    job: job as u32,
                    vm,
                    kind: task_kind_label(kind).to_string(),
                },
            );
        }
    }

    fn release_slot(&mut self, vm: usize, slot: SlotKind) {
        let st = &mut *self.st;
        let live = !st.crashed[vm];
        match slot {
            SlotKind::Map => {
                st.free_map[vm] += 1;
                st.avail_map += usize::from(live);
                if live {
                    bump_slot_heap(&mut st.slot_heap_map, &st.free_map, vm);
                }
            }
            SlotKind::Reduce => {
                st.free_red[vm] += 1;
                st.avail_red += usize::from(live);
                if live {
                    bump_slot_heap(&mut st.slot_heap_red, &st.free_red, vm);
                }
            }
            SlotKind::Transfer => {}
        }
    }

    // ---- the event step ----

    /// Advance time to the next predicted milestone and process every
    /// task due there. O(affected flows), not O(active tasks).
    fn step(&mut self) -> Result<(), SimError> {
        self.flush_dirty()?;
        let task_top = self.st.heap.peek().map(|(t, _)| t);
        let wake_top = self.st.wakes.peek().map(|w| w.0);
        let t_next = match (task_top, wake_top) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return Err(self.frozen_stall_error()),
        };
        let t_next = t_next.max(self.clock);
        self.obs.steps.inc();
        self.steps_done += 1;
        if self.obs.col.enabled() && self.steps_done % CONTENTION_STRIDE == 1 {
            for tier in cast_cloud::tier::Tier::ALL {
                let (demand, capacity) = self.st.reg.tier_totals(tier);
                if demand > 0.0 {
                    self.obs.col.emit(
                        self.clock,
                        EventBody::Contention {
                            tier: tier.name().to_string(),
                            demand,
                            capacity,
                        },
                    );
                }
            }
        }
        self.clock = t_next;
        // Drain every entry due within the completion tolerance. Whether
        // a drained task actually finished is decided by materializing
        // it — a candidate with more than EPS units left is re-scheduled,
        // which reproduces the reference stepper's units-space clamp.
        {
            let EngineScratch {
                heap,
                wakes,
                due,
                table,
                ..
            } = &mut *self.st;
            due.clear();
            while let Some((time, task)) = heap.peek() {
                if time > t_next + EPS {
                    break;
                }
                heap.pop(&mut table.heap_pos);
                due.push(task);
            }
            // Wake-ups the clock has landed on are consumed; the run
            // loop's fault/retry dispatch acts on them.
            while wakes.peek().is_some_and(|w| w.0 <= t_next + EPS) {
                wakes.pop();
            }
        }
        self.process_due()?;
        self.check_affected_jobs();
        Ok(())
    }

    /// Process the due batch in ascending task-index order, mirroring the
    /// reference stepper's retire scan (including its swap-remove
    /// revisit: a due task moved into a freed slot is processed next).
    fn process_due(&mut self) -> Result<(), SimError> {
        if self.st.due.is_empty() {
            return Ok(());
        }
        self.st.due.sort_unstable();
        self.st.winners.clear();
        let mut k = 0;
        while k < self.st.due.len() {
            let idx = self.st.due[k] as usize;
            k += 1;
            if idx >= self.st.table.len() {
                continue;
            }
            if let Some(from) = self.process_due_task(idx)? {
                let st = &mut *self.st;
                if let Some(rel) = st.due[k..].iter().position(|&t| t as usize == from) {
                    let j = k + rel;
                    st.due[j] = idx as u32;
                    st.due.swap(k, j);
                }
            }
        }
        // Winners kill their twins (after the scan, like the reference).
        for wi in 0..self.st.winners.len() {
            let (uid, backup_of) = self.st.winners[wi];
            if let Some(t) = self.twin_index(uid, backup_of) {
                let loser = self.remove_task(t);
                self.release_tid(loser.tid);
                self.release_slot(loser.vm as usize, loser.slot);
                let job = loser.job;
                self.push_trace(job, loser.vm, loser.slot, TaskEventKind::Killed);
                self.jobs[job].active -= 1;
                self.jobs[job].kills += 1;
                self.push_affected(job);
            }
        }
        Ok(())
    }

    /// Handle one due task: materialize it, then fail, retire, or
    /// re-schedule it. Returns the former index of a task that was
    /// swap-moved into `idx`, if any.
    fn process_due_task(&mut self, idx: usize) -> Result<Option<usize>, SimError> {
        self.materialize(idx);
        if self.st.table.doom[idx] <= EPS {
            return self.fail_task(idx);
        }
        loop {
            let done = {
                let t = &self.st.table;
                t.has_stage(idx) && t.stage_done(idx)
            };
            if !done {
                break;
            }
            if self.st.table.registered[idx] {
                self.unregister_stage(idx);
            }
            let st = &mut *self.st;
            st.table.stage[idx] += 1;
            if st.table.has_stage(idx) {
                let reg = &st.reg;
                st.table.load_stage(idx, |key| reg.res_index(key));
            }
        }
        if !self.st.table.has_stage(idx) {
            let task = self.remove_task(idx);
            self.release_tid(task.tid);
            self.release_slot(task.vm as usize, task.slot);
            let job = task.job;
            self.push_trace(job, task.vm, task.slot, TaskEventKind::Finished);
            self.jobs[job].active -= 1;
            if task.speculated {
                self.st.winners.push((task.uid, task.backup_of));
            }
            self.push_affected(job);
            return Ok(task.moved);
        }
        // Not finished: schedule the next milestone of the (possibly new)
        // current stage.
        let (fixed, units, registered, rate, doom) = {
            let t = &self.st.table;
            (
                t.fixed[idx],
                t.units[idx],
                t.registered[idx],
                t.rate[idx],
                t.doom[idx],
            )
        };
        if fixed > 0.0 {
            let at = self.clock + fixed;
            if at > self.clock {
                self.schedule(idx, at, 0.0);
            } else {
                // The latency residue is below the clock's ulp: `clock +
                // fixed` rounds back to `clock`, so a milestone there
                // would re-pop forever with `materialize` accruing
                // `dtime == 0`. The reference stepper subtracts the exact
                // `dt` before the (rounded) clock advance and clamps to
                // zero — do the same and re-process.
                self.st.table.fixed[idx] = 0.0;
                return self.process_due_task(idx);
            }
        } else if !registered {
            // A fresh streaming stage: its rate (and milestone) arrive at
            // the next dirty flush, triggered by this registration.
            self.register_stage(idx);
            self.invalidate(idx);
        } else {
            // Still mid-stream (the candidate had > EPS units left after
            // materializing): re-schedule at the current rate.
            if rate > 0.0 {
                let mut dt = units / rate;
                dt = dt.min(doom.max(0.0) / rate);
                let at = self.clock + dt;
                if at > self.clock {
                    self.schedule(idx, at, rate);
                } else {
                    // The streaming residue is too small to advance the
                    // f64 clock (`units / rate` is below the clock's
                    // half-ulp — reachable once makespans grow past ~2^16
                    // seconds): a milestone at `at == clock` would re-pop
                    // forever with `materialize` accruing `dtime == 0`.
                    // Pay the residue down with the unrounded `dt`,
                    // exactly as the reference stepper does before its
                    // (rounded) clock advance, then re-process: the stage
                    // completes — or, when `doom` bound `dt`, the attempt
                    // fails — at the current instant.
                    let t = &mut self.st.table;
                    t.units[idx] -= dt * rate;
                    if t.units[idx] < EPS {
                        t.units[idx] = 0.0;
                    }
                    t.doom[idx] -= dt * rate;
                    return self.process_due_task(idx);
                }
            } else {
                self.invalidate(idx);
            }
        }
        Ok(None)
    }

    /// Handle a mid-stream task failure at `idx`: schedule a retry with
    /// exponential backoff, or give up on the job past the attempt
    /// budget. Returns the swap-move fix-up like [`Engine::remove_task`].
    fn fail_task(&mut self, idx: usize) -> Result<Option<usize>, SimError> {
        let task = self.remove_task(idx);
        self.release_slot(task.vm as usize, task.slot);
        let job = task.job;
        self.jobs[job].active -= 1;
        self.jobs[job].failures += 1;
        self.push_trace(job, task.vm, task.slot, TaskEventKind::Failed);
        self.push_affected(job);
        if task.speculated && self.twin_index(task.uid, task.backup_of).is_some() {
            // The surviving copy carries the work; no retry needed.
            self.release_tid(task.tid);
            return Ok(task.moved);
        }
        if task.attempt >= self.cfg.faults.max_task_attempts {
            return Err(SimError::JobFailed {
                job: self.jobs[job].job.id.0,
                attempts: task.attempt,
            });
        }
        let backoff =
            self.cfg.faults.retry_backoff_secs * f64::powi(2.0, (task.attempt - 1) as i32);
        debug_assert_ne!(task.tid, NO_TEMPLATE, "faulted task retains its template");
        self.jobs[job].retries += 1;
        self.jobs[job].retries_pending += 1;
        let ready_at = self.clock + backoff;
        if ready_at > self.clock {
            self.push_wake(ready_at);
        }
        self.st.retries.push(RetrySlot {
            ready_at,
            job: job as u32,
            uid: task.uid,
            attempt: task.attempt + 1,
            tid: task.tid,
        });
        Ok(task.moved)
    }
}

/// Bind a template's stages into a pooled buffer.
fn bind_template(
    buf_pool: &mut Vec<Vec<BoundStage>>,
    vm: u32,
    tmpl: &TaskTemplate,
) -> Vec<BoundStage> {
    let mut buf = buf_pool.pop().unwrap_or_default();
    buf.clear();
    buf.extend(tmpl.stages.iter().map(|s| bind_spec(vm, s)));
    buf
}

/// Insert job `i` into the sorted pending set (no-op if present).
#[inline]
fn pending_insert(v: &mut Vec<u32>, i: usize) {
    let i = i as u32;
    if let Err(pos) = v.binary_search(&i) {
        v.insert(pos, i);
    }
}

/// Remove job `i` from the sorted pending set (no-op if absent).
#[inline]
fn pending_remove(v: &mut Vec<u32>, i: usize) {
    if let Ok(pos) = v.binary_search(&(i as u32)) {
        v.remove(pos);
    }
}

/// Live VM with the most free slots, or `None` if none has capacity.
/// The event engine answers this from a lazy heap ([`pick_slot`]); this
/// scan remains the reference implementation and the transfer fallback.
pub(crate) fn pick_vm(free: &[usize], crashed: &[bool]) -> Option<usize> {
    free.iter()
        .enumerate()
        .filter(|&(vm, &n)| n > 0 && !crashed[vm])
        .max_by_key(|&(_, &n)| n)
        .map(|(vm, _)| vm)
}

/// Record a live VM's new free-slot count in its lazy heap. Called after
/// every count change on a non-crashed VM; the superseded entry is left
/// behind to be discarded as stale on a later pop.
#[inline]
fn bump_slot_heap(heap: &mut BinaryHeap<(u32, u32)>, free: &[usize], vm: usize) {
    let c = free[vm] as u32;
    if c > 0 {
        heap.push((c, vm as u32));
    }
}

/// Heap-backed [`pick_vm`]: discard stale tops (count out of date, or VM
/// crashed) until one matches the live state. Every live VM with free
/// slots has a current entry — [`bump_slot_heap`] maintains that — so the
/// surviving top is the true maximum, and the `(count, vm)` tuple order
/// reproduces the scan's last-max tie-break (ties go to the higher VM).
#[inline]
fn pick_slot(heap: &mut BinaryHeap<(u32, u32)>, free: &[usize], crashed: &[bool]) -> Option<usize> {
    while let Some(&(c, vm)) = heap.peek() {
        let vm = vm as usize;
        if !crashed[vm] && free[vm] as u32 == c {
            return Some(vm);
        }
        heap.pop();
    }
    None
}

/// [`pick_slot`], excluding one VM (a straggler's own host when placing
/// its speculative backup). Valid entries for the excluded VM are popped
/// past — they are duplicates of one `(count, vm)` value, so keeping a
/// single representative to push back preserves the heap invariant.
fn pick_slot_excluding(
    heap: &mut BinaryHeap<(u32, u32)>,
    free: &[usize],
    crashed: &[bool],
    orig: usize,
) -> Option<usize> {
    let mut stash = None;
    let found = loop {
        let Some(&(c, vm)) = heap.peek() else {
            break None;
        };
        let vm = vm as usize;
        if crashed[vm] || free[vm] as u32 != c {
            heap.pop();
        } else if vm == orig {
            stash = heap.pop();
        } else {
            break Some(vm);
        }
    };
    if let Some(e) = stash {
        heap.push(e);
    }
    found
}

/// The storage tier a stage streams against, for diagnostics.
pub(crate) fn stage_tier(s: &BoundStage) -> Option<String> {
    [s.read, s.write]
        .into_iter()
        .flatten()
        .find_map(|(key, _)| match key.kind {
            ResKind::Volume(t) => Some(t.name().to_string()),
            ResKind::Nic => None,
        })
}

/// Sample one attempt's fate from its private RNG: whether (and how far
/// in) it fails — returned as doom units, [`NO_DOOM`] for "will not
/// fail" — plus simulated object-store request retries inflating fixed
/// latencies in place. Deterministic in the RNG; shared by both engines
/// so fault draws stay in lockstep.
pub(crate) fn arm_stages_with(
    plan: &FaultPlan,
    rng: &mut StdRng,
    total_units: f64,
    stages: &mut [BoundStage],
) -> f64 {
    let mut doom = NO_DOOM;
    if plan.task_failure_prob > 0.0 {
        // First draw decides failure: at rate p₂ > p₁ the failing set
        // is a superset, so sweeps over intensity are coupled.
        let u: f64 = rng.gen();
        if u < plan.task_failure_prob {
            let frac: f64 = rng.gen();
            if total_units > 0.0 {
                doom = (frac * total_units).max(EPS);
            }
        }
    }
    if plan.objstore_request_failure > 0.0 {
        for s in stages.iter_mut() {
            if s.global.is_some() && s.fixed_remaining > 0.0 {
                let mut extra = 0u32;
                while extra < MAX_OBJ_RETRIES && rng.gen::<f64>() < plan.objstore_request_failure {
                    extra += 1;
                }
                // Each failed request repeats the setup latency.
                s.fixed_remaining *= 1.0 + f64::from(extra);
            }
        }
    }
    doom
}

/// [`arm_stages_with`] on a boxed [`RunningTask`] (reference stepper).
#[cfg(feature = "reference-engine")]
pub(crate) fn arm_task_with(plan: &FaultPlan, rng: &mut StdRng, task: &mut RunningTask) {
    let total = task
        .template
        .as_deref()
        .map(TaskTemplate::total_units)
        .unwrap_or(0.0);
    let doom = arm_stages_with(plan, rng, total, task.stages.make_contiguous());
    if doom.is_finite() {
        task.doom_units = Some(doom);
    }
}

/// Private RNG for one task attempt: keyed, not streamed, so runs are
/// reproducible and failure sets couple across fault intensities.
pub(crate) fn attempt_rng(seed: u64, uid: u64, attempt: u32) -> StdRng {
    let mut u = seed ^ 0x9e37_79b9_7f4a_7c15;
    u = u.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(uid);
    u = u
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt));
    StdRng::seed_from_u64(u)
}

pub(crate) fn nan_zero(x: f64) -> f64 {
    if x.is_nan() {
        0.0
    } else {
        x
    }
}

/// Convenience: ids of all jobs in the engine's table (test helper).
pub fn job_ids(jobs: &[JobRun]) -> Vec<JobId> {
    jobs.iter().map(|j| j.job.id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DegradationWindow, FaultPlan, VmCrash};
    use crate::placement::JobPlacement;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::Job;
    use cast_workload::profile::ProfileSet;

    pub(crate) fn cfg(nvm: usize) -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(500.0 * nvm as f64);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0 * nvm as f64);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), nvm, &agg).unwrap();
        c.jitter = 0.0;
        c
    }

    fn run(app: AppKind, gb: f64, tier: Tier, c: &SimConfig) -> SimReport {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run().unwrap()
    }

    pub(crate) fn try_run(
        app: AppKind,
        gb: f64,
        tier: Tier,
        c: &SimConfig,
    ) -> Result<SimReport, SimError> {
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(JobId(0), app, DatasetId(0), DataSize::from_gb(gb));
        let jr = JobRun::new(job, JobPlacement::all_on(tier), *profiles.get(app), vec![]);
        Engine::new(c, vec![jr]).run()
    }

    #[test]
    fn grep_runtime_tracks_storage_bandwidth() {
        let c = cfg(1);
        // Grep is map-I/O bound: 30 GB at ~234 MB/s (500 GB persSSD)
        // against ~97 MB/s (500 GB persHDD): HDD should be ~2.4× slower.
        let ssd = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::Grep, 30.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (1.8..3.2).contains(&ratio),
            "expected ~2.4x slowdown, got {ratio:.2} ({} vs {})",
            ssd.makespan,
            hdd.makespan
        );
    }

    #[test]
    fn grep_map_io_estimate_close_to_bandwidth_bound() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::PersSsd, &c);
        // Lower bound: 30 000 MB / 234 MB/s ≈ 128 s.
        let lb = 30_000.0 / 234.0;
        let got = r.makespan.secs();
        assert!(got >= lb * 0.95, "impossibly fast: {got} < {lb}");
        assert!(got <= lb * 1.6, "too slow: {got} vs bound {lb}");
    }

    #[test]
    fn kmeans_insensitive_to_tier() {
        let c = cfg(1);
        let ssd = run(AppKind::KMeans, 20.0, Tier::PersSsd, &c);
        let hdd = run(AppKind::KMeans, 20.0, Tier::PersHdd, &c);
        let ratio = hdd.makespan.secs() / ssd.makespan.secs();
        assert!(
            (0.9..1.2).contains(&ratio),
            "CPU-bound app should not care about tier, got {ratio:.2}"
        );
    }

    #[test]
    fn ephemeral_pays_staging() {
        let c = cfg(1);
        let r = run(AppKind::Grep, 30.0, Tier::EphSsd, &c);
        let m = &r.jobs[0];
        assert!(m.stage_in.secs() > 0.0, "must download input");
        // Grep output is tiny; upload may be near-zero but present.
        assert!(m.map.secs() > 0.0);
        // Download at 265 MB/s vs map at 733 MB/s: staging dominates.
        assert!(m.stage_in.secs() > m.map.secs());
    }

    #[test]
    fn sort_slower_than_grep_same_tier() {
        let c = cfg(1);
        let sort = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let grep = run(AppKind::Grep, 20.0, Tier::PersSsd, &c);
        assert!(
            sort.makespan.secs() > 1.5 * grep.makespan.secs(),
            "sort moves ~3-4x the bytes: {} vs {}",
            sort.makespan,
            grep.makespan
        );
    }

    #[test]
    fn more_vms_speed_up_io_bound_jobs() {
        let c1 = cfg(1);
        let c4 = cfg(4);
        let one = run(AppKind::Grep, 60.0, Tier::PersSsd, &c1);
        let four = run(AppKind::Grep, 60.0, Tier::PersSsd, &c4);
        let speedup = one.makespan.secs() / four.makespan.secs();
        assert!(
            speedup > 2.5,
            "4 VMs with 4x aggregate volume bandwidth: got {speedup:.2}x"
        );
    }

    #[test]
    fn sequential_jobs_do_not_overlap() {
        let c = cfg(1);
        let profiles = ProfileSet::defaults();
        let jobs: Vec<JobRun> = (0..2)
            .map(|i| {
                let job = Job::with_default_layout(
                    JobId(i),
                    AppKind::Grep,
                    DatasetId(i),
                    DataSize::from_gb(10.0),
                );
                JobRun::new(
                    job,
                    JobPlacement::all_on(Tier::PersSsd),
                    *profiles.get(AppKind::Grep),
                    vec![],
                )
            })
            .collect();
        let report = Engine::new(&c, jobs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn parallel_jobs_overlap_and_contend() {
        let mut c = cfg(1);
        let profiles = ProfileSet::defaults();
        let mk = |i: u32| {
            let job = Job::with_default_layout(
                JobId(i),
                AppKind::Grep,
                DatasetId(i),
                DataSize::from_gb(10.0),
            );
            JobRun::new(
                job,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            )
        };
        let seq = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        c.concurrency = Concurrency::Parallel;
        let par = Engine::new(&c, vec![mk(0), mk(1)]).run().unwrap();
        let b = par.job(JobId(1)).unwrap();
        let a = par.job(JobId(0)).unwrap();
        assert!(
            b.started.secs() < a.finished.secs(),
            "parallel mode must overlap"
        );
        // Sharing the volume: parallel makespan close to sequential (same
        // aggregate bytes through the same bottleneck).
        let ratio = par.makespan.secs() / seq.makespan.secs();
        assert!((0.8..1.25).contains(&ratio), "got {ratio}");
    }

    #[test]
    fn dependency_ordering_enforced() {
        let mut c = cfg(1);
        c.concurrency = Concurrency::Parallel;
        let profiles = ProfileSet::defaults();
        let j0 = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(10.0),
        );
        let j1 = Job::with_default_layout(
            JobId(1),
            AppKind::Grep,
            DatasetId(1),
            DataSize::from_gb(5.0),
        );
        let runs = vec![
            JobRun::new(
                j0,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![],
            ),
            JobRun::new(
                j1,
                JobPlacement::all_on(Tier::PersSsd),
                *profiles.get(AppKind::Grep),
                vec![0],
            ),
        ];
        let report = Engine::new(&c, runs).run().unwrap();
        let a = report.job(JobId(0)).unwrap();
        let b = report.job(JobId(1)).unwrap();
        assert!(b.started.secs() >= a.finished.secs() - 1e-6);
    }

    #[test]
    fn fine_grained_split_straggles() {
        // A tenant splitting 6 GB 90/10 across ephSSD/persHDD provisions a
        // minimal 100 GB HDD volume (20 MB/s) for the small slice.
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::EphSsd) = DataSize::from_gb(375.0);
        *agg.get_mut(Tier::PersHdd) = DataSize::from_gb(100.0);
        let mut c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        c.jitter = 0.0;
        let profiles = ProfileSet::defaults();
        let mk = |input: crate::placement::SplitPlacement| {
            let job = Job::with_default_layout(
                JobId(0),
                AppKind::Grep,
                DatasetId(0),
                DataSize::from_gb(6.0),
            );
            let mut p = JobPlacement::all_on(Tier::EphSsd);
            p.stage_in_from = None; // isolate the map phase effect
            p.stage_out_to = None;
            p.input = input;
            JobRun::new(job, p, *profiles.get(AppKind::Grep), vec![])
        };
        let all_eph = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::single(Tier::EphSsd))],
        )
        .run()
        .unwrap();
        let split = Engine::new(
            &c,
            vec![mk(crate::placement::SplitPlacement::split(
                Tier::EphSsd,
                0.9,
                Tier::PersHdd,
            ))],
        )
        .run()
        .unwrap();
        // Even with 90% of data on the fast tier, the slow-tier tasks
        // dominate the single map wave (Fig. 5b).
        assert!(
            split.makespan.secs() > 1.5 * all_eph.makespan.secs(),
            "{} vs {}",
            split.makespan,
            all_eph.makespan
        );
    }

    #[test]
    fn stalls_on_unprovisioned_tier() {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0);
        let c = SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 1, &agg).unwrap();
        let profiles = ProfileSet::defaults();
        let job = Job::with_default_layout(
            JobId(0),
            AppKind::Grep,
            DatasetId(0),
            DataSize::from_gb(1.0),
        );
        // persHDD has zero provisioned capacity → zero bandwidth → stall.
        let jr = JobRun::new(
            job,
            JobPlacement::all_on(Tier::PersHdd),
            *profiles.get(AppKind::Grep),
            vec![],
        );
        let err = Engine::new(&c, vec![jr]).run().unwrap_err();
        match err {
            SimError::Stalled {
                job, phase, tier, ..
            } => {
                assert_eq!(job, Some(0));
                assert_eq!(phase, Some("map"));
                assert_eq!(tier.as_deref(), Some("persHDD"));
            }
            other => panic!("expected enriched stall, got {other:?}"),
        }
    }

    // ---- fault injection & recovery ----

    #[test]
    fn empty_plan_is_bit_identical_regardless_of_seed() {
        let c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        let mut reseeded = cfg(1);
        reseeded.faults = FaultPlan {
            seed: 0xdead_beef,
            retry_backoff_secs: 99.0,
            ..FaultPlan::default()
        };
        assert!(reseeded.faults.is_empty());
        let again = run(AppKind::Grep, 10.0, Tier::PersSsd, &reseeded);
        assert_eq!(baseline, again);
        assert!(again.faults.is_quiet());
    }

    #[test]
    fn deterministic_under_faults() {
        let mut c = cfg(2);
        c.faults = FaultPlan::with_task_failures(0.3);
        c.collect_trace = true;
        let a = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        let b = run(AppKind::Sort, 10.0, Tier::PersSsd, &c);
        assert_eq!(a, b, "same plan + seed must be bit-identical");
        assert!(a.faults.task_failures > 0, "p=0.3 should hit some tasks");
    }

    #[test]
    fn task_failures_are_retried_to_completion() {
        let mut c = cfg(1);
        c.collect_trace = true;
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            // High failure rate with a budget deep enough that no task
            // plausibly exhausts it (0.5⁸ ≈ 0.4 %).
            max_task_attempts: 8,
            ..FaultPlan::with_task_failures(0.5)
        };
        let faulted = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(faulted.faults.task_failures > 0);
        // Without crashes or speculation every failure schedules a retry.
        assert_eq!(faulted.faults.retries, faulted.faults.task_failures);
        assert!(
            faulted.makespan.secs() > baseline.makespan.secs(),
            "re-executed work must cost time: {} vs {}",
            faulted.makespan,
            baseline.makespan
        );
        let trace = faulted.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Failed),
            faulted.faults.task_failures as usize
        );
        assert_eq!(
            trace.count(TaskEventKind::Retried),
            faulted.faults.retries as usize
        );
        // Per-job counters roll up to the summary.
        let m = &faulted.jobs[0];
        assert_eq!(m.failures, faulted.faults.task_failures);
        assert_eq!(m.retries, faulted.faults.retries);
    }

    #[test]
    fn failure_sweep_trends_upward() {
        // Strict monotonicity is not a theorem under bandwidth sharing (a
        // failed task frees its share mid-wave, and its retry later runs
        // uncontended), so allow sub-percent dips while requiring the
        // overall degradation trend.
        let mut makespans = Vec::new();
        for p in [0.0, 0.1, 0.3, 0.6] {
            let mut c = cfg(1);
            c.faults = FaultPlan {
                max_task_attempts: 16,
                ..FaultPlan::with_task_failures(p)
            };
            makespans.push(run(AppKind::Grep, 5.0, Tier::PersSsd, &c).makespan.secs());
        }
        for w in makespans.windows(2) {
            assert!(w[1] >= 0.99 * w[0], "big makespan drop: {makespans:?}");
        }
        assert!(
            makespans[3] > 1.1 * makespans[0],
            "60% failures must cost real time: {makespans:?}"
        );
    }

    #[test]
    fn vm_crash_finishes_via_reexecution() {
        let mut c = cfg(2);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.collect_trace = true;
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: None, // never recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c)
            .expect("crash must be survivable, not a stall");
        assert_eq!(r.faults.vm_crashes, 1);
        assert!(r.faults.kills > 0, "resident tasks must be killed");
        assert!(r.faults.retries > 0, "killed tasks must be re-executed");
        let trace = r.trace.as_ref().unwrap();
        assert!(trace.count(TaskEventKind::Killed) > 0);
        assert!(trace.count(TaskEventKind::Retried) > 0);
        assert!(
            r.makespan.secs() > baseline.makespan.secs(),
            "half the cluster is gone: {} vs {}",
            r.makespan,
            baseline.makespan
        );
        // Nothing ran on the dead VM after the crash.
        assert!(trace
            .events
            .iter()
            .filter(|e| e.time > 5.0 + 1e-9 && e.kind.opens())
            .all(|e| e.vm != 0));
    }

    #[test]
    fn crashed_vm_recovery_restores_capacity() {
        let mut c = cfg(2);
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 5.0,
                down_secs: Some(20.0),
            }],
            ..FaultPlan::default()
        };
        c.collect_trace = true;
        let r = run(AppKind::Sort, 20.0, Tier::PersSsd, &c);
        let trace = r.trace.as_ref().unwrap();
        // Work lands on VM 0 again after recovery at t=25.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.vm == 0 && e.time > 25.0 && e.kind.opens()),
            "recovered VM must take tasks again"
        );
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_job() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            task_failure_prob: 1.0,
            max_task_attempts: 2,
            retry_backoff_secs: 0.5,
            ..FaultPlan::default()
        };
        let err = try_run(AppKind::Grep, 2.0, Tier::PersSsd, &c).unwrap_err();
        assert_eq!(
            err,
            SimError::JobFailed {
                job: 0,
                attempts: 2
            }
        );
    }

    #[test]
    fn degradation_window_slows_the_job() {
        let mut c = cfg(1);
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let degraded = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert!(
            degraded.makespan.secs() > 1.5 * baseline.makespan.secs(),
            "quartered volume bandwidth must hurt an I/O-bound job: {} vs {}",
            degraded.makespan,
            baseline.makespan
        );
        // A window that closes before the run ends costs less than the
        // permanent one.
        let mut brief = cfg(1);
        brief.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 10.0,
                multiplier: 0.25,
            }],
            ..FaultPlan::default()
        };
        let transient = run(AppKind::Grep, 10.0, Tier::PersSsd, &brief);
        assert!(transient.makespan.secs() < degraded.makespan.secs());
        assert!(transient.makespan.secs() > baseline.makespan.secs() - 1e-6);
    }

    #[test]
    fn speculation_rescues_degraded_vm_stragglers() {
        // VM 0's volume crawls at 5% speed; tasks placed there straggle.
        let slow_vm = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: Some(0),
                tier: Tier::PersSsd,
                start_secs: 0.0,
                end_secs: 1e9,
                multiplier: 0.05,
            }],
            ..FaultPlan::default()
        };
        let mut without = cfg(2);
        without.faults = slow_vm.clone();
        let stuck = run(AppKind::Grep, 2.0, Tier::PersSsd, &without);
        let mut with = cfg(2);
        with.collect_trace = true;
        with.faults = FaultPlan {
            speculation_threshold: 0.5,
            ..slow_vm
        };
        let rescued = run(AppKind::Grep, 2.0, Tier::PersSsd, &with);
        assert!(rescued.faults.speculations > 0, "backups must launch");
        assert!(rescued.faults.kills > 0, "a race must have a loser");
        assert!(
            rescued.makespan.secs() < 0.9 * stuck.makespan.secs(),
            "speculation must beat waiting on the slow VM: {} vs {}",
            rescued.makespan,
            stuck.makespan
        );
        let trace = rescued.trace.as_ref().unwrap();
        assert_eq!(
            trace.count(TaskEventKind::Speculated),
            rescued.faults.speculations as usize
        );
    }

    #[test]
    fn vm_crash_at_time_zero_runs_entirely_on_survivors() {
        // The crash edge fires before any task is placed: nothing to
        // kill, but the dead VM must never take work and the job must
        // still finish on the survivor.
        let mut c = cfg(2);
        c.collect_trace = true;
        c.faults = FaultPlan {
            vm_crashes: vec![VmCrash {
                vm: 0,
                at_secs: 0.0,
                down_secs: None,
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c)
            .expect("a boot-time crash must be survivable");
        assert_eq!(r.faults.vm_crashes, 1);
        assert_eq!(r.faults.kills, 0, "no resident tasks to kill at t=0");
        let trace = r.trace.as_ref().unwrap();
        assert!(
            trace
                .events
                .iter()
                .filter(|e| e.kind.opens())
                .all(|e| e.vm != 0),
            "dead-from-boot VM must never open a task"
        );
        // One VM doing all the work is slower than two.
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &cfg(2));
        assert!(r.makespan.secs() > baseline.makespan.secs());
    }

    #[test]
    fn zero_duration_degradation_window_is_inert() {
        // start == end validates (the plan may be machine-generated) but
        // is never active: both edges fire at the same instant and the
        // active-window predicate is empty between them.
        let baseline = run(AppKind::Grep, 10.0, Tier::PersSsd, &cfg(1));
        let mut c = cfg(1);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 5.0,
                end_secs: 5.0,
                multiplier: 0.0,
            }],
            ..FaultPlan::default()
        };
        let r = run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        assert_eq!(
            r.makespan.secs(),
            baseline.makespan.secs(),
            "a zero-duration window must not perturb the schedule"
        );
    }

    #[test]
    fn overlapping_same_tier_windows_compose_multiplicatively() {
        let mk = |windows: Vec<DegradationWindow>| {
            let mut c = cfg(1);
            c.faults = FaultPlan {
                degradations: windows,
                ..FaultPlan::default()
            };
            run(AppKind::Grep, 10.0, Tier::PersSsd, &c).makespan.secs()
        };
        let half = |mult: f64| DegradationWindow {
            vm: None,
            tier: Tier::PersSsd,
            start_secs: 0.0,
            end_secs: 1e9,
            multiplier: mult,
        };
        let single = mk(vec![half(0.5)]);
        let overlapped = mk(vec![half(0.5), half(0.5)]);
        let quartered = mk(vec![half(0.25)]);
        assert!(
            overlapped > single,
            "two overlapping windows must hurt more than one: {overlapped} vs {single}"
        );
        // Overlap composes multiplicatively: 0.5 × 0.5 ≡ one 0.25 window.
        assert!(
            (overlapped - quartered).abs() <= 1e-9 * quartered,
            "0.5 x 0.5 overlap must equal a single 0.25 window: \
             {overlapped} vs {quartered}"
        );
    }
}

#[cfg(test)]
mod review_probe {
    use super::tests::*;
    use crate::fault::{DegradationWindow, FaultPlan};
    use cast_cloud::tier::Tier;
    use cast_workload::apps::AppKind;

    #[test]
    fn transient_full_outage_window() {
        let mut c = cfg(1);
        c.faults = FaultPlan {
            degradations: vec![DegradationWindow {
                vm: None,
                tier: Tier::PersSsd,
                start_secs: 5.0,
                end_secs: 10.0,
                multiplier: 0.0, // full outage for 5s, then recovers
            }],
            ..FaultPlan::default()
        };
        let r = try_run(AppKind::Grep, 10.0, Tier::PersSsd, &c);
        eprintln!(
            "RESULT: {:?}",
            r.as_ref().map(|x| x.makespan).map_err(|e| e.to_string())
        );
        assert!(r.is_ok(), "transient outage should be survivable");
    }
}

#[cfg(test)]
mod scratch_tests {
    use super::tests::cfg;
    use super::*;
    use crate::fault::{FaultPlan, VmCrash};
    use crate::placement::JobPlacement;
    use cast_cloud::tier::Tier;
    use cast_cloud::units::DataSize;
    use cast_workload::apps::AppKind;
    use cast_workload::dataset::DatasetId;
    use cast_workload::job::Job;
    use cast_workload::profile::ProfileSet;

    fn jobs(n: usize) -> Vec<JobRun> {
        let profiles = ProfileSet::defaults();
        (0..n)
            .map(|i| {
                let app = if i % 2 == 0 {
                    AppKind::Grep
                } else {
                    AppKind::Sort
                };
                let job = Job::with_default_layout(
                    JobId(i as u32),
                    app,
                    DatasetId(i as u32),
                    DataSize::from_gb(5.0 + i as f64),
                );
                JobRun::new(
                    job,
                    JobPlacement::all_on(Tier::PersSsd),
                    *profiles.get(app),
                    vec![],
                )
            })
            .collect()
    }

    fn faulty_cfg(nvm: usize) -> SimConfig {
        let mut c = cfg(nvm);
        c.faults = FaultPlan {
            seed: 7,
            task_failure_prob: 0.08,
            vm_crashes: vec![VmCrash {
                vm: 1,
                at_secs: 40.0,
                down_secs: Some(60.0),
            }],
            ..FaultPlan::default()
        };
        c
    }

    #[test]
    fn scratch_reuse_does_zero_reallocation() {
        let c = cfg(4);
        let mut scratch = EngineScratch::new();
        let (first, s1) = Engine::with_scratch(&c, jobs(6), &mut scratch)
            .run_with_stats()
            .unwrap();
        assert!(s1.scratch_reallocs > 0, "first run must size the scratch");
        for _ in 0..3 {
            let (again, s2) = Engine::with_scratch(&c, jobs(6), &mut scratch)
                .run_with_stats()
                .unwrap();
            assert_eq!(
                s2.scratch_reallocs, 0,
                "reused scratch over the same catalog must not re-allocate"
            );
            assert_eq!(first.makespan, again.makespan);
            assert_eq!(s1.steps, s2.steps);
        }
    }

    #[test]
    fn scratch_runs_are_bit_identical_to_owned() {
        for c in [cfg(4), faulty_cfg(4)] {
            let (owned, so) = Engine::new(&c, jobs(5)).run_with_stats().unwrap();
            let mut scratch = EngineScratch::new();
            // Prime the scratch with a different-shaped run first.
            let _ = Engine::with_scratch(&cfg(2), jobs(2), &mut scratch)
                .run_with_stats()
                .unwrap();
            let (reused, sr) = Engine::with_scratch(&c, jobs(5), &mut scratch)
                .run_with_stats()
                .unwrap();
            assert_eq!(
                owned.makespan.secs().to_bits(),
                reused.makespan.secs().to_bits()
            );
            assert_eq!(owned.jobs.len(), reused.jobs.len());
            for (a, b) in owned.jobs.iter().zip(reused.jobs.iter()) {
                assert_eq!(a.finished.secs().to_bits(), b.finished.secs().to_bits());
                assert_eq!(a.failures, b.failures);
                assert_eq!(a.retries, b.retries);
            }
            assert_eq!(so.steps, sr.steps);
            assert_eq!(so.heap_stale_popped, sr.heap_stale_popped);
            assert_eq!(so.dirty_drain_batches, sr.dirty_drain_batches);
        }
    }

    #[test]
    fn engine_stats_counters_are_populated() {
        let c = faulty_cfg(4);
        let (_, stats) = Engine::new(&c, jobs(6)).run_with_stats().unwrap();
        assert!(stats.steps > 0);
        assert!(
            stats.dirty_drain_batches > 0,
            "streaming stages must trigger dirty drains"
        );
        assert!(
            stats.dirty_drain_batches <= stats.steps + 1,
            "drains are batched per clock advance: {} vs {} steps",
            stats.dirty_drain_batches,
            stats.steps
        );
        assert!(
            stats.wake_entries_allocated > 0,
            "fault plan events must allocate wake entries"
        );
    }
}
