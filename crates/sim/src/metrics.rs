//! Simulation results: per-job phase timings and cluster-level aggregates.

use cast_cloud::units::Duration;
use cast_workload::job::JobId;
use serde::{Deserialize, Serialize};

/// Timing record for one simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// The job this record describes.
    pub job: JobId,
    /// Simulated time the job became runnable.
    pub submitted: Duration,
    /// Simulated time the first task started.
    pub started: Duration,
    /// Simulated time the last task (including stage-out) finished.
    pub finished: Duration,
    /// Wall time of the input download / cross-tier transfer, zero if none.
    pub stage_in: Duration,
    /// Wall time of the map phase.
    pub map: Duration,
    /// Wall time of the shuffle+reduce phase.
    pub reduce: Duration,
    /// Wall time of the output upload, zero if none.
    pub stage_out: Duration,
    /// Task attempts of this job that failed mid-run (fault injection).
    pub failures: u32,
    /// Retry attempts scheduled for this job's failed or killed tasks.
    pub retries: u32,
    /// Speculative backup copies launched for this job's stragglers.
    pub speculations: u32,
    /// Tasks of this job killed by VM crashes or lost speculative races.
    pub kills: u32,
}

impl JobMetrics {
    /// Total runtime from first task start to completion.
    pub fn runtime(&self) -> Duration {
        self.finished - self.started
    }

    /// "Data processing" time in the Fig. 1 sense: everything except
    /// staging transfers.
    pub fn processing(&self) -> Duration {
        self.map + self.reduce
    }
}

/// Cluster-wide fault and recovery totals for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Task attempts that failed mid-run.
    pub task_failures: u32,
    /// Retry attempts scheduled (failed tasks plus crash victims).
    pub retries: u32,
    /// Speculative backup copies launched.
    pub speculations: u32,
    /// Tasks killed by VM crashes or lost speculative races.
    pub kills: u32,
    /// VM crash events that took effect during the run.
    pub vm_crashes: u32,
}

impl FaultSummary {
    /// Whether nothing fault-related happened.
    pub fn is_quiet(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// Result of simulating a workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Per-job metrics in completion order.
    pub jobs: Vec<JobMetrics>,
    /// Simulated time at which the last job finished.
    pub makespan: Duration,
    /// Fault-injection totals (all-zero for fault-free runs).
    pub faults: FaultSummary,
    /// Per-task execution trace, when
    /// [`crate::config::SimConfig::collect_trace`] was set.
    pub trace: Option<crate::trace::Trace>,
}

impl SimReport {
    /// Metrics for one job.
    pub fn job(&self, id: JobId) -> Option<&JobMetrics> {
        self.jobs.iter().find(|m| m.job == id)
    }

    /// Sum of all job runtimes (the `T = Σ` of Eq. 4 when jobs run
    /// sequentially).
    pub fn total_runtime(&self) -> Duration {
        self.jobs.iter().map(|m| m.runtime()).sum()
    }

    /// Makespan per workflow: completion time of the latest member job.
    pub fn workflow_completion(&self, members: &[JobId]) -> Option<Duration> {
        let start = members
            .iter()
            .map(|id| self.job(*id).map(|m| m.started))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .fold(Duration::INFINITY, Duration::min);
        let end = members
            .iter()
            .map(|id| self.job(*id).map(|m| m.finished))
            .collect::<Option<Vec<_>>>()?
            .into_iter()
            .fold(Duration::ZERO, Duration::max);
        Some(end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(id: u32, start: f64, end: f64) -> JobMetrics {
        JobMetrics {
            job: JobId(id),
            submitted: Duration::from_secs(start),
            started: Duration::from_secs(start),
            finished: Duration::from_secs(end),
            stage_in: Duration::ZERO,
            map: Duration::from_secs((end - start) * 0.6),
            reduce: Duration::from_secs((end - start) * 0.4),
            stage_out: Duration::ZERO,
            failures: 0,
            retries: 0,
            speculations: 0,
            kills: 0,
        }
    }

    #[test]
    fn runtime_and_processing() {
        let m = metrics(0, 10.0, 110.0);
        assert!((m.runtime().secs() - 100.0).abs() < 1e-9);
        assert!((m.processing().secs() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn report_totals() {
        let report = SimReport {
            jobs: vec![metrics(0, 0.0, 50.0), metrics(1, 50.0, 120.0)],
            makespan: Duration::from_secs(120.0),
            faults: FaultSummary::default(),
            trace: None,
        };
        assert!((report.total_runtime().secs() - 120.0).abs() < 1e-9);
        assert!(report.job(JobId(1)).is_some());
        assert!(report.job(JobId(9)).is_none());
    }

    #[test]
    fn workflow_completion_spans_members() {
        let report = SimReport {
            jobs: vec![metrics(0, 0.0, 50.0), metrics(1, 50.0, 120.0)],
            makespan: Duration::from_secs(120.0),
            faults: FaultSummary::default(),
            trace: None,
        };
        let wf = report.workflow_completion(&[JobId(0), JobId(1)]).unwrap();
        assert!((wf.secs() - 120.0).abs() < 1e-9);
        assert!(report.workflow_completion(&[JobId(7)]).is_none());
    }
}
