//! Data-oriented storage for the event-driven engine's hot state.
//!
//! The engine's per-task state lives here as struct-of-arrays columns
//! ([`TaskTable`]) indexed by dense `u32`-sized handles, instead of a
//! `Vec<RunningTask>` of pointer-rich structs. The hot loop (rate
//! refreshes, materialization, heap scheduling) touches only the few
//! columns it needs, each a contiguous array:
//!
//! * identity columns (`job`, `vm`, `slot`, `uid`, …) are written once at
//!   spawn and read on retire/fail paths;
//! * the *current-stage mirror* (`fixed`, `units`, `cap`, `part_res`,
//!   `part_w`) caches the streaming stage's remaining work and its
//!   pre-resolved resource indices, so a rate recomputation is four array
//!   reads instead of re-deriving `ResKey → index` per flow part;
//! * the incremental-scheduling columns (`rate`, `anchor`, `predicted`,
//!   `heap_pos`, `flow_pos`, `registered`, `dirty`) replace the old
//!   index-parallel `TaskAux` vector.
//!
//! Sentinels replace `Option` wrappers so columns stay flat primitives:
//! [`NO_RES`]/[`NO_POS`]/[`NO_TEMPLATE`] (`u32::MAX`), [`NO_TWIN`]
//! (`u64::MAX` — task uids are `(job << 32) | seq`, optionally with the
//! backup bit, and can never collide), and [`NO_DOOM`] (`+∞`, which is
//! algebraically inert: subtracting streamed units keeps it infinite and
//! the doom-clamp `min(∞ / rate)` is a no-op).
//!
//! Task templates are interned in a [`TemplateArena`]: dispatch *moves*
//! each template out of the job's pending queue into a reference-counted
//! slab slot, so retries and speculative backups share one copy by id
//! instead of cloning `Box<TaskTemplate>` per attempt. Bound-stage
//! buffers are pooled (returned on [`TaskTable::swap_remove`] and
//! [`TaskTable::clear_into`]) and reused across task lifetimes and
//! across runs, so the steady state allocates nothing.

use crate::task::{BoundStage, SlotKind, TaskTemplate};

/// Sentinel resource index: flow part absent (or zero demand).
pub(crate) const NO_RES: u32 = u32::MAX;
/// Sentinel flow position: part not currently registered.
pub(crate) const NO_POS: u32 = u32::MAX;
/// Sentinel template id (task spawned without an interned template).
pub(crate) const NO_TEMPLATE: u32 = u32::MAX;
/// Sentinel uid for "no twin": never a real task uid.
pub(crate) const NO_TWIN: u64 = u64::MAX;
/// Sentinel doom point: the attempt will not fail. `+∞` is inert under
/// the engine's doom arithmetic (`∞ − x = ∞`, `min(dt, ∞/rate) = dt`).
pub(crate) const NO_DOOM: f64 = f64::INFINITY;
/// Sentinel heap position: the task has no entry in the completion heap.
pub(crate) const NO_HEAP: u32 = u32::MAX;

/// Struct-of-arrays task state; all columns are index-parallel and
/// swap-removed in lockstep.
#[derive(Default)]
pub(crate) struct TaskTable {
    // ---- identity (written at spawn) ----
    pub job: Vec<u32>,
    pub vm: Vec<u32>,
    pub slot: Vec<SlotKind>,
    pub uid: Vec<u64>,
    pub attempt: Vec<u32>,
    /// Uid of the original this backup shadows, or [`NO_TWIN`].
    pub backup_of: Vec<u64>,
    pub speculated: Vec<bool>,
    /// Streaming units left until this attempt fails ([`NO_DOOM`] =
    /// the attempt will not fail).
    pub doom: Vec<f64>,
    /// Interned template id in the [`TemplateArena`].
    pub template: Vec<u32>,
    // ---- stage cursor ----
    /// Index of the current stage within `stage_buf`.
    pub stage: Vec<u32>,
    pub nstages: Vec<u32>,
    /// Bound stages (armed fixed latencies included), one pooled buffer
    /// per task. Only read on stage advancement and error paths; the
    /// current stage's hot fields are mirrored in the columns below.
    pub stage_buf: Vec<Vec<BoundStage>>,
    // ---- current-stage mirror (hot) ----
    pub fixed: Vec<f64>,
    pub units: Vec<f64>,
    /// Per-task rate cap of the current stage.
    pub cap: Vec<f64>,
    /// Resolved registry indices of the stage's flow parts (read, write,
    /// net, global), [`NO_RES`] where absent.
    pub part_res: Vec<[u32; 4]>,
    /// Bytes-per-unit weights matching `part_res`.
    pub part_w: Vec<[f64; 4]>,
    // ---- incremental scheduling ----
    pub rate: Vec<f64>,
    pub anchor: Vec<f64>,
    pub predicted: Vec<f64>,
    /// Slot this task's entry occupies in the completion heap, or
    /// [`NO_HEAP`]. Maintained by the heap's sift operations so re-keying
    /// and removal are positional instead of version-churned.
    pub heap_pos: Vec<u32>,
    /// Registered flow position per part, [`NO_POS`] when unregistered.
    pub flow_pos: Vec<[u32; 4]>,
    pub registered: Vec<bool>,
    /// Dedup flag for the dirty drain (false outside `flush_dirty`).
    pub dirty: Vec<bool>,
}

/// Hand-written so `clone_from` reuses every column's capacity (the
/// derive's `clone_from` falls back to clone-and-assign, which would
/// re-allocate on the snapshot/fork resume path).
impl Clone for TaskTable {
    fn clone(&self) -> Self {
        let mut t = TaskTable::default();
        t.clone_from(self);
        t
    }

    fn clone_from(&mut self, src: &Self) {
        self.job.clone_from(&src.job);
        self.vm.clone_from(&src.vm);
        self.slot.clone_from(&src.slot);
        self.uid.clone_from(&src.uid);
        self.attempt.clone_from(&src.attempt);
        self.backup_of.clone_from(&src.backup_of);
        self.speculated.clone_from(&src.speculated);
        self.doom.clone_from(&src.doom);
        self.template.clone_from(&src.template);
        self.stage.clone_from(&src.stage);
        self.nstages.clone_from(&src.nstages);
        // Elementwise so surviving inner buffers keep their capacity
        // (`BoundStage` is `Copy`, so the inner `clone_from` is a memcpy).
        self.stage_buf.truncate(src.stage_buf.len());
        for (dst, s) in self.stage_buf.iter_mut().zip(&src.stage_buf) {
            dst.clone_from(s);
        }
        for s in &src.stage_buf[self.stage_buf.len()..] {
            self.stage_buf.push(s.clone());
        }
        self.fixed.clone_from(&src.fixed);
        self.units.clone_from(&src.units);
        self.cap.clone_from(&src.cap);
        self.part_res.clone_from(&src.part_res);
        self.part_w.clone_from(&src.part_w);
        self.rate.clone_from(&src.rate);
        self.anchor.clone_from(&src.anchor);
        self.predicted.clone_from(&src.predicted);
        self.heap_pos.clone_from(&src.heap_pos);
        self.flow_pos.clone_from(&src.flow_pos);
        self.registered.clone_from(&src.registered);
        self.dirty.clone_from(&src.dirty);
    }
}

impl TaskTable {
    #[inline]
    pub fn len(&self) -> usize {
        self.job.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.job.is_empty()
    }

    /// Push one task; the caller fills the current-stage mirror via
    /// [`TaskTable::load_stage`] afterwards. Returns the new index.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        job: usize,
        vm: u32,
        slot: SlotKind,
        uid: u64,
        attempt: u32,
        backup_of: u64,
        speculated: bool,
        doom: f64,
        template: u32,
        buf: Vec<BoundStage>,
        clock: f64,
    ) -> usize {
        let idx = self.len();
        self.job.push(job as u32);
        self.vm.push(vm);
        self.slot.push(slot);
        self.uid.push(uid);
        self.attempt.push(attempt);
        self.backup_of.push(backup_of);
        self.speculated.push(speculated);
        self.doom.push(doom);
        self.template.push(template);
        self.stage.push(0);
        self.nstages.push(buf.len() as u32);
        self.stage_buf.push(buf);
        self.fixed.push(0.0);
        self.units.push(0.0);
        self.cap.push(0.0);
        self.part_res.push([NO_RES; 4]);
        self.part_w.push([0.0; 4]);
        self.rate.push(0.0);
        self.anchor.push(clock);
        self.predicted.push(f64::INFINITY);
        self.heap_pos.push(NO_HEAP);
        self.flow_pos.push([NO_POS; 4]);
        self.registered.push(false);
        self.dirty.push(false);
        idx
    }

    /// Whether the task has a current stage (not yet past its last).
    #[inline]
    pub fn has_stage(&self, idx: usize) -> bool {
        self.stage[idx] < self.nstages[idx]
    }

    /// Whether the current stage has nothing left (mirrors
    /// [`BoundStage::is_done`]).
    #[inline]
    pub fn stage_done(&self, idx: usize) -> bool {
        self.fixed[idx] <= 0.0 && self.units[idx] <= 1e-9
    }

    /// The current stage's bound form (error paths and stage advancement;
    /// remaining-work fields may be stale — the mirror is authoritative).
    #[inline]
    pub fn bound_stage(&self, idx: usize) -> Option<&BoundStage> {
        self.stage_buf[idx].get(self.stage[idx] as usize)
    }

    /// Load the current stage's hot fields into the mirror columns.
    /// `resolve` maps each flow part `(ResKey, weight)` to its registry
    /// index (or [`NO_RES`] for zero-demand parts).
    #[inline]
    pub fn load_stage(&mut self, idx: usize, resolve: impl Fn(crate::resources::ResKey) -> u32) {
        let s = &self.stage_buf[idx][self.stage[idx] as usize];
        self.fixed[idx] = s.fixed_remaining;
        self.units[idx] = s.units_remaining;
        self.cap[idx] = s.rate_cap;
        let mut res = [NO_RES; 4];
        let mut w = [0.0; 4];
        for (k, part) in s.flow_parts().into_iter().enumerate() {
            if let Some((key, ratio)) = part {
                if ratio > 0.0 {
                    res[k] = resolve(key);
                    w[k] = ratio;
                }
            }
        }
        self.part_res[idx] = res;
        self.part_w[idx] = w;
    }

    /// Swap-remove task `idx` from every column, returning its pooled
    /// stage buffer for reuse. The caller handles flow/heap fix-ups for
    /// the task moved into the freed slot.
    pub fn swap_remove(&mut self, idx: usize) -> Vec<BoundStage> {
        self.job.swap_remove(idx);
        self.vm.swap_remove(idx);
        self.slot.swap_remove(idx);
        self.uid.swap_remove(idx);
        self.attempt.swap_remove(idx);
        self.backup_of.swap_remove(idx);
        self.speculated.swap_remove(idx);
        self.doom.swap_remove(idx);
        self.template.swap_remove(idx);
        self.stage.swap_remove(idx);
        self.nstages.swap_remove(idx);
        let buf = self.stage_buf.swap_remove(idx);
        self.fixed.swap_remove(idx);
        self.units.swap_remove(idx);
        self.cap.swap_remove(idx);
        self.part_res.swap_remove(idx);
        self.part_w.swap_remove(idx);
        self.rate.swap_remove(idx);
        self.anchor.swap_remove(idx);
        self.predicted.swap_remove(idx);
        self.heap_pos.swap_remove(idx);
        self.flow_pos.swap_remove(idx);
        self.registered.swap_remove(idx);
        self.dirty.swap_remove(idx);
        buf
    }

    /// Drop all tasks, returning their stage buffers to `pool` so the
    /// next run reuses them.
    pub fn clear_into(&mut self, pool: &mut Vec<Vec<BoundStage>>) {
        pool.extend(self.stage_buf.drain(..).map(|mut b| {
            b.clear();
            b
        }));
        self.job.clear();
        self.vm.clear();
        self.slot.clear();
        self.uid.clear();
        self.attempt.clear();
        self.backup_of.clear();
        self.speculated.clear();
        self.doom.clear();
        self.template.clear();
        self.stage.clear();
        self.nstages.clear();
        self.fixed.clear();
        self.units.clear();
        self.cap.clear();
        self.part_res.clear();
        self.part_w.clear();
        self.rate.clear();
        self.anchor.clear();
        self.predicted.clear();
        self.heap_pos.clear();
        self.flow_pos.clear();
        self.registered.clear();
        self.dirty.clear();
    }
}

/// Reference-counted slab of interned [`TaskTemplate`]s.
///
/// Dispatch moves each template out of the job's pending queue into a
/// slot; retries and speculative backups share the slot by id (bumping
/// the count) instead of cloning. Freed slots are recycled — the old
/// template is dropped only when a new one overwrites its slot, so the
/// arena's footprint is bounded by the peak live-task count.
#[derive(Default)]
pub(crate) struct TemplateArena {
    slots: Vec<TaskTemplate>,
    refs: Vec<u32>,
    free: Vec<u32>,
}

/// Hand-written for the same reason as [`TaskTable`]'s impl: slab slots
/// that survive the copy keep their stage-spec capacity.
impl Clone for TemplateArena {
    fn clone(&self) -> Self {
        let mut a = TemplateArena::default();
        a.clone_from(self);
        a
    }

    fn clone_from(&mut self, src: &Self) {
        self.slots.truncate(src.slots.len());
        for (dst, s) in self.slots.iter_mut().zip(&src.slots) {
            dst.slot = s.slot;
            dst.stages.clone_from(&s.stages);
        }
        for s in &src.slots[self.slots.len()..] {
            self.slots.push(s.clone());
        }
        self.refs.clone_from(&src.refs);
        self.free.clone_from(&src.free);
    }
}

impl TemplateArena {
    /// Intern `template` (by move), returning its id with refcount 1.
    pub fn insert(&mut self, template: TaskTemplate) -> u32 {
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = template;
            self.refs[id as usize] = 1;
            id
        } else {
            let id = self.slots.len() as u32;
            self.slots.push(template);
            self.refs.push(1);
            id
        }
    }

    #[inline]
    pub fn get(&self, id: u32) -> &TaskTemplate {
        &self.slots[id as usize]
    }

    /// Add one reference (a retry entry or speculative backup sharing
    /// the template).
    #[inline]
    pub fn retain(&mut self, id: u32) {
        self.refs[id as usize] += 1;
    }

    /// Drop one reference; the slot is recycled once the count reaches
    /// zero.
    pub fn release(&mut self, id: u32) {
        let r = &mut self.refs[id as usize];
        *r -= 1;
        if *r == 0 {
            self.free.push(id);
        }
    }

    /// Drop every template (run teardown); slot storage is kept.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.refs.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{SlotKind, StageLabel, StageSpec};

    fn template(units: f64) -> TaskTemplate {
        TaskTemplate {
            slot: SlotKind::Map,
            stages: vec![StageSpec {
                label: StageLabel::Map,
                fixed: 0.0,
                units,
                read: None,
                write: None,
                net_ratio: 0.0,
                rate_cap: 1.0,
            }],
        }
    }

    #[test]
    fn arena_recycles_slots_after_release() {
        let mut a = TemplateArena::default();
        let x = a.insert(template(1.0));
        let y = a.insert(template(2.0));
        assert_ne!(x, y);
        a.retain(x);
        a.release(x);
        // Still one reference: the slot must not be reused.
        let z = a.insert(template(3.0));
        assert_ne!(z, x);
        a.release(x);
        let reused = a.insert(template(4.0));
        assert_eq!(reused, x, "freed slot must be recycled");
        assert!((a.get(reused).total_units() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_swap_remove_keeps_columns_parallel() {
        let mut t = TaskTable::default();
        for i in 0..3u64 {
            t.push(
                i as usize,
                i as u32,
                SlotKind::Map,
                i,
                1,
                NO_TWIN,
                false,
                NO_DOOM,
                NO_TEMPLATE,
                Vec::new(),
                0.0,
            );
        }
        let buf = t.swap_remove(0);
        assert!(buf.is_empty());
        assert_eq!(t.len(), 2);
        // Task 2 moved into slot 0.
        assert_eq!(t.uid[0], 2);
        assert_eq!(t.job[0], 2);
        assert_eq!(t.uid[1], 1);
        let mut pool = Vec::new();
        t.clear_into(&mut pool);
        assert_eq!(pool.len(), 2);
        assert!(t.is_empty());
    }
}
