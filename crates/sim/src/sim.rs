//! The unified simulation entry point.
//!
//! [`Sim::builder`] replaced the old free-function zoo (`simulate`,
//! `simulate_observed`, `simulate_with_migrations`, `simulate_durable`,
//! since deleted) with one builder: configure jobs, migrations,
//! observability, durability and scratch reuse in any combination, then
//! [`SimBuilder::build`] to lower the workload and obtain a live
//! [`Sim`].
//!
//! A built [`Sim`] is a live engine: run it to completion ([`Sim::run`]),
//! or advance it to a time horizon ([`Sim::run_until`]), snapshot it
//! ([`Sim::snapshot`]), fork what-if candidates off the snapshot, and
//! only then [`Sim::finish`] — the substrate for online replanning.

use cast_obs::Collector;
use cast_workload::spec::WorkloadSpec;

use crate::config::SimConfig;
use crate::durability::{durability_prepass, DurabilityReport};
use crate::engine::{Engine, EngineScratch, EngineSnapshot, EngineStats, RunState};
use crate::error::SimError;
use crate::jobrun::JobRun;
use crate::metrics::SimReport;
use crate::placement::PlacementMap;
use crate::runner::{prepare_runs, MigrationSpec};

/// Configures one simulation. Created by [`Sim::builder`]; every input
/// except the cluster config is optional.
pub struct SimBuilder<'a> {
    cfg: &'a SimConfig,
    workload: Option<(&'a WorkloadSpec, &'a PlacementMap)>,
    runs: Option<Vec<JobRun>>,
    migrations: &'a [MigrationSpec],
    collector: Collector,
    scratch: Option<&'a mut EngineScratch>,
    durable: bool,
}

impl<'a> SimBuilder<'a> {
    /// Simulate `spec` under `placements`: validates the workload, wires
    /// workflow dependencies (including cross-tier transfer staging) and
    /// orders jobs topologically at [`SimBuilder::build`] time.
    pub fn jobs(mut self, spec: &'a WorkloadSpec, placements: &'a PlacementMap) -> Self {
        self.workload = Some((spec, placements));
        self
    }

    /// Run pre-lowered job runs directly (skipping workload lowering) —
    /// for callers that already hold [`prepare_runs`] output, e.g. to
    /// run several engines over byte-identical runs. Mutually exclusive
    /// with [`SimBuilder::jobs`]; the later call wins.
    pub fn runs(mut self, runs: Vec<JobRun>) -> Self {
        self.runs = Some(runs);
        self.workload = None;
        self
    }

    /// Mid-run data movements: each [`MigrationSpec`] becomes an explicit
    /// transfer-only run contending for tier bandwidth; jobs listed in a
    /// migration's `blocks` wait for the move. Ignored when runs are
    /// supplied pre-lowered.
    pub fn migrations(mut self, migrations: &'a [MigrationSpec]) -> Self {
        self.migrations = migrations;
        self
    }

    /// Attach an observability collector. The collector only records
    /// what the engine already computes; the report is bit-identical to
    /// an unobserved run.
    pub fn collector(mut self, collector: Collector) -> Self {
        self.collector = collector;
        self
    }

    /// Reuse caller-owned scratch state; repeated runs over the same (or
    /// a smaller) catalog do zero re-allocation
    /// ([`EngineStats::scratch_reallocs`]).
    pub fn scratch(mut self, scratch: &'a mut EngineScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Enable the durability pre-pass: run the fault plan's shard-loss
    /// timeline first and, when datasets are damaged, charge degraded
    /// readers reconstruction bandwidth and inject background repair
    /// transfers. Retrieve the damage summary via [`Sim::run_durable`]
    /// or [`Sim::durability`]. With no shard losses the simulation is
    /// bit-identical to a non-durable run.
    pub fn durability(mut self, enabled: bool) -> Self {
        self.durable = enabled;
        self
    }

    /// Validate and lower the inputs into a live [`Sim`].
    ///
    /// # Panics
    ///
    /// If neither [`SimBuilder::jobs`] nor [`SimBuilder::runs`] was
    /// called — there is nothing to simulate.
    pub fn build(self) -> Result<Sim<'a>, SimError> {
        let cfg = self.cfg;
        let mut durability = None;
        let runs = match (self.runs, self.workload) {
            (Some(runs), _) => runs,
            (None, Some((spec, placements))) => {
                if self.durable {
                    let pre = durability_prepass(
                        spec,
                        placements,
                        self.migrations,
                        cfg,
                        &self.collector,
                    )?;
                    let runs = match &pre.rewritten {
                        Some((p, m)) => prepare_runs(spec, p, m, cfg)?,
                        None => prepare_runs(spec, placements, self.migrations, cfg)?,
                    };
                    durability = Some(pre.report);
                    runs
                } else {
                    prepare_runs(spec, placements, self.migrations, cfg)?
                }
            }
            (None, None) => panic!("Sim::builder needs .jobs(..) or .runs(..) before .build()"),
        };
        let engine = match self.scratch {
            Some(scratch) => Engine::observed_with_scratch(cfg, runs, self.collector, scratch),
            None => Engine::observed(cfg, runs, self.collector),
        };
        Ok(Sim { engine, durability })
    }
}

/// A built, live simulation. Thin wrapper over [`Engine`] carrying the
/// durability pre-pass result when one ran.
pub struct Sim<'a> {
    engine: Engine<'a>,
    durability: Option<DurabilityReport>,
}

impl<'a> Sim<'a> {
    /// Start configuring a simulation on the cluster `cfg`.
    pub fn builder(cfg: &'a SimConfig) -> SimBuilder<'a> {
        SimBuilder {
            cfg,
            workload: None,
            runs: None,
            migrations: &[],
            collector: Collector::noop(),
            scratch: None,
            durable: false,
        }
    }

    /// Run to completion, producing per-job metrics.
    pub fn run(self) -> Result<SimReport, SimError> {
        self.engine.run()
    }

    /// [`Sim::run`], also returning execution statistics.
    pub fn run_with_stats(self) -> Result<(SimReport, EngineStats), SimError> {
        self.engine.run_with_stats()
    }

    /// Run to completion and return the report together with the
    /// durability pre-pass summary (default-empty when the builder's
    /// durability mode was off or the loss timeline did no damage).
    pub fn run_durable(self) -> Result<(SimReport, DurabilityReport), SimError> {
        let durability = self.durability.unwrap_or_default();
        Ok((self.engine.run()?, durability))
    }

    /// Advance the simulation until the clock reaches `horizon` or the
    /// workload finishes; see [`Engine::run_until`].
    pub fn run_until(&mut self, horizon: f64) -> Result<RunState, SimError> {
        self.engine.run_until(horizon)
    }

    /// Run whatever remains and produce the report plus statistics; see
    /// [`Engine::finish`].
    pub fn finish(self) -> Result<(SimReport, EngineStats), SimError> {
        self.engine.finish()
    }

    /// Capture the complete live state as an [`EngineSnapshot`]; see
    /// [`Engine::snapshot`].
    pub fn snapshot(&self) -> EngineSnapshot {
        self.engine.snapshot()
    }

    /// Current simulated time.
    pub fn clock(&self) -> f64 {
        self.engine.clock()
    }

    /// What the durability pre-pass found, when the builder enabled it.
    pub fn durability(&self) -> Option<&DurabilityReport> {
        self.durability.as_ref()
    }

    /// The underlying engine, for snapshot/fork orchestration that needs
    /// engine-level APIs ([`Engine::set_placement`], [`Engine::jobs`]).
    pub fn engine(&self) -> &Engine<'a> {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine<'a> {
        &mut self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::{PerTier, Tier};
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;
    use cast_workload::apps::AppKind;
    use cast_workload::synth;

    fn setup() -> (WorkloadSpec, PlacementMap, SimConfig) {
        let spec = synth::single_job(AppKind::Grep, DataSize::from_gb(10.0));
        let placements = PlacementMap::uniform(spec.jobs.iter().map(|j| j.id), Tier::PersSsd);
        let agg = PerTier::from_fn(|_| DataSize::from_gb(2000.0));
        let mut cfg = SimConfig::with_aggregate_capacity(Catalog::aws_like(), 4, &agg).unwrap();
        cfg.jitter = 0.0;
        (spec, placements, cfg)
    }

    #[test]
    fn prelowered_runs_match_workload_lowering() {
        let (spec, placements, cfg) = setup();
        let runs = prepare_runs(&spec, &placements, &[], &cfg).unwrap();
        let a = Sim::builder(&cfg)
            .runs(runs)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let b = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn durable_mode_without_damage_reports_default() {
        let (spec, placements, cfg) = setup();
        let sim = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .durability(true)
            .build()
            .unwrap();
        assert_eq!(sim.durability(), Some(&DurabilityReport::default()));
        let (_, report) = sim.run_durable().unwrap();
        assert_eq!(report, DurabilityReport::default());
    }

    #[test]
    fn scratch_reuse_through_builder_does_zero_reallocation() {
        let (spec, placements, cfg) = setup();
        let mut scratch = EngineScratch::new();
        for rep in 0..3 {
            let (_, stats) = Sim::builder(&cfg)
                .jobs(&spec, &placements)
                .scratch(&mut scratch)
                .build()
                .unwrap()
                .run_with_stats()
                .unwrap();
            if rep > 0 {
                assert_eq!(stats.scratch_reallocs, 0, "rep {rep} reallocated");
            }
        }
    }

    #[test]
    fn run_until_then_finish_matches_uninterrupted_run() -> Result<(), SimError> {
        let (spec, placements, cfg) = setup();
        let full = Sim::builder(&cfg)
            .jobs(&spec, &placements)
            .build()
            .unwrap()
            .run_with_stats()
            .unwrap();
        let mut sim = Sim::builder(&cfg).jobs(&spec, &placements).build().unwrap();
        let mut horizon = 1.0;
        while sim.run_until(horizon)? == RunState::Running {
            horizon *= 2.0;
        }
        let segmented = sim.finish().unwrap();
        assert_eq!(
            serde_json::to_string(&full.0).unwrap(),
            serde_json::to_string(&segmented.0).unwrap()
        );
        assert_eq!(full.1, segmented.1);
        Ok(())
    }

    #[test]
    #[should_panic(expected = "Sim::builder needs")]
    fn build_without_inputs_panics() {
        let (_, _, cfg) = setup();
        let _ = Sim::builder(&cfg).build();
    }
}
