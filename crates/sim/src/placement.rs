//! Data placement descriptions consumed by the simulator.
//!
//! A [`JobPlacement`] says where a job's input lives (possibly split across
//! tiers for the Fig. 5 fine-grained-partitioning study), where intermediate
//! data spills, where output goes, and whether staging transfers wrap the
//! job (ephemeral-SSD persistence, workflow cross-tier hand-offs).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use cast_cloud::tier::Tier;
use cast_workload::job::JobId;

/// Input placement: fractions of the input dataset per tier.
///
/// CAST itself always places a whole job on one tier (§3.2's
/// "all-or-nothing" argument); the fractional form exists to reproduce the
/// experiment demonstrating *why* (Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitPlacement {
    /// `(tier, fraction)` pairs; fractions must sum to 1.
    pub parts: Vec<(Tier, f64)>,
}

impl SplitPlacement {
    /// All input on a single tier.
    pub fn single(tier: Tier) -> SplitPlacement {
        SplitPlacement {
            parts: vec![(tier, 1.0)],
        }
    }

    /// A two-tier split: `frac` on `a`, the rest on `b`.
    pub fn split(a: Tier, frac: f64, b: Tier) -> SplitPlacement {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range");
        if frac >= 1.0 {
            SplitPlacement::single(a)
        } else if frac <= 0.0 {
            SplitPlacement::single(b)
        } else {
            SplitPlacement {
                parts: vec![(a, frac), (b, 1.0 - frac)],
            }
        }
    }

    /// The tier holding the largest share (the "primary" tier).
    pub fn primary(&self) -> Tier {
        self.parts
            .iter()
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite fractions"))
            .map(|&(t, _)| t)
            .expect("placement has at least one part")
    }

    /// Whether fractions sum to 1 (±1e-6) and are each in `[0, 1]`.
    pub fn is_valid(&self) -> bool {
        !self.parts.is_empty()
            && self
                .parts
                .iter()
                .all(|&(_, f)| (0.0..=1.0 + 1e-9).contains(&f))
            && (self.parts.iter().map(|&(_, f)| f).sum::<f64>() - 1.0).abs() < 1e-6
    }
}

/// Complete placement for one job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPlacement {
    /// Where the input is read from.
    pub input: SplitPlacement,
    /// Where intermediate (shuffle) data spills.
    pub inter: Tier,
    /// Where the final output is written.
    pub output: Tier,
    /// Transfer the input from this tier onto `input.primary()` before the
    /// job starts (ephemeral-SSD staging, workflow cross-tier hand-off).
    pub stage_in_from: Option<Tier>,
    /// Bytes to move during stage-in when it differs from the job's input
    /// size (workflow hand-offs move the producing job's output).
    pub stage_in_bytes: Option<cast_cloud::units::DataSize>,
    /// Upload the output to this tier after the job completes (persistence
    /// for ephemeral output).
    pub stage_out_to: Option<Tier>,
}

impl JobPlacement {
    /// The conventional placement a tenant gets by pointing the whole job
    /// at one storage service, following the paper's Fig. 1 conventions:
    ///
    /// * `ephSSD` — input staged in from the object store, output staged
    ///   back out (no persistence on ephemeral disks).
    /// * `persSSD` / `persHDD` — everything on the volume.
    /// * `objStore` — input/output on the object store, intermediate data
    ///   on a persistent-SSD scratch volume (the paper's choice).
    pub fn all_on(tier: Tier) -> JobPlacement {
        match tier {
            Tier::EphSsd => JobPlacement {
                input: SplitPlacement::single(Tier::EphSsd),
                inter: Tier::EphSsd,
                output: Tier::EphSsd,
                stage_in_from: Some(Tier::ObjStore),
                stage_in_bytes: None,
                stage_out_to: Some(Tier::ObjStore),
            },
            Tier::PersSsd | Tier::PersHdd => JobPlacement {
                input: SplitPlacement::single(tier),
                inter: tier,
                output: tier,
                stage_in_from: None,
                stage_in_bytes: None,
                stage_out_to: None,
            },
            Tier::ObjStore => JobPlacement {
                input: SplitPlacement::single(Tier::ObjStore),
                inter: Tier::PersSsd,
                output: Tier::ObjStore,
                stage_in_from: None,
                stage_in_bytes: None,
                stage_out_to: None,
            },
        }
    }

    /// Primary tier of the job (where CAST accounts its capacity).
    pub fn primary(&self) -> Tier {
        self.input.primary()
    }
}

/// Placement for every job in a workload.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlacementMap {
    map: HashMap<JobId, JobPlacement>,
}

impl PlacementMap {
    /// Empty map.
    pub fn new() -> PlacementMap {
        PlacementMap::default()
    }

    /// Every job of `jobs` placed entirely on `tier`.
    pub fn uniform(jobs: impl IntoIterator<Item = JobId>, tier: Tier) -> PlacementMap {
        let mut m = PlacementMap::new();
        for j in jobs {
            m.set(j, JobPlacement::all_on(tier));
        }
        m
    }

    /// Set a job's placement.
    pub fn set(&mut self, job: JobId, placement: JobPlacement) {
        self.map.insert(job, placement);
    }

    /// Get a job's placement.
    pub fn get(&self, job: JobId) -> Option<&JobPlacement> {
        self.map.get(&job)
    }

    /// Number of placed jobs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no placements are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate placements (ordering unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobPlacement)> {
        self.map.iter().map(|(&j, p)| (j, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_placement_is_valid() {
        let p = SplitPlacement::single(Tier::PersSsd);
        assert!(p.is_valid());
        assert_eq!(p.primary(), Tier::PersSsd);
    }

    #[test]
    fn split_placement_math() {
        let p = SplitPlacement::split(Tier::EphSsd, 0.9, Tier::PersHdd);
        assert!(p.is_valid());
        assert_eq!(p.primary(), Tier::EphSsd);
        let q = SplitPlacement::split(Tier::EphSsd, 0.3, Tier::PersHdd);
        assert_eq!(q.primary(), Tier::PersHdd);
    }

    #[test]
    fn degenerate_split_collapses() {
        let p = SplitPlacement::split(Tier::EphSsd, 1.0, Tier::PersHdd);
        assert_eq!(p.parts.len(), 1);
        let q = SplitPlacement::split(Tier::EphSsd, 0.0, Tier::PersHdd);
        assert_eq!(q.parts, vec![(Tier::PersHdd, 1.0)]);
    }

    #[test]
    fn invalid_fractions_detected() {
        let p = SplitPlacement {
            parts: vec![(Tier::EphSsd, 0.5), (Tier::PersSsd, 0.2)],
        };
        assert!(!p.is_valid());
    }

    #[test]
    fn ephemeral_convention_stages_through_objstore() {
        let p = JobPlacement::all_on(Tier::EphSsd);
        assert_eq!(p.stage_in_from, Some(Tier::ObjStore));
        assert_eq!(p.stage_out_to, Some(Tier::ObjStore));
    }

    #[test]
    fn objstore_convention_uses_ssd_scratch() {
        let p = JobPlacement::all_on(Tier::ObjStore);
        assert_eq!(p.inter, Tier::PersSsd);
        assert_eq!(p.stage_in_from, None);
    }

    #[test]
    fn persistent_tiers_need_no_staging() {
        for t in [Tier::PersSsd, Tier::PersHdd] {
            let p = JobPlacement::all_on(t);
            assert_eq!(p.stage_in_from, None);
            assert_eq!(p.stage_out_to, None);
            assert_eq!(p.inter, t);
        }
    }

    #[test]
    fn placement_map_roundtrip() {
        let mut m = PlacementMap::uniform([JobId(0), JobId(1)], Tier::PersHdd);
        assert_eq!(m.len(), 2);
        m.set(JobId(1), JobPlacement::all_on(Tier::EphSsd));
        assert_eq!(m.get(JobId(1)).unwrap().primary(), Tier::EphSsd);
        assert!(m.get(JobId(9)).is_none());
    }
}
