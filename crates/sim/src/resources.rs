//! Shared-resource bookkeeping: per-VM storage volumes and NICs.
//!
//! Every active streaming task registers its flows on the resources they
//! touch, weighted by bytes-per-unit demand. A resource's bandwidth is
//! divided in proportion to demand: every registered flow progresses at
//! the same *units* rate `capacity / Σ weights`, consuming
//! `weight × rate` bytes — demand-weighted processor sharing. This keeps
//! a volume fully utilised even when some flows (e.g. a map task's small
//! intermediate spill) need far fewer bytes per unit than others, while
//! staying O(flows) to recompute. Slack from flows capped elsewhere (CPU
//! rate, per-task client caps) is not redistributed — a deliberate,
//! conservative simplification that errs in the same direction as real
//! interference.

use serde::{Deserialize, Serialize};

use cast_cloud::tier::Tier;

use crate::config::SimConfig;

/// Identifies one shareable resource in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResKey {
    /// Worker VM index.
    pub vm: u32,
    /// Which of the VM's resources.
    pub kind: ResKind,
}

/// The kinds of per-VM resources tasks contend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResKind {
    /// The VM's provisioned volume (or object-store budget) on a tier.
    Volume(Tier),
    /// The VM's network interface.
    Nic,
}

/// Resources per VM: four tier volumes + one NIC.
const SLOTS_PER_VM: usize = 5;

/// Sentinel VM id addressing cluster-global resources (the object-store
/// bucket ceiling).
pub const GLOBAL_VM: u32 = u32::MAX;

#[inline]
fn slot(kind: ResKind) -> usize {
    match kind {
        ResKind::Volume(t) => t.index(),
        ResKind::Nic => 4,
    }
}

/// Tracks capacity and aggregate flow demand for every resource.
#[derive(Debug, Clone)]
pub struct ShareRegistry {
    caps: Vec<f64>,
    /// Undegraded capacities; `caps` is rebuilt from these whenever a
    /// fault-injection degradation window opens or closes.
    base: Vec<f64>,
    load: Vec<f64>,
}

impl ShareRegistry {
    /// Build the registry for a configured cluster.
    pub fn new(cfg: &SimConfig) -> ShareRegistry {
        // One extra slot at the end for the cluster-global object-store
        // ceiling.
        let mut caps = vec![0.0; cfg.nvm * SLOTS_PER_VM + 1];
        for vm in 0..cfg.nvm {
            for tier in Tier::ALL {
                caps[vm * SLOTS_PER_VM + slot(ResKind::Volume(tier))] =
                    cfg.vm_tier_bandwidth(tier).mb_per_sec();
            }
            caps[vm * SLOTS_PER_VM + slot(ResKind::Nic)] = cfg.vm.nic.mb_per_sec();
        }
        let n = caps.len();
        caps[n - 1] = cfg.objstore_cluster_mbps;
        let load = vec![0.0; caps.len()];
        ShareRegistry {
            base: caps.clone(),
            caps,
            load,
        }
    }

    /// Number of per-VM resource blocks.
    fn nvm(&self) -> usize {
        (self.caps.len() - 1) / SLOTS_PER_VM
    }

    /// Restore every capacity to its undegraded value.
    pub fn reset_scales(&mut self) {
        self.caps.copy_from_slice(&self.base);
    }

    /// Multiply the capacity of `tier`'s volume by `factor` — on one VM,
    /// or (with `vm = None`) on every VM plus, for the object store, the
    /// cluster-global ceiling. Factors compose multiplicatively until the
    /// next [`ShareRegistry::reset_scales`].
    pub fn scale_tier(&mut self, vm: Option<u32>, tier: Tier, factor: f64) {
        match vm {
            Some(v) => {
                let i = v as usize * SLOTS_PER_VM + slot(ResKind::Volume(tier));
                self.caps[i] *= factor;
            }
            None => {
                for v in 0..self.nvm() {
                    self.caps[v * SLOTS_PER_VM + slot(ResKind::Volume(tier))] *= factor;
                }
                if tier == Tier::ObjStore {
                    let n = self.caps.len();
                    self.caps[n - 1] *= factor;
                }
            }
        }
    }

    #[inline]
    fn index(&self, key: ResKey) -> usize {
        if key.vm == GLOBAL_VM {
            self.caps.len() - 1
        } else {
            key.vm as usize * SLOTS_PER_VM + slot(key.kind)
        }
    }

    /// Reset all loads (called before re-registering the active set).
    pub fn clear_counts(&mut self) {
        self.load.iter_mut().for_each(|c| *c = 0.0);
    }

    /// Register one flow on `key` demanding `weight` bytes per unit.
    #[inline]
    pub fn register(&mut self, key: ResKey, weight: f64) {
        let i = self.index(key);
        self.load[i] += weight;
    }

    /// Raw capacity of `key` in MB/s.
    #[inline]
    pub fn capacity(&self, key: ResKey) -> f64 {
        self.caps[self.index(key)]
    }

    /// Units-rate available on `key`: `capacity / Σ weights`. A resource
    /// with no registered demand imposes no constraint beyond capacity.
    #[inline]
    pub fn unit_rate(&self, key: ResKey) -> f64 {
        let i = self.index(key);
        if self.load[i] <= 0.0 {
            f64::INFINITY
        } else {
            self.caps[i] / self.load[i]
        }
    }

    /// Aggregate registered demand on `key` (bytes per unit summed over
    /// flows).
    #[inline]
    pub fn load(&self, key: ResKey) -> f64 {
        self.load[self.index(key)]
    }

    /// Cluster-wide `(demand, capacity)` for `tier`, summed over every
    /// VM's volume of that tier (the cluster-global object-store ceiling
    /// is a separate resource and not included). Used for observability
    /// contention samples; never consulted by the rate computation.
    pub fn tier_totals(&self, tier: Tier) -> (f64, f64) {
        let s = slot(ResKind::Volume(tier));
        let mut demand = 0.0;
        let mut cap = 0.0;
        for vm in 0..self.nvm() {
            demand += self.load[vm * SLOTS_PER_VM + s];
            cap += self.caps[vm * SLOTS_PER_VM + s];
        }
        (demand, cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cast_cloud::tier::PerTier;
    use cast_cloud::units::DataSize;
    use cast_cloud::Catalog;

    fn cfg() -> SimConfig {
        let mut agg = PerTier::from_fn(|_| DataSize::ZERO);
        *agg.get_mut(Tier::PersSsd) = DataSize::from_gb(500.0);
        SimConfig::with_aggregate_capacity(Catalog::google_cloud(), 2, &agg).unwrap()
    }

    #[test]
    fn capacities_match_config() {
        let c = cfg();
        let reg = ShareRegistry::new(&c);
        let key = ResKey {
            vm: 0,
            kind: ResKind::Volume(Tier::PersSsd),
        };
        // 250 GB per VM → 117 MB/s.
        assert!((reg.capacity(key) - 0.468 * 250.0).abs() < 1e-9);
        let nic = ResKey {
            vm: 1,
            kind: ResKind::Nic,
        };
        assert!((reg.capacity(nic) - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_sharing_divides_by_demand() {
        let c = cfg();
        let mut reg = ShareRegistry::new(&c);
        let key = ResKey {
            vm: 0,
            kind: ResKind::Volume(Tier::ObjStore),
        };
        assert_eq!(reg.unit_rate(key), f64::INFINITY);
        // A full-rate reader (weight 1) plus a small spill (weight 0.25):
        // both progress at 265/1.25 = 212 units/s; the reader consumes
        // 212 MB/s, the spill 53 MB/s — the volume is fully used.
        reg.register(key, 1.0);
        reg.register(key, 0.25);
        assert!((reg.unit_rate(key) - 265.0 / 1.25).abs() < 1e-9);
        assert!((reg.load(key) - 1.25).abs() < 1e-12);
        reg.clear_counts();
        assert_eq!(reg.load(key), 0.0);
    }

    #[test]
    fn vms_are_independent() {
        let c = cfg();
        let mut reg = ShareRegistry::new(&c);
        let a = ResKey {
            vm: 0,
            kind: ResKind::Volume(Tier::PersSsd),
        };
        let b = ResKey {
            vm: 1,
            kind: ResKind::Volume(Tier::PersSsd),
        };
        reg.register(a, 1.0);
        assert_eq!(reg.load(b), 0.0);
        assert!(reg.unit_rate(b) > reg.unit_rate(a));
    }

    #[test]
    fn equal_weights_reduce_to_equal_share() {
        let c = cfg();
        let mut reg = ShareRegistry::new(&c);
        let key = ResKey {
            vm: 0,
            kind: ResKind::Volume(Tier::PersSsd),
        };
        for _ in 0..4 {
            reg.register(key, 1.0);
        }
        let cap = reg.capacity(key);
        assert!((reg.unit_rate(key) - cap / 4.0).abs() < 1e-9);
    }
}
